"""Command-line interface for the SITM reproduction.

Usage (after installation)::

    python -m repro.cli generate --scale 0.1 --out detections.csv
    python -m repro.cli stats --scale 1.0
    python -m repro.cli experiments --scale 1.0
    python -m repro.cli validate detections.csv
    python -m repro.cli zones
    python -m repro.cli pipeline run --scale 0.1 --store --mine
    python -m repro.cli pipeline stages
    python -m repro.cli query --visiting zone60853 --or \\
        --annotation goal=visit --limit 10 --explain
    python -m repro.cli serve --scale 0.05 --port 8731
    python -m repro.cli serve --empty --persist-dir ./data
    python -m repro.cli call '{"command": "ListSessions"}'
    python -m repro.cli snapshot --scale 0.05 --out ./data/louvre
    python -m repro.cli restore ./data/louvre
    python -m repro.cli stream replay --scale 0.02 --session live
    python -m repro.cli stream status --session live
    python -m repro.cli synth venue --archetype airport --seed 7
    python -m repro.cli synth crowd --agents 100000 --crowd-seed 42
    python -m repro.cli synth replay --mode stream --rate 5000

Every subcommand is a thin shell over the library API, so scripted
pipelines can do exactly what the CLI does.  ``serve`` and ``call``
are shells over :mod:`repro.service` — the same commands, over HTTP.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

#: Default TCP port of ``repro serve`` / ``repro call``.
DEFAULT_PORT = 8731

from repro.core import TrajectoryBuilder, validate_trajectory
from repro.core.validation import Severity
from repro.experiments import dataset_stats
from repro.experiments.runner import render_report, run_all
from repro.louvre import (
    DatasetParameters,
    LouvreDatasetGenerator,
    LouvreSpace,
)
from repro.louvre.zones import ZONES
from repro.pipeline import (
    Pipeline,
    PipelineError,
    PrefixSpanStage,
    StoreSinkStage,
    UnknownStageError,
    create_stage,
    csv_source,
    louvre_source,
    stage_catalog,
)
from repro.storage.csvio import (
    read_detrecords_csv,
    write_detections_csv,
)

#: Default stage chain of ``pipeline run`` — the builder decomposition.
DEFAULT_STAGES = "clean,segment,trace,annotate"


def _parameters(scale: float) -> DatasetParameters:
    if scale >= 1.0:
        return DatasetParameters()
    return DatasetParameters().scaled(scale)


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate the synthetic corpus and write it as detection CSV."""
    space = LouvreSpace()
    generator = LouvreDatasetGenerator(space, _parameters(args.scale))
    records = generator.detection_records()
    count = write_detections_csv(records, args.out)
    print("wrote {} detection records to {}".format(count, args.out))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Recompute the Section 4.1 statistics and compare to the paper."""
    result = dataset_stats.run(scale=args.scale)
    print(dataset_stats.render(result))
    return 0 if result["all_match"] or args.scale < 1.0 else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    """Run every table/figure reproduction and print the report."""
    results = run_all(scale=args.scale)
    print(render_report(results))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate a detection CSV against the Louvre zone topology."""
    space = LouvreSpace()
    records = read_detrecords_csv(args.path)
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    trajectories, report = builder.build_all(records)
    nrg = space.dataset_zone_nrg()
    error_total = warning_total = 0
    for trajectory in trajectories:
        for issue in validate_trajectory(trajectory, nrg):
            if issue.severity is Severity.ERROR:
                error_total += 1
            elif issue.severity is Severity.WARNING:
                warning_total += 1
    print("records: {} | visits: {} | dropped zero-duration: {}".format(
        report.cleaning.total, report.trajectories,
        report.cleaning.dropped_zero_duration))
    print("validation: {} errors, {} warnings".format(error_total,
                                                      warning_total))
    return 1 if error_total else 0


def _pipeline_stage_kwargs(name: str, args: argparse.Namespace,
                           builder: TrajectoryBuilder) -> dict:
    """Constructor arguments for a named stage, from CLI options."""
    if name in ("clean", "trace", "annotate"):
        return {"builder": builder}
    if name == "segment":
        return {"builder": builder, "streaming": args.streaming}
    if name == "prefixspan":
        return {"min_support": args.min_support}
    if name == "jsonl-sink":
        return {"path": args.out}
    return {}


def cmd_pipeline_run(args: argparse.Namespace) -> int:
    """Assemble a pipeline from registry names and stream a corpus."""
    space = LouvreSpace()
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    names = [name.strip() for name in args.stages.split(",")
             if name.strip()]
    if "jsonl-sink" in names and not args.out:
        print("error: stage 'jsonl-sink' needs --out PATH",
              file=sys.stderr)
        return 2
    if args.out and "jsonl-sink" not in names:
        names.append("jsonl-sink")
    if args.store:
        names.append("store")
    if args.mine:
        names.extend(["state-sequences", "prefixspan"])
    try:
        stages = [create_stage(name,
                               **_pipeline_stage_kwargs(name, args,
                                                        builder))
                  for name in names]
    except UnknownStageError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    if args.csv:
        source = csv_source(args.csv)
    else:
        source = louvre_source(space, scale=args.scale)
    cache = None
    if args.cache_dir:
        from repro.persist import DiskStageCache

        cache = DiskStageCache(args.cache_dir)
    try:
        pipeline = Pipeline(stages, batch_size=args.batch_size,
                            workers=args.workers,
                            executor=args.executor,
                            timing=not args.no_timing,
                            cache=cache)
        pipeline.run(source, collect=False)
    except PipelineError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    except (OSError, ValueError) as error:
        # bad --csv path or malformed detection CSV
        print("error: {}".format(error), file=sys.stderr)
        return 1

    if args.json:
        # Machine output: metrics plus the miners' own to_dict forms.
        document = {"pipeline": names,
                    "metrics": pipeline.metrics.as_dict()}
        for stage in stages:
            if isinstance(stage, StoreSinkStage):
                document["stored"] = len(stage.store)
            if isinstance(stage, PrefixSpanStage):
                document["patterns"] = [p.to_dict()
                                        for p in stage.patterns]
        print(json.dumps(document, sort_keys=True, indent=2))
        return 0
    print("pipeline: {}".format(" -> ".join(names)))
    print("batch size: {} | mode: {} | workers: {}".format(
        args.batch_size, "streaming" if args.streaming else "exact",
        "{} ({})".format(args.workers, args.executor)
        if args.workers > 1 else "serial"))
    print()
    print(pipeline.metrics.render())
    for stage in stages:
        if isinstance(stage, StoreSinkStage):
            print("\nstored trajectories: {}".format(len(stage.store)))
        if isinstance(stage, PrefixSpanStage) and stage.patterns:
            print("\ntop sequential patterns:")
            for pattern in stage.patterns[:8]:
                print("  " + pattern.describe())
    return 0


def cmd_pipeline_stages(args: argparse.Namespace) -> int:
    """List the registered pipeline stages."""
    catalog = stage_catalog()
    width = max(len(name) for name, _ in catalog)
    for name, description in catalog:
        print("{:{width}s}  {}".format(name, description, width=width))
    return 0


class _TermAction(argparse.Action):
    """Collect query predicates in *command-line order*.

    Boolean structure depends on where ``--or`` / ``--not`` appear
    relative to the predicates, so every query option appends an
    ``(option, value)`` pair to one shared ordered list instead of
    its own namespace slot.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        terms = getattr(namespace, "terms", None)
        if terms is None:
            terms = []
            namespace.terms = terms
        terms.append((self.dest, values))


def _parse_query_terms(terms):
    """Ordered (option, value) pairs → an expression tree.

    ``--or`` splits the predicates into disjunct groups; ``--not``
    negates the predicate that follows it.  Each group is an And, the
    groups are Or-ed.

    Raises:
        ValueError: for dangling ``--or``/``--not`` or malformed
            ``--annotation`` values.
    """
    from repro.core.annotations import AnnotationKind
    from repro.storage import expr as E

    groups = [[]]
    negate_next = False
    for option, value in terms:
        if option == "or_sep":
            if negate_next:
                raise ValueError("--not needs a predicate after it")
            if not groups[-1]:
                raise ValueError("--or needs a predicate before it")
            groups.append([])
            continue
        if option == "not_next":
            negate_next = not negate_next  # --not --not cancels
            continue
        if option == "visiting":
            node = E.state(value)
        elif option == "annotation":
            kind_name, sep, ann_value = value.partition("=")
            if not sep or not ann_value:
                raise ValueError(
                    "--annotation wants KIND=VALUE, e.g. goal=visit")
            try:
                kind = AnnotationKind(kind_name)
            except ValueError:
                raise ValueError(
                    "unknown annotation kind {!r}; one of: {}".format(
                        kind_name, ", ".join(
                            k.value for k in AnnotationKind)))
            node = E.annotation(kind, ann_value)
        elif option == "mo":
            node = E.moving_object(value)
        elif option == "between":
            node = E.time_window(float(value[0]), float(value[1]))
        elif option == "min_duration":
            node = E.min_duration(value)
        elif option == "min_entries":
            node = E.min_entries(value)
        elif option == "follows":
            node = E.follows(*[s.strip() for s in value.split(",")
                               if s.strip()])
        else:  # pragma: no cover - guarded by the parser definition
            raise ValueError("unknown query option {!r}".format(option))
        if negate_next:
            node = ~node
            negate_next = False
        groups[-1].append(node)
    if negate_next:
        raise ValueError("--not needs a predicate after it")
    if len(groups) > 1 and not groups[-1]:
        raise ValueError("--or needs a predicate after it")
    disjuncts = [E.And.of(*group) for group in groups if group]
    if not disjuncts:
        return None
    return E.Or.of(*disjuncts)


def cmd_query(args: argparse.Namespace) -> int:
    """Plan and run a declarative query over a corpus."""
    from repro.api import Workbench
    from repro.storage.csvio import read_trajectories_jsonl

    try:
        expression = _parse_query_terms(getattr(args, "terms", []))
    except ValueError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2

    try:
        if args.jsonl:
            workbench = Workbench.from_trajectories(
                read_trajectories_jsonl(args.jsonl))
        elif args.csv:
            workbench = Workbench.from_csv(args.csv)
        else:
            workbench = Workbench.louvre(scale=args.scale)
    except (OSError, ValueError) as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1

    query = workbench.query(expression)
    if args.json:
        # Machine output through the service binding, so the CLI
        # emits exactly what the wire protocol serves (one code
        # path, one shape).
        from repro.api import LOCAL_SESSION
        from repro.service import protocol as P

        document = {"corpus": len(workbench.store)}
        if args.explain:
            document["plan"] = query.explain()
        if args.count:
            # Index-only when no residuals remain.
            document["matches"] = query.count()
            print(json.dumps(document, sort_keys=True, indent=2))
            return 0
        page = workbench.binding.call(P.RunQuery(
            session=LOCAL_SESSION,
            query=None if expression is None else query.to_dict(),
            limit=max(1, args.limit), offset=args.offset,
            order_by=args.order_by, descending=args.desc))
        document["matches"] = page.total
        document["hits"] = [] if args.limit < 1 \
            else [hit.to_dict() for hit in page.hits]
        print(json.dumps(document, sort_keys=True, indent=2))
        return 0
    print("corpus: {} trajectories".format(len(workbench.store)))
    if args.explain:
        print("plan:")
        for line in query.explain().splitlines():
            print("  " + line)
    if args.count:
        # Index-only when no residuals remain; never materializes.
        print("matches: {}".format(query.count()))
        return 0

    # Execute exactly once; count and shaping both read this list.
    from repro.storage.results import ORDER_KEYS

    hits = query.execute().to_list()
    print("matches: {}".format(len(hits)))
    if args.order_by:
        hits = sorted(hits, key=ORDER_KEYS[args.order_by],
                      reverse=args.desc)
    hits = hits[args.offset:args.offset + args.limit]
    for hit in hits:
        trajectory = hit.trajectory
        sequence = trajectory.distinct_state_sequence()
        print("#{:<5d} {:12s} {:>7.0f}s  {} states: {}".format(
            hit.doc_id, trajectory.mo_id, trajectory.duration,
            len(sequence), " → ".join(sequence[:6])
            + (" …" if len(sequence) > 6 else "")))
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Build a corpus and persist it as a durable session dir."""
    from repro.api import Workbench
    from repro.persist import PersistError
    from repro.storage.csvio import read_trajectories_jsonl

    try:
        if args.jsonl:
            workbench = Workbench.from_trajectories(
                read_trajectories_jsonl(args.jsonl))
        elif args.csv:
            workbench = Workbench.from_csv(args.csv)
        else:
            workbench = Workbench.louvre(scale=args.scale)
    except (OSError, ValueError) as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1
    try:
        info = workbench.save(args.out, fsync=not args.no_fsync)
    except PersistError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({
            "path": args.out, "snapshot": info.path,
            "trajectories": info.doc_count,
            "total_bytes": info.total_bytes, "space": info.space,
        }, sort_keys=True, indent=2))
        return 0
    print("snapshot: {} trajectories, {} segment bytes -> {}".format(
        info.doc_count, info.total_bytes, info.path))
    return 0


def cmd_restore(args: argparse.Namespace) -> int:
    """Recover a persisted session dir and summarize (or serve) it."""
    from repro.api import Workbench
    from repro.persist import CorruptSnapshotError, PersistError

    try:
        workbench = Workbench.open(args.path,
                                   verify=not args.no_verify)
    except CorruptSnapshotError as error:
        print("error: corrupt snapshot: {}".format(error),
              file=sys.stderr)
        return 1
    except PersistError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1
    stats = workbench.summary()
    if args.json:
        print(json.dumps({
            "path": args.path,
            "trajectories": len(workbench.store),
            "space": type(workbench.space).__name__
            if workbench.space is not None else None,
            "summary": stats,
        }, sort_keys=True, indent=2))
    else:
        print("restored: {} trajectories from {}".format(
            len(workbench.store), args.path))
        print("space: {}".format(
            type(workbench.space).__name__
            if workbench.space is not None else "(none)"))
        for key in sorted(stats):
            print("  {}: {}".format(key, stats[key]))
    if not args.serve:
        return 0
    server = workbench.serve(host=args.host, port=args.port)
    print("serving restored corpus as session 'local' on {}".format(
        server.url))
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nbye")
        server.stop()
    return 0


def _write_url_file(path: str, url: str) -> None:
    """Atomically announce a bound server (URL + pid) to watchers."""
    import tempfile

    payload = json.dumps({"url": url, "pid": os.getpid()})
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=os.path.dirname(path) or ".",
        suffix=".tmp", delete=False)
    try:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    finally:
        handle.close()
    os.replace(handle.name, path)


def _serve_engine(args: argparse.Namespace):
    """The command engine behind the server: a plain registry, or a
    shard coordinator when --shards is given.  Returns
    ``(engine, pool)`` — the worker pool (process backend only) must
    be stopped by the caller."""
    if not args.shards:
        from repro.service.registry import SessionRegistry

        # Restore is deferred so the listener binds (and answers
        # health probes, readiness 503) while the corpus loads;
        # cmd_serve calls finish_restore() before announcing.
        return SessionRegistry(persist_dir=args.persist_dir,
                               standby=args.standby,
                               defer_restore=True), None
    from repro.shard.coordinator import ShardCoordinator

    if args.shard_backend == "process":
        from repro.shard.workers import ShardWorkerPool

        pool = ShardWorkerPool(args.shards, root=args.persist_dir,
                               verbose=args.verbose,
                               replicas=args.replicas)
        pool.start()
        return pool.coordinator(), pool
    return ShardCoordinator.local(
        args.shards, persist_dir=args.persist_dir,
        replicas_per_shard=args.replicas), None


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the embedded trajectory server (repro.service)."""
    pool = None
    server = None
    supervisor = None
    try:
        try:
            engine, pool = _serve_engine(args)
        except Exception as error:
            print("error: cannot start shard backends: {}".format(
                error), file=sys.stderr)
            return 1
        # Bind first: a port conflict must fail fast, not after
        # minutes of corpus building.
        try:
            if args.legacy_server:
                from repro.service.server import ServiceServer

                server = ServiceServer(
                    engine, host=args.host, port=args.port,
                    verbose=args.verbose,
                    response_cache=not args.no_response_cache)
            else:
                from repro.service.aserver import AsyncServiceServer

                server = AsyncServiceServer(
                    engine, host=args.host, port=args.port,
                    verbose=args.verbose,
                    sync_workers=args.sync_workers,
                    max_inflight=args.max_inflight,
                    response_cache=not args.no_response_cache)
        except OSError as error:
            print("error: cannot bind {}:{}: {}".format(
                args.host, args.port, error), file=sys.stderr)
            server = None
            return 1
        # Serve from a background thread so liveness answers during
        # the restore; GET /v1/ready stays 503 until it finishes.
        server.start()
        finish_restore = getattr(engine, "finish_restore", None)
        if finish_restore is not None:
            finish_restore()
        for name, message in engine.restore_errors.items():
            print("warning: session {!r} failed to restore: "
                  "{}".format(name, message), file=sys.stderr)
        # Announce only after the corpus is restored: a watcher that
        # reads the url file may immediately query, and an
        # I-am-up-but-empty answer would be wrong, not just slow.
        if args.url_file:
            _write_url_file(args.url_file, server.url)
        from repro.service import protocol as P
        from repro.service.executor import run_command

        counts = {info.name: info.trajectories for info in
                  run_command(engine, P.ListSessions()).sessions}
        preloaded = (args.persist_dir is not None
                     and counts.get(args.session, 0))
        if preloaded:
            print("session {!r}: {} trajectories (restored from "
                  "{})".format(args.session, preloaded,
                               args.persist_dir))
        if not args.empty and not preloaded:
            source = "csv" if args.csv else "louvre"
            job = run_command(engine, P.BuildDataset(
                session=args.session, source=source,
                scale=args.scale, path=args.csv,
                workers=args.workers, executor=args.executor,
                wait=not args.lazy))
            if isinstance(job, P.ErrorInfo):
                print("error: build failed: {}".format(job.message),
                      file=sys.stderr)
                return 1
            if args.lazy:
                print("building session {!r} in the background "
                      "({})".format(args.session, job.job_id))
            elif job.state == "failed":
                print("error: build failed: {}".format(job.error),
                      file=sys.stderr)
                return 1
            else:
                built = {info.name: info.trajectories for info in
                         run_command(engine,
                                     P.ListSessions()).sessions}
                print("session {!r}: {} trajectories".format(
                    args.session, built.get(args.session, 0)))
        if pool is not None:
            supervisor = pool.supervisor(engine).start()
        if args.shards:
            print("sharding across {} {} shard(s), {} replica(s) "
                  "each".format(args.shards, args.shard_backend,
                                args.replicas))
        print("serving on {}  (POST /v1/call, GET /v1/health, "
              "GET /v1/ready)".format(server.url))
        print("try: repro call --url {} "
              "'{{\"command\": \"ListSessions\"}}'".format(server.url))
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\nbye")
        return 0
    finally:
        if supervisor is not None:
            supervisor.stop()
        if server is not None:
            server.stop()
        if pool is not None:
            pool.stop()


def cmd_rebalance(args: argparse.Namespace) -> int:
    """Re-split a durable shard root onto a new shard count."""
    from repro.shard.rebalance import rebalance
    from repro.shard.ring import ShardStateError

    try:
        report = rebalance(args.dir, args.shards)
    except ShardStateError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
        return 0
    print("rebalanced {} -> {} shards at {}".format(
        report["old_shard_count"], report["new_shard_count"],
        report["root"]))
    for name, info in sorted(report["sessions"].items()):
        print("  session {!r}: {} documents, per-shard {}".format(
            name, info["documents"], info["per_shard"]))
    print("  moved {} document(s) across shards".format(
        report["moved"]))
    return 0


def cmd_call(args: argparse.Namespace) -> int:
    """Issue one protocol command against a running server."""
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.protocol import (
        PROTOCOL_VERSION,
        ProtocolError,
        command_from_dict,
    )

    payload = sys.stdin.read() if args.payload == "-" else args.payload
    try:
        data = json.loads(payload)
    except ValueError as error:
        print("error: payload is not JSON: {}".format(error),
              file=sys.stderr)
        return 2
    if isinstance(data, dict):
        data.setdefault("v", PROTOCOL_VERSION)  # convenience
    try:
        command = command_from_dict(data)
    except ProtocolError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        response = client.call(command)
    except ServiceError as error:
        print(json.dumps({"response": "Error", "code": error.code,
                          "message": error.message}, sort_keys=True),
              file=sys.stderr)
        return 1
    except OSError as error:
        print("error: cannot reach {}: {}".format(args.url, error),
              file=sys.stderr)
        return 1
    indent = 2 if args.pretty else None
    print(json.dumps(response.to_dict(), sort_keys=True,
                     indent=indent))
    return 0


def _stream_records(args: argparse.Namespace) -> list:
    """The corpus in deterministic event-time order.

    Sorting every detection globally by ``(t_start, t_end, mo_id)``
    interleaves the visitors exactly as a live gate feed would, and
    makes ``--offset``/``--limit`` slices of one corpus land on the
    same events in every invocation — which is what lets a replay
    resume where a crashed one stopped.
    """
    if args.csv:
        records = read_detrecords_csv(args.csv)
    else:
        space = LouvreSpace()
        generator = LouvreDatasetGenerator(space,
                                           _parameters(args.scale))
        records = generator.detection_records()
    return sorted(records, key=lambda r: (r.t_start, r.t_end,
                                          r.mo_id))


def cmd_stream_replay(args: argparse.Namespace) -> int:
    """Replay a corpus as a live event stream against a server."""
    from repro.service.client import ServiceClient, ServiceError
    from repro.stream.segmenter import event_to_dict
    from repro.synth.pacing import ArrivalSchedule

    if args.chunk < 1:
        print("error: --chunk must be >= 1", file=sys.stderr)
        return 2
    if args.offset < 0:
        print("error: --offset must be >= 0", file=sys.stderr)
        return 2
    records = _stream_records(args)
    total = len(records)
    end = total if args.limit is None else min(total, args.offset
                                               + args.limit)
    client = ServiceClient(args.url, timeout=args.timeout)
    summary = {"url": args.url, "session": args.session,
               "stream": args.stream, "corpus_events": total,
               "offset": args.offset, "replayed": 0,
               "episodes_closed": 0, "watermark": None,
               "closed": False, "target_rate": args.rate,
               "behind_schedule": 0}
    # --rate is events/s; one schedule slot covers one chunk.
    schedule = ArrivalSchedule(
        None if args.rate is None else args.rate / args.chunk)
    batch_index = 0
    position = args.offset
    try:
        client.open_stream(args.session, args.stream,
                           gap_seconds=args.gap_seconds,
                           checkpoint_every=args.checkpoint_every)
        while position < end:
            schedule.wait(batch_index)
            batch_index += 1
            chunk = records[position:min(position + args.chunk, end)]
            position += len(chunk)
            # The next un-replayed event bounds the watermark: every
            # later event starts at or after it, so no episode the
            # segmenter closes now could be reopened by a later
            # chunk — even one sent by a future resumed replay.
            mark = (records[position].t_start if position < total
                    else None)
            ack = client.append_events(
                args.session, args.stream,
                [event_to_dict(record) for record in chunk],
                watermark=mark)
            summary["replayed"] += ack.appended
            summary["episodes_closed"] += ack.episodes_closed
            summary["watermark"] = ack.watermark
        if position >= total and not args.no_close:
            closed = client.close_stream(args.session, args.stream)
            summary["closed"] = True
            summary["events_acked"] = closed.events_acked
            summary["episodes_total"] = closed.episodes_total
        summary["behind_schedule"] = schedule.behind
    except ServiceError as error:
        print("error: {}: {}".format(error.code, error.message),
              file=sys.stderr)
        return 1
    except OSError as error:
        print("error: cannot reach {}: {}".format(args.url, error),
              file=sys.stderr)
        return 1
    finally:
        client.close()
    if args.json:
        print(json.dumps(summary, sort_keys=True))
        return 0
    print("replayed events [{}:{}] of {} to {}/{} "
          "({} episode(s) closed in flight)".format(
              args.offset, position, total, args.session,
              args.stream, summary["episodes_closed"]))
    if summary["closed"]:
        print("closed: {} event(s) acked, {} episode(s) "
              "total".format(summary["events_acked"],
                             summary["episodes_total"]))
    else:
        print("stream left open at watermark {}".format(
            summary["watermark"]))
    return 0


def cmd_stream_status(args: argparse.Namespace) -> int:
    """Poll one stream's watermark and counters."""
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        info = client.stream_status(args.session, args.stream)
    except ServiceError as error:
        print("error: {}: {}".format(error.code, error.message),
              file=sys.stderr)
        return 1
    except OSError as error:
        print("error: cannot reach {}: {}".format(args.url, error),
              file=sys.stderr)
        return 1
    finally:
        client.close()
    if args.json:
        print(json.dumps(info.status, sort_keys=True))
        return 0
    status = info.status
    print("stream {}/{}: watermark={} acked={} open_events={} "
          "episodes={} late={} dropped={}".format(
              args.session, args.stream, status.get("watermark"),
              status.get("events_acked"), status.get("open_events"),
              status.get("episodes_stored"),
              status.get("late_events"),
              status.get("dropped_late")))
    return 0


def cmd_stream_close(args: argparse.Namespace) -> int:
    """Flush and retire one stream."""
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        closed = client.close_stream(args.session, args.stream)
    except ServiceError as error:
        print("error: {}: {}".format(error.code, error.message),
              file=sys.stderr)
        return 1
    except OSError as error:
        print("error: cannot reach {}: {}".format(args.url, error),
              file=sys.stderr)
        return 1
    finally:
        client.close()
    if args.json:
        print(json.dumps(closed.to_dict(), sort_keys=True))
        return 0
    print("closed {}/{}: {} event(s) acked, {} episode(s) "
          "total".format(args.session, args.stream,
                         closed.events_acked, closed.episodes_total))
    return 0


def _synth_venue(args: argparse.Namespace):
    """Generate the venue the synth subcommands share."""
    from repro.synth import VenueSpec, generate_venue

    spec = VenueSpec(archetype=args.archetype, seed=args.seed,
                     floors=args.floors,
                     rooms_per_floor=args.rooms_per_floor)
    return generate_venue(spec)


def cmd_synth_venue(args: argparse.Namespace) -> int:
    """Generate one parametric venue, validate it, print its card."""
    venue = _synth_venue(args)
    problems = venue.validate()
    summary = venue.summary()
    summary["valid"] = not problems
    summary["problems"] = problems
    if not problems:
        summary["route_hops"] = venue.plan_all_rooms()
    if args.json:
        print(json.dumps(summary, sort_keys=True))
        return 0 if not problems else 1
    if problems:
        for problem in problems:
            print("invalid: {}".format(problem), file=sys.stderr)
        return 1
    print("{venue}: {floors} floor(s), {cells} cell(s), "
          "{edges} edge(s), {beacons} beacon(s)".format(**summary))
    print("entrances: {}  exits: {}  route hops: {}".format(
        ", ".join(summary["entrances"]),
        ", ".join(summary["exits"]), summary["route_hops"]))
    return 0


def cmd_synth_crowd(args: argparse.Namespace) -> int:
    """Stream a synthetic crowd; print its digest (and maybe CSV).

    The default mode only *streams* — it hashes and counts the events
    without materializing them, so ``--agents 1000000`` runs in
    bounded memory.  The printed sha256 digest is the determinism
    oracle: the same seeds must print the same digest on any machine.
    """
    import hashlib

    from repro.synth import CrowdSpec, CrowdSynthesizer
    from repro.synth.crowd import event_row

    venue = _synth_venue(args)
    spec = CrowdSpec(agents=args.agents, seed=args.crowd_seed,
                     agents_per_day=args.agents_per_day)
    crowd = CrowdSynthesizer(venue, spec)
    digest = hashlib.sha256()
    counted = {"events": 0}

    def tap(events):
        for record in events:
            digest.update(event_row(record))
            counted["events"] += 1
            yield record

    if args.out:
        write_detections_csv(tap(crowd.iter_events()), args.out)
    else:
        for _ in tap(crowd.iter_events()):
            pass
    summary = dict(crowd.provenance())
    summary.update({"events": counted["events"],
                    "digest": digest.hexdigest(),
                    "peak_buffered": crowd.peak_buffered,
                    "days": spec.days, "out": args.out})
    if args.json:
        print(json.dumps(summary, sort_keys=True))
        return 0
    print("{agents} agent(s) over {days} day(s) in {venue}: "
          "{events} event(s), peak buffer {peak_buffered}".format(
              **summary))
    print("digest: sha256:{}".format(summary["digest"]))
    if args.out:
        print("written: {}".format(args.out))
    return 0


def cmd_synth_replay(args: argparse.Namespace) -> int:
    """Synthesize a crowd and replay it against a server."""
    from repro.service.client import ServiceClient, ServiceError
    from repro.synth import CrowdSpec, CrowdSynthesizer, TrafficReplayer

    venue = _synth_venue(args)
    spec = CrowdSpec(agents=args.agents, seed=args.crowd_seed,
                     agents_per_day=args.agents_per_day)
    crowd = CrowdSynthesizer(venue, spec)
    client = ServiceClient(args.url, timeout=args.timeout)
    replayer = TrafficReplayer(client, args.session, venue,
                               rate=args.rate, chunk=args.chunk)
    try:
        if args.mode == "batch":
            report = replayer.replay_batch(crowd.iter_events())
        elif args.mode == "stream":
            report = replayer.replay_stream(crowd.iter_events(),
                                            stream=args.stream)
        else:
            report = replayer.replay_queries(args.queries)
        report.provenance = crowd.provenance()
        replayer.verify_delivery(report)
    except ServiceError as error:
        print("error: {}: {}".format(error.code, error.message),
              file=sys.stderr)
        return 1
    except OSError as error:
        print("error: cannot reach {}: {}".format(args.url, error),
              file=sys.stderr)
        return 1
    finally:
        client.close()
    payload = report.as_dict()
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print("{mode} replay to {session}: {ok}/{requests} request(s) "
              "ok, {shed} shed, {errors} error(s)".format(**payload))
        print("{events} event(s), {episodes} episode(s) in "
              "{seconds:.2f}s ({events_per_s:.0f} ev/s)".format(
                  **payload))
        if payload["latency_ms"]:
            print("latency ms: p50={p50:.1f} p95={p95:.1f} "
                  "p99={p99:.1f} max={max:.1f}".format(
                      **payload["latency_ms"]))
        print("delivery ok: {}".format(
            payload["server"].get("delivery_ok")))
    failed = report.errors > 0 or (
        payload["server"].get("delivery_ok") is False)
    return 1 if failed else 0


def cmd_zones(args: argparse.Namespace) -> int:
    """Print the 52-zone table."""
    print("{:10s} {:10s} {:>5s} {:>8s}  {}".format(
        "zone", "wing", "floor", "dataset", "theme"))
    for zone in ZONES:
        print("{:10s} {:10s} {:>5d} {:>8s}  {}".format(
            zone.zone_id, zone.wing, zone.floor,
            "yes" if zone.in_dataset else "no", zone.theme))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic Indoor Trajectory Model reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate",
                              help="generate the synthetic corpus")
    generate.add_argument("--scale", type=float, default=1.0,
                          help="corpus scale in (0, 1]")
    generate.add_argument("--out", default="detections.csv",
                          help="output CSV path")
    generate.set_defaults(func=cmd_generate)

    stats = sub.add_parser("stats",
                           help="Section 4.1 statistics, paper vs measured")
    stats.add_argument("--scale", type=float, default=1.0)
    stats.set_defaults(func=cmd_stats)

    experiments = sub.add_parser("experiments",
                                 help="reproduce every table and figure")
    experiments.add_argument("--scale", type=float, default=1.0)
    experiments.set_defaults(func=cmd_experiments)

    validate = sub.add_parser("validate",
                              help="validate a detection CSV")
    validate.add_argument("path", help="detection CSV path")
    validate.set_defaults(func=cmd_validate)

    zones = sub.add_parser("zones", help="print the 52-zone table")
    zones.set_defaults(func=cmd_zones)

    query = sub.add_parser(
        "query",
        help="run a declarative planned query over a corpus",
        description="Predicates are AND-ed; --or starts a new "
                    "disjunct group; --not negates the next "
                    "predicate.  Example: --visiting zone60853 --or "
                    "--annotation goal=visit --limit 10 --explain")
    corpus = query.add_argument_group("corpus")
    corpus.add_argument("--scale", type=float, default=0.05,
                        help="synthetic corpus scale in (0, 1] "
                             "(default: %(default)s)")
    corpus.add_argument("--csv", metavar="PATH",
                        help="build the corpus from a detection CSV")
    corpus.add_argument("--jsonl", metavar="PATH",
                        help="load trajectories from a JSON-lines "
                             "archive")
    predicates = query.add_argument_group("predicates (order matters)")
    predicates.add_argument("--visiting", dest="visiting",
                            action=_TermAction, metavar="STATE",
                            help="trajectories visiting the state")
    predicates.add_argument("--annotation", dest="annotation",
                            action=_TermAction, metavar="KIND=VALUE",
                            help="trajectories annotated with "
                                 "KIND=VALUE, e.g. goal=visit")
    predicates.add_argument("--mo", dest="mo", action=_TermAction,
                            metavar="ID",
                            help="one moving object's trajectories")
    predicates.add_argument("--between", dest="between", nargs=2,
                            action=_TermAction, metavar=("T1", "T2"),
                            help="active in the time window [T1, T2]")
    predicates.add_argument("--min-duration", dest="min_duration",
                            type=float, action=_TermAction,
                            metavar="SECONDS",
                            help="lasting at least SECONDS")
    predicates.add_argument("--min-entries", dest="min_entries",
                            type=int, action=_TermAction, metavar="N",
                            help="with at least N presence intervals")
    predicates.add_argument("--follows", dest="follows",
                            action=_TermAction, metavar="A,B,...",
                            help="containing the contiguous state "
                                 "sequence")
    predicates.add_argument("--or", dest="or_sep", nargs=0,
                            action=_TermAction,
                            help="start a new OR group")
    predicates.add_argument("--not", dest="not_next", nargs=0,
                            action=_TermAction,
                            help="negate the next predicate")
    shaping = query.add_argument_group("results")
    shaping.add_argument("--limit", type=int, default=10,
                         help="print at most N hits "
                              "(default: %(default)s)")
    shaping.add_argument("--offset", type=int, default=0,
                         help="skip the first N hits")
    shaping.add_argument("--order-by", dest="order_by",
                         choices=("doc_id", "mo_id", "t_start",
                                  "t_end", "duration", "entries"),
                         help="sort hits by a field")
    shaping.add_argument("--desc", action="store_true",
                         help="sort descending")
    shaping.add_argument("--count", action="store_true",
                         help="print only the match count")
    shaping.add_argument("--explain", action="store_true",
                         help="print the chosen physical plan")
    shaping.add_argument("--json", action="store_true",
                         help="emit hits as JSON (service wire "
                              "format)")
    # No terms=[] default here: a parser-level list would be shared
    # across parses; _TermAction lazily creates one per namespace.
    query.set_defaults(func=cmd_query)

    pipeline = sub.add_parser(
        "pipeline",
        help="the streaming pipeline engine (repro.pipeline)")
    pipe_sub = pipeline.add_subparsers(dest="pipeline_command",
                                       required=True)
    run = pipe_sub.add_parser(
        "run", help="assemble a pipeline from registered stages and "
                    "stream a corpus through it")
    run.add_argument("--scale", type=float, default=0.1,
                     help="synthetic corpus scale in (0, 1]")
    run.add_argument("--csv", metavar="PATH",
                     help="stream detections from a CSV file instead "
                          "of generating the corpus")
    run.add_argument("--batch-size", type=int, default=512,
                     help="records per engine batch")
    run.add_argument("--streaming", action="store_true",
                     help="streaming segmentation: O(batch) memory, "
                          "requires visit-contiguous input")
    run.add_argument("--stages", default=DEFAULT_STAGES,
                     help="comma-separated registry stage names "
                          "(default: %(default)s)")
    run.add_argument("--store", action="store_true",
                     help="append a trajectory-store sink")
    run.add_argument("--mine", action="store_true",
                     help="append state-sequences + prefixspan stages")
    run.add_argument("--min-support", type=float, default=0.05,
                     help="prefixspan support (fraction < 1, else "
                          "absolute count)")
    run.add_argument("--out", metavar="PATH",
                     help="write trajectories to a JSON-lines archive")
    run.add_argument("--workers", type=int, default=0,
                     help="run parallel-safe stages on a pool of this "
                          "size (0 = serial)")
    run.add_argument("--executor", choices=["thread", "process"],
                     default="thread",
                     help="pool kind for --workers (default: thread)")
    run.add_argument("--no-timing", action="store_true",
                     help="skip per-batch wall-time accounting "
                          "(hot-path fast mode)")
    run.add_argument("--cache-dir", metavar="DIR",
                     help="disk-backed stage cache: memoized "
                          "clean→…→annotate prefixes survive "
                          "restarts (repro.persist.DiskStageCache)")
    run.add_argument("--json", action="store_true",
                     help="emit metrics and mined patterns as JSON")
    run.set_defaults(func=cmd_pipeline_run)
    stages = pipe_sub.add_parser("stages",
                                 help="list registered pipeline stages")
    stages.set_defaults(func=cmd_pipeline_stages)

    snapshot = sub.add_parser(
        "snapshot",
        help="build a corpus and persist it to disk (repro.persist)",
        description="Builds the corpus (synthetic, CSV, or JSONL) "
                    "and writes a durable session directory: a "
                    "checksummed snapshot plus an append log for "
                    "later ingestion.  Recover with 'repro restore'.")
    snapshot.add_argument("--out", required=True, metavar="DIR",
                          help="durable session directory to write")
    snapshot.add_argument("--scale", type=float, default=0.05,
                          help="synthetic corpus scale in (0, 1] "
                               "(default: %(default)s)")
    snapshot.add_argument("--csv", metavar="PATH",
                          help="build from a detection CSV instead")
    snapshot.add_argument("--jsonl", metavar="PATH",
                          help="load trajectories from a JSON-lines "
                               "archive instead")
    snapshot.add_argument("--no-fsync", action="store_true",
                          help="skip fsync on log writes (faster, "
                               "weaker durability)")
    snapshot.add_argument("--json", action="store_true",
                          help="emit the snapshot info as JSON")
    snapshot.set_defaults(func=cmd_snapshot)

    restore = sub.add_parser(
        "restore",
        help="recover a persisted session directory",
        description="Loads the directory's current snapshot, replays "
                    "its append log, verifies checksums, and prints "
                    "the corpus summary (or serves it with --serve).")
    restore.add_argument("path", metavar="DIR",
                         help="durable session directory")
    restore.add_argument("--no-verify", action="store_true",
                         help="skip checksum verification (faster)")
    restore.add_argument("--serve", action="store_true",
                         help="serve the restored corpus over HTTP")
    restore.add_argument("--host", default="127.0.0.1",
                         help="bind address for --serve")
    restore.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help="TCP port for --serve")
    restore.add_argument("--json", action="store_true",
                         help="emit the summary as JSON")
    restore.set_defaults(func=cmd_restore)

    serve = sub.add_parser(
        "serve",
        help="run the embedded trajectory server (repro.service)",
        description="Starts the HTTP/JSON service and, unless "
                    "--empty, builds one session first.  See "
                    "docs/service.md for the protocol.")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help="TCP port, 0 for ephemeral "
                            "(default: %(default)s)")
    serve.add_argument("--session", default="louvre",
                       help="name of the preloaded session "
                            "(default: %(default)s)")
    serve.add_argument("--scale", type=float, default=0.05,
                       help="synthetic corpus scale for the preload "
                            "(default: %(default)s)")
    serve.add_argument("--csv", metavar="PATH",
                       help="preload from a detection CSV instead of "
                            "the synthetic corpus")
    serve.add_argument("--workers", type=int, default=0,
                       help="parallel build workers (default: serial)")
    serve.add_argument("--executor", choices=["thread", "process"],
                       default="thread",
                       help="pool kind for --workers")
    serve.add_argument("--lazy", action="store_true",
                       help="serve immediately and build the preload "
                            "session in the background")
    serve.add_argument("--empty", action="store_true",
                       help="start with no sessions (clients build "
                            "their own)")
    serve.add_argument("--persist-dir", metavar="DIR",
                       help="durable session root: restore sessions "
                            "found there on start, journal builds, "
                            "auto-checkpoint (repro.persist)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each request line")
    serve.add_argument("--legacy-server", action="store_true",
                       help="use the threaded http.server front-end "
                            "instead of the asyncio one")
    serve.add_argument("--sync-workers", type=int, default=4,
                       metavar="N",
                       help="executor threads bridging the asyncio "
                            "front-end into the command path "
                            "(default: %(default)s)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       metavar="N",
                       help="commands in flight before the asyncio "
                            "front-end sheds load with 503 "
                            "(default: %(default)s)")
    serve.add_argument("--no-response-cache", action="store_true",
                       help="recompute every read command instead of "
                            "serving repeats from the versioned "
                            "response cache")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="shard sessions across N executors and "
                            "serve through the scatter-gather "
                            "coordinator (repro.shard)")
    serve.add_argument("--shard-backend",
                       choices=["local", "process"], default="local",
                       help="shard executors: in-process registries "
                            "or one spawned server per shard "
                            "(default: %(default)s)")
    serve.add_argument("--replicas", type=int, default=1,
                       metavar="R",
                       help="replicas per shard: reads load-balance "
                            "and fail over across R executors; "
                            "replicas past the first are standbys "
                            "fed by write fan-out (default: "
                            "%(default)s)")
    serve.add_argument("--standby", action="store_true",
                       help="open --persist-dir read-only: restore "
                            "the primary's snapshots + journal but "
                            "never write them (read-replica mode; "
                            "used by --replicas worker processes)")
    serve.add_argument("--url-file", metavar="PATH",
                       help="announce the bound URL and pid as JSON "
                            "to PATH (written atomically after bind)")
    serve.set_defaults(func=cmd_serve)

    rebalance = sub.add_parser(
        "rebalance",
        help="re-split a durable shard root onto a new shard count",
        description="Offline resharding: reopens every shard's "
                    "snapshot under DIR, reroutes each document "
                    "through the new consistent-hash ring and swaps "
                    "in the re-split stores atomically.  No server "
                    "may hold DIR open while this runs.")
    rebalance.add_argument("--dir", required=True, metavar="DIR",
                           help="shard persist root (contains "
                                "shard.json and shard-K/)")
    rebalance.add_argument("--shards", type=int, required=True,
                           metavar="N", help="new shard count")
    rebalance.add_argument("--json", action="store_true",
                           help="print the rebalance report as JSON")
    rebalance.set_defaults(func=cmd_rebalance)

    call = sub.add_parser(
        "call",
        help="issue one service-protocol command over HTTP",
        description="PAYLOAD is a protocol command as JSON ('-' reads "
                    "stdin); the \"v\" field is filled in when "
                    "omitted.  Example: repro call '{\"command\": "
                    "\"RunQuery\", \"session\": \"louvre\", "
                    "\"limit\": 5}'")
    call.add_argument("payload",
                      help="command JSON, or '-' to read stdin")
    call.add_argument("--url",
                      default="http://127.0.0.1:{}".format(
                          DEFAULT_PORT),
                      help="server base URL (default: %(default)s)")
    call.add_argument("--timeout", type=float, default=30.0,
                      help="request timeout in seconds")
    call.add_argument("--pretty", action="store_true",
                      help="indent the response JSON")
    call.set_defaults(func=cmd_call)

    stream = sub.add_parser(
        "stream",
        help="live trajectory ingestion over HTTP (repro.stream)",
        description="Drives a server's durable ingestion streams: "
                    "'replay' feeds a corpus as an interleaved "
                    "event-time stream (resumable with --offset/"
                    "--limit after a crash), 'status' polls the "
                    "watermark and counters, 'close' flushes and "
                    "retires the stream.  See docs/streaming.md.")
    stream_sub = stream.add_subparsers(dest="stream_command",
                                       required=True)

    def stream_common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--url",
                            default="http://127.0.0.1:{}".format(
                                DEFAULT_PORT),
                            help="server base URL "
                                 "(default: %(default)s)")
        parser.add_argument("--session", default="live",
                            help="target session, created on first "
                                 "open (default: %(default)s)")
        parser.add_argument("--stream", default="replay",
                            help="stream name within the session "
                                 "(default: %(default)s)")
        parser.add_argument("--timeout", type=float, default=30.0,
                            help="request timeout in seconds")
        parser.add_argument("--json", action="store_true",
                            help="emit the summary as JSON")

    replay = stream_sub.add_parser(
        "replay",
        help="replay a corpus as a live event stream",
        description="Opens (or re-attaches to) the stream and feeds "
                    "the corpus in deterministic event-time order, "
                    "one durability-acked batch at a time, with an "
                    "honest watermark after every batch.  A partial "
                    "replay (--limit, or a crash) resumes with "
                    "--offset at the first unacked event.")
    stream_common(replay)
    replay.add_argument("--scale", type=float, default=0.05,
                        help="synthetic corpus scale in (0, 1] "
                             "(default: %(default)s)")
    replay.add_argument("--csv", metavar="PATH",
                        help="replay a detection CSV instead of the "
                             "synthetic corpus")
    replay.add_argument("--chunk", type=int, default=200,
                        metavar="N",
                        help="events per append batch "
                             "(default: %(default)s)")
    replay.add_argument("--offset", type=int, default=0,
                        metavar="N",
                        help="skip the first N events of the "
                             "ordering (resume point)")
    replay.add_argument("--limit", type=int, default=None,
                        metavar="N",
                        help="replay at most N events, then stop "
                             "without closing")
    replay.add_argument("--gap-seconds", type=float, default=None,
                        help="episode gap threshold in seconds "
                             "(default: the server's)")
    replay.add_argument("--checkpoint-every", type=int, default=64,
                        metavar="N",
                        help="journal entries between state "
                             "checkpoints (default: %(default)s)")
    replay.add_argument("--no-close", action="store_true",
                        help="leave the stream open after the last "
                             "event")
    replay.add_argument("--rate", type=float, default=None,
                        metavar="EV_PER_S",
                        help="open-loop pacing in events/second "
                             "(default: as fast as acked)")
    replay.set_defaults(func=cmd_stream_replay)

    stream_status = stream_sub.add_parser(
        "status", help="poll a stream's watermark and counters")
    stream_common(stream_status)
    stream_status.set_defaults(func=cmd_stream_status)

    stream_close = stream_sub.add_parser(
        "close", help="flush and retire a stream")
    stream_common(stream_close)
    stream_close.set_defaults(func=cmd_stream_close)

    synth = sub.add_parser(
        "synth",
        help="parametric venues, crowds and load replay "
             "(repro.synth)",
        description="Seeded synthesis: 'venue' generates and "
                    "validates one parametric venue, 'crowd' streams "
                    "a deterministic crowd over it (printing the "
                    "sha256 determinism digest), 'replay' drives a "
                    "server with the crowd at a target rate.  See "
                    "docs/synthetic.md.")
    synth_sub = synth.add_subparsers(dest="synth_command",
                                     required=True)

    def synth_venue_args(parser: argparse.ArgumentParser) -> None:
        from repro.synth import ARCHETYPES

        parser.add_argument("--archetype", default="museum",
                            choices=sorted(ARCHETYPES),
                            help="venue grammar "
                                 "(default: %(default)s)")
        parser.add_argument("--seed", type=int, default=0,
                            help="venue seed (default: %(default)s)")
        parser.add_argument("--floors", type=int, default=None,
                            metavar="N",
                            help="override the grammar's floor draw")
        parser.add_argument("--rooms-per-floor", type=int,
                            default=None, metavar="N",
                            help="override the grammar's room draw")
        parser.add_argument("--json", action="store_true",
                            help="emit the summary as JSON")

    def synth_crowd_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--agents", type=int, default=1000,
                            metavar="N",
                            help="crowd size (default: %(default)s)")
        parser.add_argument("--crowd-seed", type=int, default=0,
                            metavar="SEED",
                            help="crowd seed, independent of the "
                                 "venue seed (default: %(default)s)")
        parser.add_argument("--agents-per-day", type=int,
                            default=5000, metavar="N",
                            help="day-bucket size — the memory bound "
                                 "(default: %(default)s)")

    synth_venue = synth_sub.add_parser(
        "venue",
        help="generate and validate one parametric venue")
    synth_venue_args(synth_venue)
    synth_venue.set_defaults(func=cmd_synth_venue)

    synth_crowd = synth_sub.add_parser(
        "crowd",
        help="stream a deterministic crowd; print its digest",
        description="Streams the crowd in O(agents-per-day) memory; "
                    "the sha256 digest over canonical event rows is "
                    "byte-stable across processes and machines for "
                    "one (venue seed, crowd seed) pair.")
    synth_venue_args(synth_crowd)
    synth_crowd_args(synth_crowd)
    synth_crowd.add_argument("--out", metavar="PATH",
                             help="also write the events as a "
                                  "detection CSV")
    synth_crowd.set_defaults(func=cmd_synth_crowd)

    synth_replay = synth_sub.add_parser(
        "replay",
        help="replay a synthetic crowd against a server",
        description="Open-loop load driver: batch mode segments "
                    "locally and ships episodes as IngestDocuments; "
                    "stream mode appends raw events with honest "
                    "watermarks; queries mode runs a read mix.  "
                    "Latency is measured from each request's "
                    "intended time.")
    synth_venue_args(synth_replay)
    synth_crowd_args(synth_replay)
    synth_replay.add_argument("--url",
                              default="http://127.0.0.1:{}".format(
                                  DEFAULT_PORT),
                              help="server base URL "
                                   "(default: %(default)s)")
    synth_replay.add_argument("--session", default="synth",
                              help="target session "
                                   "(default: %(default)s)")
    synth_replay.add_argument("--stream", default="replay",
                              help="stream name for --mode stream "
                                   "(default: %(default)s)")
    synth_replay.add_argument("--mode", default="batch",
                              choices=["batch", "stream", "queries"],
                              help="replay mode "
                                   "(default: %(default)s)")
    synth_replay.add_argument("--rate", type=float, default=None,
                              metavar="PER_S",
                              help="events/s (batch, stream) or "
                                   "requests/s (queries); default: "
                                   "as fast as acked")
    synth_replay.add_argument("--chunk", type=int, default=256,
                              metavar="N",
                              help="events per request "
                                   "(default: %(default)s)")
    synth_replay.add_argument("--queries", type=int, default=100,
                              metavar="N",
                              help="request count for --mode queries "
                                   "(default: %(default)s)")
    synth_replay.add_argument("--timeout", type=float, default=30.0,
                              help="request timeout in seconds")
    synth_replay.set_defaults(func=cmd_synth_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
