"""Command-line interface for the SITM reproduction.

Usage (after installation)::

    python -m repro.cli generate --scale 0.1 --out detections.csv
    python -m repro.cli stats --scale 1.0
    python -m repro.cli experiments --scale 1.0
    python -m repro.cli validate detections.csv
    python -m repro.cli zones

Every subcommand is a thin shell over the library API, so scripted
pipelines can do exactly what the CLI does.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import TrajectoryBuilder, validate_trajectory
from repro.core.validation import Severity
from repro.experiments import dataset_stats
from repro.experiments.runner import render_report, run_all
from repro.louvre import (
    DatasetParameters,
    LouvreDatasetGenerator,
    LouvreSpace,
)
from repro.louvre.zones import ZONES
from repro.storage.csvio import (
    read_detrecords_csv,
    write_detections_csv,
)


def _parameters(scale: float) -> DatasetParameters:
    if scale >= 1.0:
        return DatasetParameters()
    return DatasetParameters().scaled(scale)


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate the synthetic corpus and write it as detection CSV."""
    space = LouvreSpace()
    generator = LouvreDatasetGenerator(space, _parameters(args.scale))
    records = generator.detection_records()
    count = write_detections_csv(records, args.out)
    print("wrote {} detection records to {}".format(count, args.out))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Recompute the Section 4.1 statistics and compare to the paper."""
    result = dataset_stats.run(scale=args.scale)
    print(dataset_stats.render(result))
    return 0 if result["all_match"] or args.scale < 1.0 else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    """Run every table/figure reproduction and print the report."""
    results = run_all(scale=args.scale)
    print(render_report(results))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate a detection CSV against the Louvre zone topology."""
    space = LouvreSpace()
    records = read_detrecords_csv(args.path)
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    trajectories, report = builder.build_all(records)
    nrg = space.dataset_zone_nrg()
    error_total = warning_total = 0
    for trajectory in trajectories:
        for issue in validate_trajectory(trajectory, nrg):
            if issue.severity is Severity.ERROR:
                error_total += 1
            elif issue.severity is Severity.WARNING:
                warning_total += 1
    print("records: {} | visits: {} | dropped zero-duration: {}".format(
        report.cleaning.total, report.trajectories,
        report.cleaning.dropped_zero_duration))
    print("validation: {} errors, {} warnings".format(error_total,
                                                      warning_total))
    return 1 if error_total else 0


def cmd_zones(args: argparse.Namespace) -> int:
    """Print the 52-zone table."""
    print("{:10s} {:10s} {:>5s} {:>8s}  {}".format(
        "zone", "wing", "floor", "dataset", "theme"))
    for zone in ZONES:
        print("{:10s} {:10s} {:>5d} {:>8s}  {}".format(
            zone.zone_id, zone.wing, zone.floor,
            "yes" if zone.in_dataset else "no", zone.theme))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic Indoor Trajectory Model reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate",
                              help="generate the synthetic corpus")
    generate.add_argument("--scale", type=float, default=1.0,
                          help="corpus scale in (0, 1]")
    generate.add_argument("--out", default="detections.csv",
                          help="output CSV path")
    generate.set_defaults(func=cmd_generate)

    stats = sub.add_parser("stats",
                           help="Section 4.1 statistics, paper vs measured")
    stats.add_argument("--scale", type=float, default=1.0)
    stats.set_defaults(func=cmd_stats)

    experiments = sub.add_parser("experiments",
                                 help="reproduce every table and figure")
    experiments.add_argument("--scale", type=float, default=1.0)
    experiments.set_defaults(func=cmd_experiments)

    validate = sub.add_parser("validate",
                              help="validate a detection CSV")
    validate.add_argument("path", help="detection CSV path")
    validate.set_defaults(func=cmd_validate)

    zones = sub.add_parser("zones", help="print the 52-zone table")
    zones.set_defaults(func=cmd_zones)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
