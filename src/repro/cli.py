"""Command-line interface for the SITM reproduction.

Usage (after installation)::

    python -m repro.cli generate --scale 0.1 --out detections.csv
    python -m repro.cli stats --scale 1.0
    python -m repro.cli experiments --scale 1.0
    python -m repro.cli validate detections.csv
    python -m repro.cli zones
    python -m repro.cli pipeline run --scale 0.1 --store --mine
    python -m repro.cli pipeline stages

Every subcommand is a thin shell over the library API, so scripted
pipelines can do exactly what the CLI does.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import TrajectoryBuilder, validate_trajectory
from repro.core.validation import Severity
from repro.experiments import dataset_stats
from repro.experiments.runner import render_report, run_all
from repro.louvre import (
    DatasetParameters,
    LouvreDatasetGenerator,
    LouvreSpace,
)
from repro.louvre.zones import ZONES
from repro.pipeline import (
    Pipeline,
    PipelineError,
    PrefixSpanStage,
    StoreSinkStage,
    UnknownStageError,
    create_stage,
    csv_source,
    louvre_source,
    stage_catalog,
)
from repro.storage.csvio import (
    read_detrecords_csv,
    write_detections_csv,
)

#: Default stage chain of ``pipeline run`` — the builder decomposition.
DEFAULT_STAGES = "clean,segment,trace,annotate"


def _parameters(scale: float) -> DatasetParameters:
    if scale >= 1.0:
        return DatasetParameters()
    return DatasetParameters().scaled(scale)


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate the synthetic corpus and write it as detection CSV."""
    space = LouvreSpace()
    generator = LouvreDatasetGenerator(space, _parameters(args.scale))
    records = generator.detection_records()
    count = write_detections_csv(records, args.out)
    print("wrote {} detection records to {}".format(count, args.out))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Recompute the Section 4.1 statistics and compare to the paper."""
    result = dataset_stats.run(scale=args.scale)
    print(dataset_stats.render(result))
    return 0 if result["all_match"] or args.scale < 1.0 else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    """Run every table/figure reproduction and print the report."""
    results = run_all(scale=args.scale)
    print(render_report(results))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate a detection CSV against the Louvre zone topology."""
    space = LouvreSpace()
    records = read_detrecords_csv(args.path)
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    trajectories, report = builder.build_all(records)
    nrg = space.dataset_zone_nrg()
    error_total = warning_total = 0
    for trajectory in trajectories:
        for issue in validate_trajectory(trajectory, nrg):
            if issue.severity is Severity.ERROR:
                error_total += 1
            elif issue.severity is Severity.WARNING:
                warning_total += 1
    print("records: {} | visits: {} | dropped zero-duration: {}".format(
        report.cleaning.total, report.trajectories,
        report.cleaning.dropped_zero_duration))
    print("validation: {} errors, {} warnings".format(error_total,
                                                      warning_total))
    return 1 if error_total else 0


def _pipeline_stage_kwargs(name: str, args: argparse.Namespace,
                           builder: TrajectoryBuilder) -> dict:
    """Constructor arguments for a named stage, from CLI options."""
    if name in ("clean", "trace", "annotate"):
        return {"builder": builder}
    if name == "segment":
        return {"builder": builder, "streaming": args.streaming}
    if name == "prefixspan":
        return {"min_support": args.min_support}
    if name == "jsonl-sink":
        return {"path": args.out}
    return {}


def cmd_pipeline_run(args: argparse.Namespace) -> int:
    """Assemble a pipeline from registry names and stream a corpus."""
    space = LouvreSpace()
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    names = [name.strip() for name in args.stages.split(",")
             if name.strip()]
    if "jsonl-sink" in names and not args.out:
        print("error: stage 'jsonl-sink' needs --out PATH",
              file=sys.stderr)
        return 2
    if args.out and "jsonl-sink" not in names:
        names.append("jsonl-sink")
    if args.store:
        names.append("store")
    if args.mine:
        names.extend(["state-sequences", "prefixspan"])
    try:
        stages = [create_stage(name,
                               **_pipeline_stage_kwargs(name, args,
                                                        builder))
                  for name in names]
    except UnknownStageError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    if args.csv:
        source = csv_source(args.csv)
    else:
        source = louvre_source(space, scale=args.scale)
    try:
        pipeline = Pipeline(stages, batch_size=args.batch_size)
        pipeline.run(source, collect=False)
    except PipelineError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    except (OSError, ValueError) as error:
        # bad --csv path or malformed detection CSV
        print("error: {}".format(error), file=sys.stderr)
        return 1

    print("pipeline: {}".format(" -> ".join(names)))
    print("batch size: {} | mode: {}".format(
        args.batch_size, "streaming" if args.streaming else "exact"))
    print()
    print(pipeline.metrics.render())
    for stage in stages:
        if isinstance(stage, StoreSinkStage):
            print("\nstored trajectories: {}".format(len(stage.store)))
        if isinstance(stage, PrefixSpanStage) and stage.patterns:
            print("\ntop sequential patterns:")
            for pattern in stage.patterns[:8]:
                print("  " + pattern.describe())
    return 0


def cmd_pipeline_stages(args: argparse.Namespace) -> int:
    """List the registered pipeline stages."""
    catalog = stage_catalog()
    width = max(len(name) for name, _ in catalog)
    for name, description in catalog:
        print("{:{width}s}  {}".format(name, description, width=width))
    return 0


def cmd_zones(args: argparse.Namespace) -> int:
    """Print the 52-zone table."""
    print("{:10s} {:10s} {:>5s} {:>8s}  {}".format(
        "zone", "wing", "floor", "dataset", "theme"))
    for zone in ZONES:
        print("{:10s} {:10s} {:>5d} {:>8s}  {}".format(
            zone.zone_id, zone.wing, zone.floor,
            "yes" if zone.in_dataset else "no", zone.theme))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic Indoor Trajectory Model reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate",
                              help="generate the synthetic corpus")
    generate.add_argument("--scale", type=float, default=1.0,
                          help="corpus scale in (0, 1]")
    generate.add_argument("--out", default="detections.csv",
                          help="output CSV path")
    generate.set_defaults(func=cmd_generate)

    stats = sub.add_parser("stats",
                           help="Section 4.1 statistics, paper vs measured")
    stats.add_argument("--scale", type=float, default=1.0)
    stats.set_defaults(func=cmd_stats)

    experiments = sub.add_parser("experiments",
                                 help="reproduce every table and figure")
    experiments.add_argument("--scale", type=float, default=1.0)
    experiments.set_defaults(func=cmd_experiments)

    validate = sub.add_parser("validate",
                              help="validate a detection CSV")
    validate.add_argument("path", help="detection CSV path")
    validate.set_defaults(func=cmd_validate)

    zones = sub.add_parser("zones", help="print the 52-zone table")
    zones.set_defaults(func=cmd_zones)

    pipeline = sub.add_parser(
        "pipeline",
        help="the streaming pipeline engine (repro.pipeline)")
    pipe_sub = pipeline.add_subparsers(dest="pipeline_command",
                                       required=True)
    run = pipe_sub.add_parser(
        "run", help="assemble a pipeline from registered stages and "
                    "stream a corpus through it")
    run.add_argument("--scale", type=float, default=0.1,
                     help="synthetic corpus scale in (0, 1]")
    run.add_argument("--csv", metavar="PATH",
                     help="stream detections from a CSV file instead "
                          "of generating the corpus")
    run.add_argument("--batch-size", type=int, default=512,
                     help="records per engine batch")
    run.add_argument("--streaming", action="store_true",
                     help="streaming segmentation: O(batch) memory, "
                          "requires visit-contiguous input")
    run.add_argument("--stages", default=DEFAULT_STAGES,
                     help="comma-separated registry stage names "
                          "(default: %(default)s)")
    run.add_argument("--store", action="store_true",
                     help="append a trajectory-store sink")
    run.add_argument("--mine", action="store_true",
                     help="append state-sequences + prefixspan stages")
    run.add_argument("--min-support", type=float, default=0.05,
                     help="prefixspan support (fraction < 1, else "
                          "absolute count)")
    run.add_argument("--out", metavar="PATH",
                     help="write trajectories to a JSON-lines archive")
    run.set_defaults(func=cmd_pipeline_run)
    stages = pipe_sub.add_parser("stages",
                                 help="list registered pipeline stages")
    stages.set_defaults(func=cmd_pipeline_stages)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
