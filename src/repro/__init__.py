"""repro — a Semantic Indoor Trajectory Model (SITM).

A complete implementation of Kontarinis et al., *Towards a Semantic
Indoor Trajectory Model* (EDBT/BMDA 2019), together with every
substrate the model depends on:

* :mod:`repro.spatial` — geometry kernel, RCC-8/n-intersection
  relations, qualitative spatial reasoning;
* :mod:`repro.indoor` — IndoorGML-compatible cell spaces, NRGs, the
  multi-layered space model, static layer hierarchies, coverage
  analysis, ontology integration, JSON I/O;
* :mod:`repro.core` — the SITM itself (Definitions 3.1–3.4, events,
  building, inference, validation, conceptual trajectories);
* :mod:`repro.positioning` — simulated BLE sensing stack;
* :mod:`repro.movement` — visitor profiles and synthetic agents;
* :mod:`repro.louvre` — the Louvre case study with a
  statistics-calibrated synthetic corpus;
* :mod:`repro.mining` — sequential patterns, association rules,
  similarity, profiling, floor-switching analysis;
* :mod:`repro.storage` — trajectory store, indexes, the declarative
  planned query API (expression trees, cost-based planner, lazy
  result sets);
* :mod:`repro.experiments` — executable reproductions of every table
  and figure in the paper;
* :mod:`repro.api` — the :class:`~repro.api.Workbench` facade
  unifying generate → build → store → query → mine (a local binding
  of the service protocol);
* :mod:`repro.service` — the service layer: multi-dataset session
  registry, typed JSON wire protocol, embedded threaded HTTP server
  and client (``repro serve`` / ``repro call``);
* :mod:`repro.cli` — command-line interface.

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "1.2.0"

__all__ = ["__version__", "Workbench"]


def __getattr__(name):
    # Lazy so `import repro` stays light; `repro.Workbench` works.
    if name == "Workbench":
        from repro.api import Workbench
        return Workbench
    raise AttributeError(
        "module {!r} has no attribute {!r}".format(__name__, name))
