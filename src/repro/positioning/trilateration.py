"""RSSI-based trilateration (linearised least squares).

Given distance estimates ``d_i`` to beacons at known positions
``(x_i, y_i)``, subtracting the first circle equation from the others
yields the linear system ``A·p = b`` with

    A[i-1] = [2(x_i - x_0), 2(y_i - y_0)]
    b[i-1] = d_0² - d_i² + x_i² - x_0² + y_i² - y_0²

solved in the least-squares sense.  Weights proportional to signal
strength (near beacons give better distance estimates) are applied by
row scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.positioning.beacons import Beacon, RssiModel, RssiReading
from repro.spatial.geometry import Point


@dataclass(frozen=True)
class TrilaterationResult:
    """A position estimate with quality metadata.

    Attributes:
        position: the least-squares position.
        beacon_count: how many beacons contributed.
        residual: RMS of the post-fit range residuals (metres); large
            values flag geometrically poor fixes.
    """

    position: Point
    beacon_count: int
    residual: float


def trilaterate(readings: Sequence[RssiReading],
                beacons: Dict[str, Beacon],
                model: RssiModel,
                min_beacons: int = 3) -> Optional[TrilaterationResult]:
    """Estimate a position from RSSI readings.

    Args:
        readings: the scan's readings (one per beacon).
        beacons: beacon registry by id.
        model: the RSSI model used to invert readings to distances.
        min_beacons: minimum usable beacons; below it, ``None`` is
            returned (a coverage gap).

    Returns:
        The weighted least-squares fix, or ``None`` when the fix is
        underdetermined or numerically degenerate.
    """
    usable = [(beacons[r.beacon_id], r) for r in readings
              if r.beacon_id in beacons]
    if len(usable) < min_beacons:
        return None
    # Strongest-signal beacon anchors the linearisation.
    usable.sort(key=lambda pair: pair[1].rssi, reverse=True)
    anchor_beacon, anchor_reading = usable[0]
    d0 = model.distance_from_rssi(anchor_beacon, anchor_reading.rssi)
    x0, y0 = anchor_beacon.position.x, anchor_beacon.position.y

    rows: List[List[float]] = []
    rhs: List[float] = []
    weights: List[float] = []
    for beacon, reading in usable[1:]:
        di = model.distance_from_rssi(beacon, reading.rssi)
        xi, yi = beacon.position.x, beacon.position.y
        rows.append([2.0 * (xi - x0), 2.0 * (yi - y0)])
        rhs.append(d0 ** 2 - di ** 2 + xi ** 2 - x0 ** 2
                   + yi ** 2 - y0 ** 2)
        # dBm are negative; stronger (less negative) → larger weight.
        weights.append(1.0 / max(1.0, -reading.rssi))
    matrix = np.asarray(rows, dtype=float)
    vector = np.asarray(rhs, dtype=float)
    weight_vec = np.sqrt(np.asarray(weights, dtype=float))
    matrix *= weight_vec[:, None]
    vector *= weight_vec

    solution, _, rank, _ = np.linalg.lstsq(matrix, vector, rcond=None)
    if rank < 2 or not np.all(np.isfinite(solution)):
        return None
    position = Point(float(solution[0]), float(solution[1]))

    residuals = []
    for beacon, reading in usable:
        predicted = beacon.position.distance_to(position)
        estimated = model.distance_from_rssi(beacon, reading.rssi)
        residuals.append((predicted - estimated) ** 2)
    rms = float(np.sqrt(np.mean(residuals)))
    return TrilaterationResult(position, len(usable), rms)
