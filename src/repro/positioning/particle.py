"""Particle filter for 2D indoor positioning.

The particle-filter alternative of the Louvre pipeline (Section 4.1).
Particles carry ``[x, y]``; the motion model is a Gaussian random walk
(optionally velocity-informed), and position fixes weight particles by
a Gaussian likelihood.  An indoor-specific feature: particles may be
constrained to a walkable region, which is how wall constraints enter
real indoor particle filters.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.spatial.geometry import Point

#: Optional walkability oracle: True when a coordinate is inside
#: navigable space.  Particles stepping outside are rejected (their
#: move is cancelled), emulating wall constraints.
WalkableFn = Callable[[float, float], bool]


class ParticleFilter2D:
    """Bootstrap particle filter over 2D position.

    Args:
        particle_count: number of particles.
        step_sigma: random-walk standard deviation per second (m).
        measurement_sigma: position measurement noise (m).
        seed: numpy RNG seed (deterministic by default).
        walkable: optional walkability oracle.
    """

    def __init__(self, particle_count: int = 200,
                 step_sigma: float = 1.2,
                 measurement_sigma: float = 3.0,
                 seed: int = 0,
                 walkable: Optional[WalkableFn] = None) -> None:
        if particle_count < 2:
            raise ValueError("need at least two particles")
        self.particle_count = particle_count
        self.step_sigma = step_sigma
        self.measurement_sigma = measurement_sigma
        self._rng = np.random.default_rng(seed)
        self._walkable = walkable
        self.particles = np.zeros((particle_count, 2))
        self.weights = np.full(particle_count, 1.0 / particle_count)
        self._initialised = False

    def initialise(self, position: Point, spread: float = 5.0) -> None:
        """Seed particles around an initial fix."""
        self.particles = (np.array([position.x, position.y])
                          + self._rng.normal(0.0, spread,
                                             (self.particle_count, 2)))
        self.weights.fill(1.0 / self.particle_count)
        self._initialised = True

    def predict(self, dt: float) -> None:
        """Diffuse particles by the random-walk motion model."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        steps = self._rng.normal(0.0, self.step_sigma * np.sqrt(dt),
                                 (self.particle_count, 2))
        proposed = self.particles + steps
        if self._walkable is not None:
            for i in range(self.particle_count):
                if not self._walkable(proposed[i, 0], proposed[i, 1]):
                    proposed[i] = self.particles[i]
        self.particles = proposed

    def update(self, measurement: Point) -> None:
        """Weight particles by the fix likelihood and resample if needed."""
        if not self._initialised:
            self.initialise(measurement)
            return
        deltas = self.particles - np.array([measurement.x, measurement.y])
        sq_dist = np.sum(deltas ** 2, axis=1)
        likelihood = np.exp(-sq_dist / (2.0 * self.measurement_sigma ** 2))
        self.weights *= likelihood + 1e-300
        total = self.weights.sum()
        if total <= 0:
            self.weights.fill(1.0 / self.particle_count)
        else:
            self.weights /= total
        if self.effective_sample_size() < self.particle_count / 2.0:
            self._resample()

    def effective_sample_size(self) -> float:
        """ESS = 1 / Σ w²; small values signal weight degeneracy."""
        return float(1.0 / np.sum(self.weights ** 2))

    def _resample(self) -> None:
        """Systematic resampling (low-variance)."""
        positions = ((np.arange(self.particle_count)
                      + self._rng.random()) / self.particle_count)
        cumulative = np.cumsum(self.weights)
        cumulative[-1] = 1.0
        indexes = np.searchsorted(cumulative, positions)
        self.particles = self.particles[indexes]
        self.weights.fill(1.0 / self.particle_count)

    @property
    def position(self) -> Point:
        """Weighted mean position estimate."""
        mean = np.average(self.particles, axis=0, weights=self.weights)
        return Point(float(mean[0]), float(mean[1]))

    @property
    def spread(self) -> float:
        """Weighted RMS distance of particles from the mean (metres)."""
        mean = np.average(self.particles, axis=0, weights=self.weights)
        deltas = self.particles - mean
        variance = np.average(np.sum(deltas ** 2, axis=1),
                              weights=self.weights)
        return float(np.sqrt(variance))
