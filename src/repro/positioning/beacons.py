"""BLE beacons and the RSSI propagation model.

RSSI is simulated with the standard log-distance path-loss model

    rssi(d) = tx_power - 10 · n · log10(d / d0) + noise

where ``tx_power`` is the received power at the reference distance
``d0`` (1 m), ``n`` is the path-loss exponent (~2 in free space, higher
indoors), and ``noise`` is Gaussian shadowing.  The same model inverts
RSSI back to a distance estimate for trilateration.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.spatial.geometry import BBox, Point

#: Readings below this power are lost to the noise floor and never
#: reported — the source of the paper's "sensor coverage gaps".
DEFAULT_SENSITIVITY_DBM = -95.0


@dataclass(frozen=True)
class Beacon:
    """One installed BLE beacon.

    Attributes:
        beacon_id: unique identifier.
        position: installation point (primal-space coordinates, metres).
        floor: the floor the beacon serves.
        tx_power: received power (dBm) at the 1 m reference distance.
    """

    beacon_id: str
    position: Point
    floor: int = 0
    tx_power: float = -59.0


@dataclass(frozen=True)
class RssiReading:
    """One observed (beacon, RSSI) pair at a point in time."""

    beacon_id: str
    rssi: float
    t: float


class RssiModel:
    """Log-distance path-loss channel with Gaussian shadowing.

    Args:
        path_loss_exponent: ``n``; 1.8–2.2 free space, 2.5–4 indoors.
        sigma: shadowing standard deviation in dB.
        sensitivity: receiver sensitivity floor in dBm; weaker signals
            are dropped.
        rng: deterministic random source.
    """

    def __init__(self, path_loss_exponent: float = 2.7,
                 sigma: float = 4.0,
                 sensitivity: float = DEFAULT_SENSITIVITY_DBM,
                 rng: Optional[random.Random] = None) -> None:
        if path_loss_exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        self.path_loss_exponent = path_loss_exponent
        self.sigma = sigma
        self.sensitivity = sensitivity
        self._rng = rng or random.Random(0)

    def expected_rssi(self, beacon: Beacon, position: Point) -> float:
        """Noise-free RSSI at ``position`` (d clamped to 0.1 m)."""
        distance = max(0.1, beacon.position.distance_to(position))
        return (beacon.tx_power
                - 10.0 * self.path_loss_exponent * math.log10(distance))

    def observe(self, beacon: Beacon, position: Point,
                t: float) -> Optional[RssiReading]:
        """One noisy reading, or ``None`` below the sensitivity floor."""
        rssi = self.expected_rssi(beacon, position) \
            + self._rng.gauss(0.0, self.sigma)
        if rssi < self.sensitivity:
            return None
        return RssiReading(beacon.beacon_id, rssi, t)

    def distance_from_rssi(self, beacon: Beacon, rssi: float) -> float:
        """Invert the path-loss model: RSSI → distance estimate (m)."""
        exponent = (beacon.tx_power - rssi) \
            / (10.0 * self.path_loss_exponent)
        return 10.0 ** exponent

    def scan(self, beacons: Iterable[Beacon], position: Point, floor: int,
             t: float) -> List[RssiReading]:
        """Readings from all same-floor beacons audible at ``position``."""
        readings: List[RssiReading] = []
        for beacon in beacons:
            if beacon.floor != floor:
                continue
            reading = self.observe(beacon, position, t)
            if reading is not None:
                readings.append(reading)
        return readings


class BeaconGrid:
    """A regular beacon deployment over a floor's bounding box.

    The Louvre installed ~1800 beacons over five floors; a grid with
    ~15 m spacing over the synthetic floorplan gives a comparable
    density and, importantly, comparable trilateration geometry.
    """

    def __init__(self, bbox: BBox, floor: int, spacing: float = 15.0,
                 tx_power: float = -59.0,
                 id_prefix: str = "beacon") -> None:
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        self.bbox = bbox
        self.floor = floor
        self.spacing = spacing
        self._beacons: List[Beacon] = []
        index = 0
        y = bbox.min_y + spacing / 2.0
        while y < bbox.max_y:
            x = bbox.min_x + spacing / 2.0
            while x < bbox.max_x:
                self._beacons.append(Beacon(
                    "{}-f{}-{}".format(id_prefix, floor, index),
                    Point(x, y), floor, tx_power))
                index += 1
                x += spacing
            y += spacing

    @property
    def beacons(self) -> Sequence[Beacon]:
        """The deployed beacons."""
        return tuple(self._beacons)

    def __len__(self) -> int:
        return len(self._beacons)

    def nearest(self, position: Point, count: int = 3) -> List[Beacon]:
        """The ``count`` beacons closest to ``position``."""
        return sorted(self._beacons,
                      key=lambda b: b.position.distance_to(position)
                      )[:count]
