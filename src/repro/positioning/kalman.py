"""Extended Kalman filter for 2D indoor track smoothing.

The Louvre app fuses trilateration fixes with inertial cues using
"extended Kalman and particle filtering techniques" (Section 4.1).
This filter tracks the state ``[x, y, vx, vy]`` under a
constant-velocity motion model and position-only measurements.

With a linear measurement model the EKF reduces to a standard KF; the
extended form is kept because the optional heading/speed measurement
(:meth:`update_polar`) — the smartphone "accelerometer and compass" of
the paper — is nonlinear.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.spatial.geometry import Point


class ExtendedKalmanFilter2D:
    """Constant-velocity EKF over ``[x, y, vx, vy]``.

    Args:
        process_noise: continuous acceleration noise density
            (m/s²)² driving the process covariance.
        measurement_noise: position measurement standard deviation (m).
        initial_position: first fix; covariance starts wide.
    """

    def __init__(self, process_noise: float = 0.5,
                 measurement_noise: float = 3.0,
                 initial_position: Optional[Point] = None) -> None:
        self.process_noise = process_noise
        self.measurement_noise = measurement_noise
        self.state = np.zeros(4)
        if initial_position is not None:
            self.state[0] = initial_position.x
            self.state[1] = initial_position.y
        self.covariance = np.diag([25.0, 25.0, 4.0, 4.0])

    # ------------------------------------------------------------------
    def predict(self, dt: float) -> None:
        """Propagate the state ``dt`` seconds forward.

        Raises:
            ValueError: for non-positive ``dt``.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        transition = np.array([
            [1.0, 0.0, dt, 0.0],
            [0.0, 1.0, 0.0, dt],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ])
        q = self.process_noise
        dt2, dt3, dt4 = dt ** 2, dt ** 3, dt ** 4
        process = q * np.array([
            [dt4 / 4, 0.0, dt3 / 2, 0.0],
            [0.0, dt4 / 4, 0.0, dt3 / 2],
            [dt3 / 2, 0.0, dt2, 0.0],
            [0.0, dt3 / 2, 0.0, dt2],
        ])
        self.state = transition @ self.state
        self.covariance = (transition @ self.covariance @ transition.T
                           + process)

    def update_position(self, measurement: Point,
                        noise_scale: float = 1.0) -> None:
        """Fuse one position fix.

        Args:
            measurement: the trilateration fix.
            noise_scale: inflate measurement noise for poor fixes (e.g.
                proportional to the trilateration residual).
        """
        obs_matrix = np.array([
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
        ])
        obs_noise = np.eye(2) * (self.measurement_noise * noise_scale) ** 2
        self._update(np.array([measurement.x, measurement.y]),
                     obs_matrix @ self.state, obs_matrix, obs_noise)

    def update_polar(self, speed: float, heading: float,
                     speed_noise: float = 0.3,
                     heading_noise: float = 0.2) -> None:
        """Fuse a nonlinear speed/heading measurement (the EKF part).

        The measurement function is ``h(x) = [hypot(vx, vy),
        atan2(vy, vx)]``; its Jacobian is linearised at the current
        state.  Near-zero speeds are skipped (undefined heading).
        """
        vx, vy = self.state[2], self.state[3]
        norm = math.hypot(vx, vy)
        if norm < 1e-6:
            return
        predicted = np.array([norm, math.atan2(vy, vx)])
        jacobian = np.array([
            [0.0, 0.0, vx / norm, vy / norm],
            [0.0, 0.0, -vy / norm ** 2, vx / norm ** 2],
        ])
        innovation = np.array([speed, heading]) - predicted
        innovation[1] = _wrap_angle(innovation[1])
        obs_noise = np.diag([speed_noise ** 2, heading_noise ** 2])
        self._update_with_innovation(innovation, jacobian, obs_noise)

    def _update(self, measurement: np.ndarray, predicted: np.ndarray,
                jacobian: np.ndarray, obs_noise: np.ndarray) -> None:
        self._update_with_innovation(measurement - predicted, jacobian,
                                     obs_noise)

    def _update_with_innovation(self, innovation: np.ndarray,
                                jacobian: np.ndarray,
                                obs_noise: np.ndarray) -> None:
        innovation_cov = (jacobian @ self.covariance @ jacobian.T
                          + obs_noise)
        gain = (self.covariance @ jacobian.T
                @ np.linalg.inv(innovation_cov))
        self.state = self.state + gain @ innovation
        identity = np.eye(4)
        self.covariance = (identity - gain @ jacobian) @ self.covariance

    # ------------------------------------------------------------------
    @property
    def position(self) -> Point:
        """Current position estimate."""
        return Point(float(self.state[0]), float(self.state[1]))

    @property
    def velocity(self) -> Tuple[float, float]:
        """Current velocity estimate ``(vx, vy)``."""
        return float(self.state[2]), float(self.state[3])

    @property
    def position_uncertainty(self) -> float:
        """RMS of the position covariance diagonal (metres)."""
        return float(np.sqrt((self.covariance[0, 0]
                              + self.covariance[1, 1]) / 2.0))


def _wrap_angle(angle: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    while angle <= -math.pi:
        angle += 2.0 * math.pi
    while angle > math.pi:
        angle -= 2.0 * math.pi
    return angle
