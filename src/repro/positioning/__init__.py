"""Simulated BLE positioning stack (Section 4.1's data provenance).

The Louvre dataset was produced by the "My Visit to the Louvre" app:
"a large Bluetooth Low Energy (BLE) beacon infrastructure [~1800
beacons] ... in order to estimate the visitor's (lat,long) coordinate
position within the museum.  This is accomplished via BLE Received
Signal Strength Indicator (RSSI)-based trilateration, extended Kalman
and particle filtering techniques", after which "raw geometric
positions have already been spatially aggregated into 52
non-overlapping zones".

We do not have that infrastructure, so this package *simulates* it end
to end — the substitution documented in DESIGN.md.  Every stage of the
paper's pipeline exists as real code:

``beacons``        beacon placement + log-distance path-loss RSSI model
``trilateration``  RSSI → distance → least-squares position estimate
``kalman``         extended Kalman filter smoothing of the 2D track
``particle``       particle-filter alternative
``detection``      position stream → symbolic zone detection records
"""

from repro.positioning.beacons import (
    Beacon,
    BeaconGrid,
    RssiModel,
    RssiReading,
)
from repro.positioning.trilateration import (
    TrilaterationResult,
    trilaterate,
)
from repro.positioning.kalman import ExtendedKalmanFilter2D
from repro.positioning.particle import ParticleFilter2D
from repro.positioning.detection import (
    PositionFix,
    ZoneDetector,
)

__all__ = [
    "Beacon",
    "BeaconGrid",
    "RssiModel",
    "RssiReading",
    "TrilaterationResult",
    "trilaterate",
    "ExtendedKalmanFilter2D",
    "ParticleFilter2D",
    "PositionFix",
    "ZoneDetector",
]
