"""From position fixes to symbolic zone detections.

The last stage of the paper's data provenance: "raw geometric positions
have already been spatially aggregated into 52 non-overlapping zones"
(Section 4.1).  :class:`ZoneDetector` performs that aggregation — it
maps a stream of (t, floor, position) fixes onto a
:class:`~repro.indoor.cells.CellSpace` and emits
:class:`~repro.core.builder.DetectionRecord` items, one per maximal run
of fixes in the same zone.

Fixes landing in no zone (corridors outside any thematic zone, coverage
gaps, positioning error) interrupt runs, which is exactly how the real
dataset acquires its sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.builder import DetectionRecord
from repro.indoor.cells import CellSpace
from repro.spatial.geometry import Point


@dataclass(frozen=True)
class PositionFix:
    """One timestamped position estimate."""

    t: float
    position: Point
    floor: int
    #: estimate quality (e.g. trilateration residual); consumers may
    #: drop fixes above a threshold.
    error: float = 0.0


class ZoneDetector:
    """Aggregates position fixes into zone detection records.

    Args:
        space: the zone layer's cell space (polygonal zones).
        max_fix_gap: a silent period longer than this ends the current
            detection run (the visitor left coverage).
        max_error: fixes with a larger error estimate are discarded.
    """

    def __init__(self, space: CellSpace,
                 max_fix_gap: float = 120.0,
                 max_error: float = float("inf")) -> None:
        self.space = space
        self.max_fix_gap = max_fix_gap
        self.max_error = max_error

    def detect(self, mo_id: str, fixes: Iterable[PositionFix],
               visit_id: Optional[str] = None) -> List[DetectionRecord]:
        """Convert one moving object's fix stream to detection records.

        Fixes must be time-ordered.  Each maximal same-zone run yields
        one record spanning its first to last fix time; zero-length runs
        (a single isolated fix) yield the zero-duration records the
        paper's cleaning stage then filters out.
        """
        records: List[DetectionRecord] = []
        current_zone: Optional[str] = None
        run_start = 0.0
        run_end = 0.0
        last_t: Optional[float] = None

        def close_run() -> None:
            nonlocal current_zone
            if current_zone is not None:
                records.append(DetectionRecord(
                    mo_id=mo_id, state=current_zone,
                    t_start=run_start, t_end=run_end,
                    visit_id=visit_id))
                current_zone = None

        for fix in fixes:
            if last_t is not None and fix.t < last_t:
                raise ValueError("fixes must be time-ordered")
            if fix.error > self.max_error:
                continue
            gap = 0.0 if last_t is None else fix.t - last_t
            last_t = fix.t
            cell = self.space.locate_point(fix.position, floor=fix.floor)
            zone = cell.cell_id if cell is not None else None
            if current_zone is not None and (zone != current_zone
                                             or gap > self.max_fix_gap):
                close_run()
            if zone is not None:
                if current_zone is None:
                    current_zone = zone
                    run_start = fix.t
                run_end = fix.t
        close_run()
        return records
