"""Static layer hierarchies over a layered indoor graph (Section 3.2).

The paper's key departure from plain IndoorGML MLSM is a **static,
predefined layer hierarchy** instead of ad-hoc node subdivision:

    "we define a layer hierarchy as k ≥ 2 ordered layers Gi of G that
    are only consecutively connected by joint edges.  Similar to [17],
    we exclude 'overlap' relations from layer hierarchies, but contrary
    to it, we also exclude 'equal' relations to prohibit node repetition
    and instead favor a proper hierarchy.  Instead of [17]'s 'inside'
    and 'coveredBy', we assume 'contains', 'covers', and a corresponding
    top to bottom joint edge direction."

plus the required core hierarchy Building → Floor → Room, optionally
extended to Building Complex → Building → Floor → Room → RoI, with
"Ad-hoc refinements ... possible ... as long as joint edges represent
'contain' or 'cover' relations and do not skip layers."

:class:`LayerHierarchy` validates all of those rules and provides the
multi-granularity primitives the SITM analytics rely on: ``parent``,
``children``, ``ancestors``, ``descendants`` and ``lift`` (infer a
moving object's location "at all levels of granularity above the
detection data level").
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.indoor.multilayer import JointEdge, LayeredIndoorGraph
from repro.spatial.topology import HIERARCHY_RELATIONS, TopologicalRelation


#: Distinguishes "cached None" from "not cached" in the LCA memo.
_MISSING = object()


class LayerRole(enum.Enum):
    """Semantic roles of the paper's canonical layers."""

    BUILDING_COMPLEX = "building_complex"
    BUILDING = "building"
    FLOOR = "floor"
    ROOM = "room"
    ROI = "roi"
    SEMANTIC = "semantic"


#: The required core hierarchy roles, top to bottom ("virtually any
#: indoor environment is characterized by a basic three-layer
#: hierarchy").
CORE_LAYER_ROLES: Tuple[LayerRole, ...] = (
    LayerRole.BUILDING,
    LayerRole.FLOOR,
    LayerRole.ROOM,
)

#: The full canonical stack with the two optional layers.
CANONICAL_LAYER_ROLES: Tuple[LayerRole, ...] = (
    LayerRole.BUILDING_COMPLEX,
    LayerRole.BUILDING,
    LayerRole.FLOOR,
    LayerRole.ROOM,
    LayerRole.ROI,
)


class HierarchyValidationError(ValueError):
    """Raised when a layer stack violates the Section 3.2 rules."""


class LayerHierarchy:
    """An ordered stack of layers of a :class:`LayeredIndoorGraph`.

    Args:
        graph: the layered graph holding the layers and joint edges.
        ordered_layers: layer names from **top** (coarsest) to
            **bottom** (finest).
        roles: optional role tags parallel to ``ordered_layers``.
        validate: run :meth:`validate` eagerly (default).
    """

    def __init__(self, graph: LayeredIndoorGraph,
                 ordered_layers: Sequence[str],
                 roles: Optional[Sequence[LayerRole]] = None,
                 validate: bool = True) -> None:
        if len(ordered_layers) < 2:
            raise HierarchyValidationError(
                "a layer hierarchy needs k >= 2 ordered layers")
        if len(set(ordered_layers)) != len(ordered_layers):
            raise HierarchyValidationError("layers must be distinct")
        for name in ordered_layers:
            if name not in graph.layer_names:
                raise HierarchyValidationError(
                    "layer {!r} is not part of the graph".format(name))
        if roles is not None and len(roles) != len(ordered_layers):
            raise HierarchyValidationError(
                "roles must parallel ordered_layers")
        self.graph = graph
        self._layers: Tuple[str, ...] = tuple(ordered_layers)
        self._roles: Optional[Tuple[LayerRole, ...]] = (
            tuple(roles) if roles is not None else None)
        self._level: Dict[str, int] = {
            name: i for i, name in enumerate(self._layers)}
        self._parent: Dict[str, str] = {}
        self._children: Dict[str, List[str]] = {}
        # Bounded memos for the hot multi-granularity lookups; see
        # invalidate_caches()/reindex() for the mutation contract.
        self._cache_limit = 1 << 16
        self._lca_cache: Dict[Tuple[str, str], Optional[str]] = {}
        self._depth_cache: Dict[str, int] = {}
        self._index_edges()
        if validate:
            errors = self.validate()
            if errors:
                raise HierarchyValidationError("; ".join(errors))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _index_edges(self) -> None:
        """Build parent/child maps from the graph's joint edges."""
        for edge in self.graph.joint_edges:
            if edge.relation not in HIERARCHY_RELATIONS:
                continue
            src_level = self._level.get(edge.source_layer)
            dst_level = self._level.get(edge.target_layer)
            if src_level is None or dst_level is None:
                continue
            if dst_level != src_level + 1:
                continue
            # source is one level above target and contains/covers it.
            self._parent[edge.target] = edge.source
            self._children.setdefault(edge.source, []).append(edge.target)

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def layers(self) -> Tuple[str, ...]:
        """Layer names, top to bottom."""
        return self._layers

    @property
    def depth(self) -> int:
        """Number of layers (the paper's k)."""
        return len(self._layers)

    def level_of_layer(self, layer_name: str) -> int:
        """0-based level of a layer; 0 is the top (coarsest)."""
        return self._level[layer_name]

    def role_of_layer(self, layer_name: str) -> Optional[LayerRole]:
        """The role tag of a layer, when roles were provided."""
        if self._roles is None:
            return None
        return self._roles[self._level[layer_name]]

    def layer_for_role(self, role: LayerRole) -> Optional[str]:
        """The layer name carrying ``role``, when roles were provided."""
        if self._roles is None:
            return None
        for name, layer_role in zip(self._layers, self._roles):
            if layer_role is role:
                return name
        return None

    def has_core_roles(self) -> bool:
        """True when Building, Floor, Room appear in top-to-bottom order.

        This is the paper's "basic three-layer hierarchy" requirement.
        """
        if self._roles is None:
            return False
        positions = []
        for role in CORE_LAYER_ROLES:
            found = [i for i, r in enumerate(self._roles) if r is role]
            if not found:
                return False
            positions.append(found[0])
        return positions == sorted(positions)

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def parent(self, node: str) -> Optional[str]:
        """The node's parent in the next layer up, or ``None`` at the top."""
        return self._parent.get(node)

    def children(self, node: str) -> List[str]:
        """The node's children in the next layer down."""
        return list(self._children.get(node, ()))

    def ancestors(self, node: str) -> List[str]:
        """Parents up to the hierarchy top, nearest first."""
        chain: List[str] = []
        current = self._parent.get(node)
        while current is not None:
            chain.append(current)
            current = self._parent.get(current)
        return chain

    def descendants(self, node: str) -> List[str]:
        """All transitive children, breadth-first."""
        result: List[str] = []
        frontier = list(self._children.get(node, ()))
        while frontier:
            current = frontier.pop(0)
            result.append(current)
            frontier.extend(self._children.get(current, ()))
        return result

    def lift(self, node: str, target_layer: str) -> Optional[str]:
        """Infer the node's location at a coarser layer.

        "By only allowing 'proper part' types of relationships, we allow
        inference of a MO's location at all levels of granularity above
        the detection data level" (Section 3.2).

        Returns ``None`` when ``target_layer`` is below the node's layer
        or the parent chain is broken (partial hierarchies).

        Raises:
            KeyError: when ``target_layer`` is not in the hierarchy.
        """
        target_level = self._level[target_layer]
        current = node
        current_level = self._level[self.graph.layer_of(node)]
        if target_level > current_level:
            return None
        while current_level > target_level:
            parent = self._parent.get(current)
            if parent is None:
                return None
            current = parent
            current_level -= 1
        return current

    def lowest_common_ancestor(self, node_a: str,
                               node_b: str) -> Optional[str]:
        """The nearest node containing both arguments, if any.

        Used by hierarchy-aware trajectory similarity: two exhibits in
        the same room are semantically closer than two exhibits that
        only share a wing.  Results are memoized (the hierarchy is
        static after construction — call :meth:`reindex` after
        mutating the underlying graph).
        """
        key = (node_a, node_b)
        cached = self._lca_cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        chain_a = [node_a] + self.ancestors(node_a)
        chain_b = set([node_b] + self.ancestors(node_b))
        result: Optional[str] = None
        for candidate in chain_a:
            if candidate in chain_b:
                result = candidate
                break
        if len(self._lca_cache) >= self._cache_limit:
            self._lca_cache.clear()
        self._lca_cache[key] = result
        self._lca_cache[(node_b, node_a)] = result  # LCA is symmetric
        return result

    def depth_of_node(self, node: str) -> int:
        """The node's 0-based layer level (memoized)."""
        depth = self._depth_cache.get(node)
        if depth is None:
            depth = self._level[self.graph.layer_of(node)]
            if len(self._depth_cache) >= self._cache_limit:
                self._depth_cache.clear()
            self._depth_cache[node] = depth
        return depth

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop the memoized LCA/depth lookups.

        Needed only when the underlying graph changed; :meth:`reindex`
        calls this automatically.
        """
        self._lca_cache.clear()
        self._depth_cache.clear()

    def reindex(self) -> None:
        """Rebuild parent/child maps after graph mutation.

        The hierarchy indexes the graph's joint edges at construction;
        adding nodes or hierarchy edges afterwards (e.g. via
        :func:`add_hierarchy_edge`) requires a reindex for navigation
        — and the memoized lookups — to observe them.
        """
        self._parent.clear()
        self._children.clear()
        self._index_edges()
        self.invalidate_caches()

    # ------------------------------------------------------------------
    # validation (the Section 3.2 rules)
    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        """Check every hierarchy rule; return human-readable violations.

        Rules checked:

        1. joint edges between hierarchy layers must be consecutive
           (no layer skipping);
        2. downward joint edges within the hierarchy carry only
           ``contains``/``covers`` (no ``overlap``, no ``equal``);
        3. proper hierarchy: every node has at most one parent;
        4. direction: hierarchical joint edges point top → bottom.
        """
        problems: List[str] = []
        hierarchy_layers = set(self._layers)
        seen_parent: Dict[str, str] = {}
        for edge in self.graph.joint_edges:
            src_in = edge.source_layer in hierarchy_layers
            dst_in = edge.target_layer in hierarchy_layers
            if not (src_in and dst_in):
                continue
            src_level = self._level[edge.source_layer]
            dst_level = self._level[edge.target_layer]
            gap = abs(src_level - dst_level)
            if gap == 0:
                problems.append(
                    "joint edge {}→{} connects nodes of the same "
                    "hierarchy layer".format(edge.source, edge.target))
                continue
            if gap > 1:
                problems.append(
                    "joint edge {}→{} skips layers ({} → {})".format(
                        edge.source, edge.target, edge.source_layer,
                        edge.target_layer))
                continue
            downward = dst_level == src_level + 1
            relation = edge.relation if downward else \
                edge.relation.converse()
            if relation not in HIERARCHY_RELATIONS:
                problems.append(
                    "joint edge {}→{} carries {!r}; hierarchies admit "
                    "only contains/covers (and their converses "
                    "upward)".format(edge.source, edge.target,
                                     edge.relation.value))
                continue
            child = edge.target if downward else edge.source
            parent = edge.source if downward else edge.target
            previous = seen_parent.get(child)
            if previous is not None and previous != parent:
                problems.append(
                    "node {!r} has two parents ({!r}, {!r}); a proper "
                    "hierarchy forbids this".format(child, previous,
                                                    parent))
            seen_parent[child] = parent
        return problems

    def orphans(self, layer_name: str) -> List[str]:
        """Nodes of a non-top layer lacking a parent.

        Orphans are legal (the hierarchy may be partial) but relevant to
        coverage analysis: an orphan RoI cannot be lifted.
        """
        if self._level[layer_name] == 0:
            return []
        layer_graph = self.graph.layer(layer_name)
        return [n for n in layer_graph.nodes if n not in self._parent]


def add_hierarchy_edge(graph: LayeredIndoorGraph, parent: str, child: str,
                       relation: TopologicalRelation
                       = TopologicalRelation.CONTAINS,
                       ) -> JointEdge:
    """Declare that ``parent`` contains/covers ``child``.

    Convenience wrapper used when hierarchies are authored symbolically
    (no geometry): it adds the downward joint edge and its converse.

    Raises:
        ValueError: when ``relation`` is not ``contains``/``covers``.
    """
    if relation not in HIERARCHY_RELATIONS:
        raise ValueError(
            "hierarchy edges carry contains/covers, not {!r}".format(
                relation.value))
    edge = JointEdge(graph.layer_of(parent), parent,
                     graph.layer_of(child), child, relation)
    graph.add_joint_edge(edge)
    return edge
