"""Formal ontology integration (Section 5 future work).

    "it would be interesting to integrate the indoor space
    representation with formal ontologies of cultural heritage
    information (e.g. CIDOC Conceptual Reference Model [12])"

This module provides a small but real concept-hierarchy engine and a
CIDOC-CRM-flavoured core ontology, plus the mapping layer that ties
indoor cells (and therefore trajectory states) to ontology concepts.
With it, a trajectory over exhibit RoIs can be queried at the *concept*
level ("visits to E22 Human-Made Objects of concept ItalianPainting")
— semantic enrichment from an external knowledge source, exactly the
"synergistic interplay between different types of semantics" the paper
motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.annotations import (
    AnnotationKind,
    AnnotationSet,
    SemanticAnnotation,
)
from repro.core.trajectory import SemanticTrajectory


@dataclass(frozen=True)
class Concept:
    """One ontology concept.

    Attributes:
        iri: stable identifier (CRM-style, e.g. ``crm:E53_Place``).
        label: human-readable name.
        parents: direct superclass IRIs.
    """

    iri: str
    label: str = ""
    parents: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.iri:
            raise ValueError("a concept needs an IRI")


class OntologyError(ValueError):
    """Raised on malformed ontologies (cycles, unknown parents)."""


class Ontology:
    """A concept hierarchy with subsumption reasoning.

    Multiple inheritance is allowed; cycles are rejected.
    """

    def __init__(self) -> None:
        self._concepts: Dict[str, Concept] = {}

    def add(self, concept: Concept) -> Concept:
        """Register a concept.

        Raises:
            OntologyError: on duplicate IRIs, unknown parents, or when
                the addition would create a cycle.
        """
        if concept.iri in self._concepts:
            raise OntologyError(
                "concept {!r} already defined".format(concept.iri))
        for parent in concept.parents:
            if parent not in self._concepts:
                raise OntologyError(
                    "unknown parent {!r} of {!r} (define parents "
                    "first)".format(parent, concept.iri))
        self._concepts[concept.iri] = concept
        return concept

    def define(self, iri: str, label: str = "",
               parents: Iterable[str] = ()) -> Concept:
        """Convenience constructor-and-add."""
        return self.add(Concept(iri, label, tuple(parents)))

    def __contains__(self, iri: str) -> bool:
        return iri in self._concepts

    def __len__(self) -> int:
        return len(self._concepts)

    def concept(self, iri: str) -> Concept:
        """Fetch a concept (raises ``KeyError`` when absent)."""
        return self._concepts[iri]

    def ancestors(self, iri: str) -> Set[str]:
        """All transitive superclasses (excluding the concept itself)."""
        result: Set[str] = set()
        frontier = list(self._concepts[iri].parents)
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._concepts[current].parents)
        return result

    def descendants(self, iri: str) -> Set[str]:
        """All transitive subclasses."""
        result: Set[str] = set()
        for candidate in self._concepts:
            if iri in self.ancestors(candidate):
                result.add(candidate)
        return result

    def is_a(self, iri: str, ancestor: str) -> bool:
        """Subsumption: True when ``iri`` is ``ancestor`` or below it."""
        if iri == ancestor:
            return True
        return ancestor in self.ancestors(iri)

    def least_common_subsumer(self, a: str, b: str) -> Optional[str]:
        """The most specific concept subsuming both, if any.

        Ties are broken by the deepest concept (longest ancestor
        chain), then lexicographically for determinism.
        """
        common = ({a} | self.ancestors(a)) & ({b} | self.ancestors(b))
        if not common:
            return None
        return max(common,
                   key=lambda c: (len(self.ancestors(c)), c))


def cidoc_core() -> Ontology:
    """A compact CIDOC-CRM-flavoured core ontology.

    Only the classes the museum use-case touches, with CRM-style IRIs:
    places, physical things, human-made objects, actors and activities.
    """
    onto = Ontology()
    onto.define("crm:E1_Entity", "CRM Entity")
    onto.define("crm:E53_Place", "Place", ["crm:E1_Entity"])
    onto.define("crm:E18_Physical_Thing", "Physical Thing",
                ["crm:E1_Entity"])
    onto.define("crm:E22_Human-Made_Object", "Human-Made Object",
                ["crm:E18_Physical_Thing"])
    onto.define("crm:E39_Actor", "Actor", ["crm:E1_Entity"])
    onto.define("crm:E21_Person", "Person", ["crm:E39_Actor"])
    onto.define("crm:E7_Activity", "Activity", ["crm:E1_Entity"])
    # Museum-domain refinements.
    onto.define("museum:Building", "Museum Building", ["crm:E53_Place"])
    onto.define("museum:Floor", "Floor Level", ["crm:E53_Place"])
    onto.define("museum:Room", "Exhibition Room", ["crm:E53_Place"])
    onto.define("museum:ThematicZone", "Thematic Zone",
                ["crm:E53_Place"])
    onto.define("museum:Exhibit", "Exhibit",
                ["crm:E22_Human-Made_Object"])
    onto.define("museum:Painting", "Painting", ["museum:Exhibit"])
    onto.define("museum:Sculpture", "Sculpture", ["museum:Exhibit"])
    onto.define("museum:Visit", "Museum Visit", ["crm:E7_Activity"])
    return onto


#: Default mapping from SITM semantic classes to core concepts.
DEFAULT_CLASS_CONCEPTS: Mapping[str, str] = {
    "BuildingComplex": "crm:E53_Place",
    "Building": "museum:Building",
    "Floor": "museum:Floor",
    "Room": "museum:Room",
    "ThematicZone": "museum:ThematicZone",
    "ExhibitRoI": "museum:Exhibit",
}


class CellConceptMapping:
    """Ties indoor cells to ontology concepts.

    Cells map by explicit assignment first, then by their SITM
    ``semantic_class`` through :data:`DEFAULT_CLASS_CONCEPTS`.
    """

    def __init__(self, ontology: Ontology,
                 class_concepts: Optional[Mapping[str, str]] = None
                 ) -> None:
        self.ontology = ontology
        self._class_concepts = dict(class_concepts
                                    or DEFAULT_CLASS_CONCEPTS)
        self._explicit: Dict[str, str] = {}
        for iri in self._class_concepts.values():
            if iri not in ontology:
                raise OntologyError(
                    "mapped concept {!r} not in the ontology".format(iri))

    def assign(self, cell_id: str, concept_iri: str) -> None:
        """Explicitly map one cell to a concept.

        Raises:
            OntologyError: for unknown concepts.
        """
        if concept_iri not in self.ontology:
            raise OntologyError(
                "unknown concept {!r}".format(concept_iri))
        self._explicit[cell_id] = concept_iri

    def concept_of(self, cell_id: str,
                   semantic_class: Optional[str] = None) -> Optional[str]:
        """The concept of a cell, explicit mapping first."""
        if cell_id in self._explicit:
            return self._explicit[cell_id]
        if semantic_class is not None:
            return self._class_concepts.get(semantic_class)
        return None

    def states_of_concept(self, concept_iri: str) -> List[str]:
        """Explicitly-mapped cells whose concept is subsumed by the IRI."""
        return sorted(
            cell_id for cell_id, iri in self._explicit.items()
            if self.ontology.is_a(iri, concept_iri))

    def annotate_trajectory(self, trajectory: SemanticTrajectory
                            ) -> SemanticTrajectory:
        """Attach concept annotations to every explicitly-mapped stay.

        Each stay whose state has a concept gains a ``PLACE`` annotation
        whose value is the concept IRI and whose link is the state —
        the "link to an object" annotation form of [21].
        """
        from repro.core.trajectory import Trace, TraceEntry

        entries: List[TraceEntry] = []
        for entry in trajectory.trace:
            concept_iri = self.concept_of(entry.state)
            if concept_iri is None:
                entries.append(entry)
                continue
            enriched = entry.annotations.with_annotation(
                SemanticAnnotation(AnnotationKind.PLACE, concept_iri,
                                   link=entry.state, source="ontology"))
            entries.append(TraceEntry(
                entry.transition, entry.state, entry.t_start,
                entry.t_end, enriched, entry.transition_annotations))
        return trajectory.with_trace(Trace(entries))

    def concept_footprint(self, trajectory: SemanticTrajectory
                          ) -> Dict[str, float]:
        """Total stay time per concept IRI across a trajectory."""
        footprint: Dict[str, float] = {}
        for entry in trajectory.trace:
            concept_iri = self.concept_of(entry.state)
            if concept_iri is None:
                continue
            footprint[concept_iri] = footprint.get(concept_iri, 0.0) \
                + entry.duration
        return footprint
