"""The Multi-Layered Space Model: layers of NRGs plus joint edges.

Section 3.2 of the paper:

    "we represent a 2D multiple floor (i.e 2.5D) indoor space as a
    layered multigraph G = (V, E) where V = ⋃ Vi and
    E = ⋃ Ei_acc ∪ E_top"

Each layer is a directed accessibility NRG over its own cell
decomposition; a **joint edge** e' ∈ E_top ⊆ Vi × Vj (i ≠ j) carries a
binary topological relation between cells of *different* layers.  Joint
edges are directed because "'contains' and 'covers' can not" be thought
of as symmetric.  Since intra-layer and inter-layer edges are always of
different types, G is an edge-coloured multigraph mappable to a
multilayer network (Kivelä et al., reference [18] of the paper) — see
:meth:`LayeredIndoorGraph.to_networkx`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.indoor.cells import Cell, CellSpace
from repro.indoor.nrg import EdgeKind, NodeRelationGraph
from repro.spatial.topology import (
    JOINT_EDGE_RELATIONS,
    TopologicalRelation,
    relate,
)


@dataclass(frozen=True)
class JointEdge:
    """A directed inter-layer edge carrying a topological relation.

    ``relation`` reads source-to-target: a joint edge
    ``(floor_1, room_A, contains)`` states that the *floor* cell
    contains the *room* cell.

    "joint edges represent potential locations where a physical object
    might actually reside ... joint edges express all the valid active
    state combinations (called 'overall' states)" (Section 2.1).
    """

    source_layer: str
    source: str
    target_layer: str
    target: str
    relation: TopologicalRelation
    attributes: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source_layer == self.target_layer:
            raise ValueError(
                "joint edges must connect different layers, got {!r} "
                "twice".format(self.source_layer))
        if self.relation not in JOINT_EDGE_RELATIONS:
            raise ValueError(
                "joint edges carry one of {}, not {!r} (disjoint/meet "
                "cells admit no overall state)".format(
                    sorted(r.value for r in JOINT_EDGE_RELATIONS),
                    self.relation.value))

    def converse(self) -> "JointEdge":
        """The same fact read in the opposite direction."""
        return JointEdge(self.target_layer, self.target,
                         self.source_layer, self.source,
                         self.relation.converse(), self.attributes)


class LayerConsistencyError(ValueError):
    """Raised when a layered graph violates an MLSM invariant."""


class LayeredIndoorGraph:
    """The SITM indoor space representation: G = (V, E).

    Invariants enforced (Section 3.2):

    * each node belongs to exactly one layer (``⋂ Vi = ∅``) — a node
      relevant to several layers must be replicated and linked with
      ``equal`` joint edges;
    * intra-layer edges live in per-layer accessibility NRGs;
    * joint edges connect different layers and carry one of the six
      non-empty-intersection relations.
    """

    def __init__(self, name: str = "indoor-space") -> None:
        self.name = name
        self._layers: Dict[str, NodeRelationGraph] = {}
        self._spaces: Dict[str, CellSpace] = {}
        self._node_layer: Dict[str, str] = {}
        self._joint_edges: List[JointEdge] = []
        self._joint_out: Dict[str, List[int]] = {}
        self._joint_in: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # layers
    # ------------------------------------------------------------------
    def add_layer(self, graph: NodeRelationGraph,
                  space: Optional[CellSpace] = None) -> None:
        """Register a layer given its (accessibility) NRG.

        Args:
            graph: the layer's NRG; its name becomes the layer name.
            space: optional primal cell space backing the NRG, needed
                for geometry-based joint-edge derivation.

        Raises:
            LayerConsistencyError: on duplicate layer names or node ids
                already claimed by another layer.
        """
        layer_name = graph.name
        if layer_name in self._layers:
            raise LayerConsistencyError(
                "layer {!r} already registered".format(layer_name))
        for node in graph.nodes:
            owner = self._node_layer.get(node)
            if owner is not None:
                raise LayerConsistencyError(
                    "node {!r} already belongs to layer {!r}; MLSM "
                    "requires disjoint node sets (replicate the node and "
                    "link the copies with 'equal' joint edges)".format(
                        node, owner))
        self._layers[layer_name] = graph
        if space is not None:
            self._spaces[layer_name] = space
        for node in graph.nodes:
            self._node_layer[node] = layer_name

    @property
    def layer_names(self) -> Tuple[str, ...]:
        """Layer names in registration order."""
        return tuple(self._layers)

    def layer(self, name: str) -> NodeRelationGraph:
        """Fetch a layer's NRG by name."""
        return self._layers[name]

    def space(self, name: str) -> CellSpace:
        """Fetch a layer's primal cell space by name."""
        return self._spaces[name]

    def has_space(self, name: str) -> bool:
        """True when the layer has a registered cell space."""
        return name in self._spaces

    def layer_of(self, node: str) -> str:
        """The layer a node belongs to.

        Raises:
            KeyError: for unknown nodes.
        """
        return self._node_layer[node]

    def cell(self, node: str) -> Cell:
        """The primal cell behind a node, when its layer has a space."""
        layer_name = self.layer_of(node)
        return self._spaces[layer_name].cell(node)

    @property
    def node_count(self) -> int:
        """Total nodes across all layers."""
        return len(self._node_layer)

    @property
    def intra_edge_count(self) -> int:
        """Total intra-layer (accessibility) edges across all layers."""
        return sum(g.transition_count() for g in self._layers.values())

    # ------------------------------------------------------------------
    # joint edges
    # ------------------------------------------------------------------
    def add_joint_edge(self, edge: JointEdge,
                       add_converse: bool = True) -> JointEdge:
        """Register a joint edge (and, by default, its converse).

        Raises:
            LayerConsistencyError: when an endpoint is unknown or lies
                in a different layer than stated.
        """
        self._check_endpoint(edge.source_layer, edge.source)
        self._check_endpoint(edge.target_layer, edge.target)
        self._store_joint(edge)
        if add_converse:
            self._store_joint(edge.converse())
        return edge

    def _check_endpoint(self, layer_name: str, node: str) -> None:
        if layer_name not in self._layers:
            raise LayerConsistencyError(
                "unknown layer {!r}".format(layer_name))
        actual = self._node_layer.get(node)
        if actual != layer_name:
            raise LayerConsistencyError(
                "node {!r} is in layer {!r}, not {!r}".format(
                    node, actual, layer_name))

    def _store_joint(self, edge: JointEdge) -> None:
        index = len(self._joint_edges)
        self._joint_edges.append(edge)
        self._joint_out.setdefault(edge.source, []).append(index)
        self._joint_in.setdefault(edge.target, []).append(index)

    @property
    def joint_edges(self) -> Tuple[JointEdge, ...]:
        """All joint edges (converses included), in insertion order."""
        return tuple(self._joint_edges)

    @property
    def joint_edge_count(self) -> int:
        """Number of stored joint edges (converses included)."""
        return len(self._joint_edges)

    def joint_edges_from(self, node: str) -> List[JointEdge]:
        """Joint edges whose source is ``node``."""
        return [self._joint_edges[i] for i in self._joint_out.get(node, [])]

    def joint_edges_into(self, node: str) -> List[JointEdge]:
        """Joint edges whose target is ``node``."""
        return [self._joint_edges[i] for i in self._joint_in.get(node, [])]

    def joint_partners(self, node: str,
                       layer: Optional[str] = None,
                       relations: Optional[Iterable[TopologicalRelation]]
                       = None) -> List[str]:
        """Nodes of other layers joint-linked to ``node``.

        Args:
            node: the query node.
            layer: restrict partners to this layer.
            relations: restrict to these relations (read node→partner).

        These are the "valid active state combinations": if a visitor is
        active at ``node``, it may simultaneously be active only at one
        of the returned partners in the partner layer (Figure 1's
        hall-5 / 5a-5b-5c example).
        """
        wanted = None if relations is None else set(relations)
        partners: List[str] = []
        for edge in self.joint_edges_from(node):
            if layer is not None and edge.target_layer != layer:
                continue
            if wanted is not None and edge.relation not in wanted:
                continue
            partners.append(edge.target)
        return partners

    def derive_joint_edges_from_geometry(
            self, layer_a: str, layer_b: str) -> List[JointEdge]:
        """Derive joint edges by pairwise cell intersection.

        "joint edges ... are derived by pairwise cell intersection"
        (Section 2.1).  Cells of the two layers are related geometrically
        and every non-``disjoint``/``meet`` pair yields a joint edge
        (plus its converse).

        Floors partition the 2.5D space: cells on different known floors
        are never related.

        Returns the newly created source→target edges.
        """
        if layer_a not in self._spaces or layer_b not in self._spaces:
            raise LayerConsistencyError(
                "both layers need cell spaces with geometry")
        created: List[JointEdge] = []
        for cell_a in self._spaces[layer_a]:
            if cell_a.geometry is None:
                continue
            for cell_b in self._spaces[layer_b]:
                if cell_b.geometry is None:
                    continue
                if (cell_a.floor is not None and cell_b.floor is not None
                        and cell_a.floor != cell_b.floor):
                    continue
                relation = relate(cell_a.geometry, cell_b.geometry)
                if not relation.implies_interior_intersection:
                    continue
                edge = JointEdge(layer_a, cell_a.cell_id,
                                 layer_b, cell_b.cell_id, relation)
                self.add_joint_edge(edge)
                created.append(edge)
        return created

    # ------------------------------------------------------------------
    # overall states
    # ------------------------------------------------------------------
    def is_valid_overall_state(self, states: Mapping[str, str]) -> bool:
        """Check a combination of per-layer active states.

        ``states`` maps layer name → active node.  The combination is a
        valid *overall* state when every pair of stated nodes from
        different layers is linked by a joint edge (their cells
        intersect, so one physical position can witness both).
        """
        items = list(states.items())
        for layer_name, node in items:
            if self._node_layer.get(node) != layer_name:
                return False
        for i, (_, node_a) in enumerate(items):
            for _, node_b in items[i + 1:]:
                if node_b not in {e.target
                                  for e in self.joint_edges_from(node_a)}:
                    return False
        return True

    def overall_states(self, node: str,
                       layers: Sequence[str]) -> List[Dict[str, str]]:
        """Enumerate valid overall states extending ``node``.

        Given an active node, list every joint-consistent assignment of
        one node per requested layer.  For Figure 1: a visitor in hall
        ``5`` of layer i+1 "can only be in either 5a, 5b, or 5c in
        layer i".
        """
        own_layer = self.layer_of(node)
        combos: List[Dict[str, str]] = [{own_layer: node}]
        for layer_name in layers:
            if layer_name == own_layer:
                continue
            extended: List[Dict[str, str]] = []
            for combo in combos:
                candidates: Optional[Set[str]] = None
                for active in combo.values():
                    partners = set(self.joint_partners(active, layer_name))
                    candidates = (partners if candidates is None
                                  else candidates & partners)
                for candidate in sorted(candidates or ()):
                    new_combo = dict(combo)
                    new_combo[layer_name] = candidate
                    extended.append(new_combo)
            combos = extended
        return combos

    # ------------------------------------------------------------------
    # validation & export
    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        """Run structural sanity checks; return human-readable problems.

        An empty list means the graph satisfies the MLSM invariants:
        disjoint node sets (guaranteed by construction), accessibility
        kind for every layer NRG, joint edges well-typed (guaranteed by
        construction), and joint-edge converse closure.
        """
        problems: List[str] = []
        for name, graph in self._layers.items():
            if graph.kind is not EdgeKind.ACCESSIBILITY:
                problems.append(
                    "layer {!r} holds {} edges; the SITM layers are "
                    "accessibility NRGs".format(name, graph.kind.value))
        stored = {(e.source, e.target, e.relation)
                  for e in self._joint_edges}
        for edge in self._joint_edges:
            conv = edge.converse()
            if (conv.source, conv.target, conv.relation) not in stored:
                problems.append(
                    "joint edge {}→{} ({}) lacks its converse".format(
                        edge.source, edge.target, edge.relation.value))
        return problems

    def to_networkx(self):  # pragma: no cover - thin interop shim
        """Export G as an edge-coloured ``networkx.MultiDiGraph``.

        Intra-layer edges get ``color="intra"`` plus their layer name;
        joint edges get ``color="joint"`` plus their relation — the
        multilayer-network mapping of Section 3.2.
        """
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name)
        for layer_name, layer_graph in self._layers.items():
            for node in layer_graph.nodes:
                graph.add_node(node, layer=layer_name)
            for edge in layer_graph.edges:
                graph.add_edge(edge.source, edge.target, key=edge.edge_id,
                               color="intra", layer=layer_name,
                               weight=edge.weight)
        for i, joint in enumerate(self._joint_edges):
            graph.add_edge(joint.source, joint.target,
                           key="joint#{}".format(i), color="joint",
                           relation=joint.relation.value)
        return graph
