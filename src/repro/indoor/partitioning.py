"""Cell subdivision toolkit (the Section 2.1 partitioning discussion).

The paper reviews why and how cells get subdivided: "[17] only provides
some general partitioning criteria (e.g. splitting cells that have
multiple properties or that are too big), while [11] categorizes such
criteria (geometry-driven, topology-driven, semantics-driven,
navigation-driven)".  The SITM's answer is the *static* hierarchy — but
to compare against ad-hoc subdivision (ablation A2, Figure 1) the
subdivision mechanism itself must exist.  This module provides it:

* selection criteria picking which cells to split (too big, too many
  semantic properties, too high degree);
* :func:`subdivide` — split selected cells into strips, producing a
  *new finer layer* correctly wired into a
  :class:`~repro.indoor.multilayer.LayeredIndoorGraph`: split cells
  link to their parts with ``contains``/``covers``, unsplit cells are
  replicated and linked with ``equal`` — exactly Figure 1's layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.indoor.cells import Cell, CellSpace
from repro.indoor.multilayer import JointEdge, LayeredIndoorGraph
from repro.indoor.nrg import EdgeKind, NodeRelationGraph, NRGEdge
from repro.spatial.geometry import BBox, Polygon
from repro.spatial.topology import TopologicalRelation, relate

#: A criterion decides whether a cell should be subdivided.
SplitCriterion = Callable[[Cell, NodeRelationGraph], bool]


def too_big(max_area: float) -> SplitCriterion:
    """Geometry-driven criterion: footprint area above a threshold."""

    def criterion(cell: Cell, nrg: NodeRelationGraph) -> bool:
        return cell.geometry is not None \
            and cell.geometry.area() > max_area

    return criterion


def too_many_properties(max_attributes: int) -> SplitCriterion:
    """Semantics-driven criterion: cells with many distinct semantic
    attributes likely conflate several functional sub-spaces."""

    def criterion(cell: Cell, nrg: NodeRelationGraph) -> bool:
        return len(cell.attributes) > max_attributes

    return criterion


def too_connected(max_degree: int) -> SplitCriterion:
    """Topology-driven criterion: a hub cell with many transitions is
    a circulation space worth refining."""

    def criterion(cell: Cell, nrg: NodeRelationGraph) -> bool:
        return cell.cell_id in nrg and nrg.degree(cell.cell_id) \
            > max_degree

    return criterion


def any_of(*criteria: SplitCriterion) -> SplitCriterion:
    """Disjunction of criteria."""

    def criterion(cell: Cell, nrg: NodeRelationGraph) -> bool:
        return any(c(cell, nrg) for c in criteria)

    return criterion


@dataclass
class SubdivisionResult:
    """Outcome of one subdivision run.

    Attributes:
        fine_layer: the created layer's name.
        split_cells: parent cell → its part ids.
        replicated_cells: unsplit cell → its replica id.
    """

    fine_layer: str
    split_cells: Dict[str, List[str]]
    replicated_cells: Dict[str, str]


def subdivide(graph: LayeredIndoorGraph, layer_name: str,
              criterion: SplitCriterion,
              parts: int = 3,
              fine_layer_name: Optional[str] = None
              ) -> SubdivisionResult:
    """Create a finer layer by subdividing selected cells.

    Selected cells split into ``parts`` strips along their long axis
    (suffixes ``a``, ``b``, ``c``…, following Figure 1's 5a/5b/5c);
    the rest are replicated (suffix ``.r``) and joined to their
    originals with ``equal`` edges, as the MLSM requires when "a node
    is relevant to multiple layers".

    Intra-layer accessibility in the new layer: consecutive parts of a
    split cell connect to each other; every original edge is re-created
    between the corresponding parts/replicas (boundary ids preserved),
    attaching at the first part of a split cell.

    Raises:
        KeyError: for unknown layers.
        ValueError: when the layer lacks a cell space, or a selected
            cell has no geometry.
    """
    nrg = graph.layer(layer_name)
    if not graph.has_space(layer_name):
        raise ValueError("layer {!r} has no cell space".format(layer_name))
    space = graph.space(layer_name)
    fine_name = fine_layer_name or layer_name + ":fine"

    fine_space = CellSpace(fine_name, validate_geometry=False)
    fine_nrg = NodeRelationGraph(fine_name, EdgeKind.ACCESSIBILITY)
    split_cells: Dict[str, List[str]] = {}
    replicated: Dict[str, str] = {}
    entry_part: Dict[str, str] = {}

    for cell in space:
        if criterion(cell, nrg):
            if cell.geometry is None:
                raise ValueError(
                    "cannot geometrically split symbolic cell "
                    "{!r}".format(cell.cell_id))
            part_ids = _split_cell(cell, parts, fine_space, fine_nrg)
            split_cells[cell.cell_id] = part_ids
            entry_part[cell.cell_id] = part_ids[0]
        else:
            replica_id = cell.cell_id + ".r"
            fine_space.add_cell(Cell(
                replica_id, cell.name, cell.semantic_class,
                cell.geometry, cell.floor, cell.attributes))
            fine_nrg.add_node(replica_id)
            replicated[cell.cell_id] = replica_id
            entry_part[cell.cell_id] = replica_id

    for edge in nrg.edges:
        fine_nrg.add_edge(NRGEdge(
            edge.edge_id + ":fine",
            entry_part[edge.source], entry_part[edge.target],
            EdgeKind.ACCESSIBILITY, edge.boundary_id, edge.weight,
            edge.attributes))

    graph.add_layer(fine_nrg, fine_space)
    for parent, part_ids in split_cells.items():
        parent_geometry = space.cell(parent).geometry
        for part_id in part_ids:
            relation = relate(parent_geometry,
                              fine_space.cell(part_id).geometry)
            graph.add_joint_edge(JointEdge(
                layer_name, parent, fine_name, part_id, relation))
    for original, replica_id in replicated.items():
        graph.add_joint_edge(JointEdge(
            layer_name, original, fine_name, replica_id,
            TopologicalRelation.EQUAL))
    return SubdivisionResult(fine_name, split_cells, replicated)


def _split_cell(cell: Cell, parts: int, fine_space: CellSpace,
                fine_nrg: NodeRelationGraph) -> List[str]:
    box = cell.geometry.bbox()
    horizontal = box.width >= box.height
    part_ids: List[str] = []
    for index in range(parts):
        suffix = chr(ord("a") + index) if index < 26 else str(index)
        part_id = "{}{}".format(cell.cell_id, suffix)
        if horizontal:
            step = box.width / parts
            part_box = BBox(box.min_x + index * step, box.min_y,
                            box.min_x + (index + 1) * step, box.max_y)
        else:
            step = box.height / parts
            part_box = BBox(box.min_x, box.min_y + index * step,
                            box.max_x, box.min_y + (index + 1) * step)
        fine_space.add_cell(Cell(
            part_id, "{} ({})".format(cell.name, suffix),
            cell.semantic_class, part_box.to_polygon(), cell.floor,
            cell.attributes))
        fine_nrg.add_node(part_id)
        part_ids.append(part_id)
    for first, second in zip(part_ids, part_ids[1:]):
        fine_nrg.connect(first, second, bidirectional=True,
                         edge_id="split:{}-{}".format(first, second))
    return part_ids
