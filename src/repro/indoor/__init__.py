"""IndoorGML-compatible indoor space modelling (Sections 2.1 and 3.2).

The paper represents a 2D multi-floor ("2.5D") indoor space as a layered
multigraph ``G = (V, E)`` whose layers are directed accessibility
Node-Relation Graphs (NRGs) and whose inter-layer "joint" edges carry
binary topological relations.  This package implements that model:

``repro.indoor.cells``
    the primal space: cells (rooms, zones, RoIs...) and cell boundaries
    (walls, doors, stairs...), grouped into per-layer cell spaces.
``repro.indoor.dual``
    the Poincaré duality mapping of Table 1: cells → nodes, boundaries →
    edges, producing adjacency / connectivity / accessibility NRGs.
``repro.indoor.nrg``
    the Node-Relation Graph itself — a directed multigraph.
``repro.indoor.multilayer``
    the Multi-Layered Space Model: layers + directed joint edges.
``repro.indoor.hierarchy``
    the paper's static core layer hierarchy (Building Complex → Building
    → Floor → Room → RoI) with its Section 3.2 validation rules, and
    location lifting across granularities.
``repro.indoor.coverage``
    the full-coverage hypothesis analysis of Section 4.2 / Figure 4.
``repro.indoor.indoorgml_io``
    JSON import/export of layered indoor graphs.
"""

from repro.indoor.cells import (
    BoundaryKind,
    Cell,
    CellBoundary,
    CellSpace,
)
from repro.indoor.nrg import (
    EdgeKind,
    NodeRelationGraph,
    NRGEdge,
)
from repro.indoor.dual import (
    derive_accessibility_nrg,
    derive_adjacency_nrg,
    derive_connectivity_nrg,
)
from repro.indoor.multilayer import (
    JointEdge,
    LayeredIndoorGraph,
)
from repro.indoor.hierarchy import (
    CORE_LAYER_ROLES,
    LayerHierarchy,
    LayerRole,
)
from repro.indoor.coverage import (
    CoverageReport,
    coverage_ratio,
    layer_coverage_report,
)
from repro.indoor.ontology import (
    CellConceptMapping,
    Concept,
    Ontology,
    cidoc_core,
)
from repro.indoor.navigation import (
    Route,
    RoutePlanner,
    UnreachableError,
    plan_hierarchical,
    route_instructions,
)
from repro.indoor.partitioning import (
    SubdivisionResult,
    subdivide,
    too_big,
    too_connected,
    too_many_properties,
)

__all__ = [
    "BoundaryKind",
    "Cell",
    "CellBoundary",
    "CellSpace",
    "EdgeKind",
    "NodeRelationGraph",
    "NRGEdge",
    "derive_accessibility_nrg",
    "derive_adjacency_nrg",
    "derive_connectivity_nrg",
    "JointEdge",
    "LayeredIndoorGraph",
    "CORE_LAYER_ROLES",
    "LayerHierarchy",
    "LayerRole",
    "CoverageReport",
    "coverage_ratio",
    "layer_coverage_report",
    "CellConceptMapping",
    "Concept",
    "Ontology",
    "cidoc_core",
    "Route",
    "RoutePlanner",
    "UnreachableError",
    "plan_hierarchical",
    "route_instructions",
    "SubdivisionResult",
    "subdivide",
    "too_big",
    "too_connected",
    "too_many_properties",
]
