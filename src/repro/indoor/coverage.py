"""Full-coverage hypothesis analysis (Section 4.2 / Figure 4).

    "an interesting space modeling decision concerns whether or not to
    assume that the spatial region represented by a node in layer i+1
    is fully covered by the union of the spatial regions represented by
    its child nodes in layer i. ... the IndoorGML standard and related
    works seem to adhere to a full-coverage hypothesis. ... However, it
    is often an unrealistic assumption.  In Figure 4 for instance, the
    RoIs of the displayed exhibits do not completely cover their room's
    surface."

This module quantifies that: for every parent node, the fraction of its
footprint covered by its children's footprints.  Under the SITM the
Room layer fully covers its Floor, but the RoI layer does **not** fully
cover its rooms — which experiment F4 reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.indoor.hierarchy import LayerHierarchy
from repro.spatial.geometry import Polygon, intersection_area


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of one parent node by its children.

    Attributes:
        parent: parent node id.
        layer: the parent's layer name.
        child_count: number of children with geometry.
        parent_area: the parent footprint area.
        covered_area: total child footprint area clipped to the parent.
        ratio: ``covered_area / parent_area`` (0 when the parent has no
            area).
    """

    parent: str
    layer: str
    child_count: int
    parent_area: float
    covered_area: float
    ratio: float

    @property
    def fully_covered(self) -> bool:
        """True when the children cover (at least) 99.9% of the parent.

        The small tolerance absorbs clipping epsilon, not modelling
        slack.
        """
        return self.ratio >= 0.999


def coverage_ratio(parent_geometry: Polygon,
                   child_geometries: List[Polygon]) -> float:
    """Fraction of ``parent_geometry`` covered by the children.

    Children are assumed pairwise interior-disjoint (the IndoorGML cell
    invariant within a layer), so their clipped areas add up without
    double counting.  The parent must be convex (rooms and zones in the
    synthetic floorplan are rectangles); this is asserted by
    ``intersection_area``.
    """
    parent_area = parent_geometry.area()
    if parent_area <= 0:
        return 0.0
    covered = sum(intersection_area(child, parent_geometry)
                  for child in child_geometries)
    return min(1.0, covered / parent_area)


def node_coverage(hierarchy: LayerHierarchy,
                  parent: str) -> Optional[CoverageReport]:
    """Coverage report for one parent node, or ``None`` without geometry."""
    graph = hierarchy.graph
    layer_name = graph.layer_of(parent)
    if not graph.has_space(layer_name):
        return None
    parent_cell = graph.space(layer_name).cell(parent)
    if parent_cell.geometry is None:
        return None
    child_polygons: List[Polygon] = []
    child_count = 0
    for child in hierarchy.children(parent):
        child_layer = graph.layer_of(child)
        if not graph.has_space(child_layer):
            continue
        child_cell = graph.space(child_layer).cell(child)
        if child_cell.geometry is None:
            continue
        child_count += 1
        child_polygons.append(child_cell.geometry)
    ratio = coverage_ratio(parent_cell.geometry, child_polygons)
    covered = ratio * parent_cell.geometry.area()
    return CoverageReport(parent, layer_name, child_count,
                          parent_cell.geometry.area(), covered, ratio)


def layer_coverage_report(hierarchy: LayerHierarchy,
                          parent_layer: str) -> List[CoverageReport]:
    """Coverage reports for every geometric node of ``parent_layer``.

    Sorted by ascending ratio so the least-covered parents (the
    Figure 4 situation) come first.
    """
    graph = hierarchy.graph
    reports: List[CoverageReport] = []
    for node in graph.layer(parent_layer).nodes:
        report = node_coverage(hierarchy, node)
        if report is not None:
            reports.append(report)
    return sorted(reports, key=lambda r: r.ratio)


def coverage_summary(reports: List[CoverageReport]) -> Dict[str, float]:
    """Aggregate statistics over a list of coverage reports."""
    if not reports:
        return {"count": 0, "mean_ratio": 0.0, "min_ratio": 0.0,
                "max_ratio": 0.0, "fully_covered_share": 0.0}
    ratios = [r.ratio for r in reports]
    fully = sum(1 for r in reports if r.fully_covered)
    return {
        "count": len(reports),
        "mean_ratio": sum(ratios) / len(ratios),
        "min_ratio": min(ratios),
        "max_ratio": max(ratios),
        "fully_covered_share": fully / len(reports),
    }
