"""Primal-space indoor entities: cells, boundaries, cell spaces.

IndoorGML's core module "considers an indoor space as a set of
non-overlapping cells that represent its smallest organizational /
structural units: S = {c1, c2, ..., cn}, ci ∩ cj = ∅" (Section 2.1).
A :class:`CellSpace` is one such decomposition — in MLSM terms, the
primal-space content of a single layer.

Cells may carry geometry (a simple polygon plus a floor index, giving
the paper's 2.5D view) or be purely symbolic; semantic information lives
in the cell's ``semantic_class`` and free-form ``attributes``, which is
how the paper encodes "static semantic information about the regions ...
through node classes and attributes" (Section 3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.spatial.geometry import Point, Polygon
from repro.spatial.topology import TopologicalRelation, relate


class BoundaryKind(enum.Enum):
    """The physical/semantic nature of a shared cell boundary.

    The kind decides which derived NRGs an edge appears in: a ``WALL``
    yields only an adjacency edge, anything with an opening yields a
    connectivity edge, and a traversable opening yields accessibility
    edges (Section 2.1: "Connectivity suggests that there exists an
    opening in the common boundary of two cells.  Accessibility
    additionally suggests that the opening is traversable").
    """

    WALL = "wall"
    DOOR = "door"
    OPENING = "opening"
    STAIRCASE = "staircase"
    ELEVATOR = "elevator"
    RAMP = "ramp"
    CHECKPOINT = "checkpoint"
    VIRTUAL = "virtual"

    @property
    def has_opening(self) -> bool:
        """True when a moving object could in principle pass through."""
        return self is not BoundaryKind.WALL

    @property
    def crosses_floors(self) -> bool:
        """True for the vertical-transition boundary kinds."""
        return self in (BoundaryKind.STAIRCASE, BoundaryKind.ELEVATOR,
                        BoundaryKind.RAMP)


@dataclass(frozen=True)
class Cell:
    """A cell of the indoor space — the paper's primary spatial primitive.

    Attributes:
        cell_id: unique identifier within the whole layered graph.
        name: human-readable label (e.g. ``"Salle des États"``).
        semantic_class: ontological class of the cell, e.g. ``"Room"``,
            ``"Hall"``, ``"ThematicZone"``, ``"ExhibitRoI"``.
        geometry: optional simple polygon footprint (primal space).
        floor: optional integer floor index (e.g. ``-2`` .. ``2``); this
            is the 2.5D component.
        attributes: open-ended static semantic attributes (exhibition
            theme, requires-separate-ticket, is-exit-zone, ...).
    """

    cell_id: str
    name: str = ""
    semantic_class: str = "Cell"
    geometry: Optional[Polygon] = None
    floor: Optional[int] = None
    attributes: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.cell_id:
            raise ValueError("cell_id must be a non-empty string")

    def attribute(self, key: str, default: object = None) -> object:
        """Look up a semantic attribute with a default."""
        return self.attributes.get(key, default)

    def has_geometry(self) -> bool:
        """True when the cell has a polygon footprint."""
        return self.geometry is not None

    def representative_point(self) -> Point:
        """A point strictly inside the cell footprint.

        Raises:
            ValueError: for a purely symbolic cell.
        """
        if self.geometry is None:
            raise ValueError(
                "cell {!r} has no geometry".format(self.cell_id))
        return self.geometry.representative_point()


@dataclass(frozen=True)
class CellBoundary:
    """A (potentially directed) boundary shared by two cells.

    A boundary is the primal-space entity that dualises into an NRG edge
    (Table 1 of the paper: "(cell) boundary → (intra-layer) edge →
    transition").

    Attributes:
        boundary_id: unique identifier (e.g. ``"door012"``).
        source: cell id on one side.
        target: cell id on the other side.
        kind: the :class:`BoundaryKind`.
        bidirectional: when False, traversal is only permitted from
            ``source`` to ``target`` — the paper's one-way "Salle des
            États" rule (Section 3.2).
        attributes: open-ended semantics (alarm probability, width, ...).
    """

    boundary_id: str
    source: str
    target: str
    kind: BoundaryKind = BoundaryKind.DOOR
    bidirectional: bool = True
    attributes: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.boundary_id:
            raise ValueError("boundary_id must be a non-empty string")
        if self.source == self.target:
            raise ValueError(
                "boundary {!r} must join two distinct cells".format(
                    self.boundary_id))

    def joins(self, cell_a: str, cell_b: str) -> bool:
        """True when the boundary joins the two given cells (any order)."""
        return {self.source, self.target} == {cell_a, cell_b}

    def allows(self, from_cell: str, to_cell: str) -> bool:
        """True when traversal ``from_cell → to_cell`` is permitted."""
        if not self.kind.has_opening:
            return False
        if self.source == from_cell and self.target == to_cell:
            return True
        if self.bidirectional and self.source == to_cell \
                and self.target == from_cell:
            return True
        return False


class DuplicateIdError(ValueError):
    """Raised when a cell or boundary id is registered twice."""


class OverlappingCellsError(ValueError):
    """Raised when two same-layer cells violate ci ∩ cj = ∅."""


class CellSpace:
    """One decomposition of the indoor space (the cells of one layer).

    Enforces IndoorGML's non-overlap invariant for cells that carry
    geometry on the same floor: any pair must relate as ``disjoint`` or
    ``meet``.  Purely symbolic cells are exempt (their consistency is
    asserted by construction, e.g. thematic zones supplied by the museum
    administration).
    """

    def __init__(self, name: str,
                 validate_geometry: bool = True) -> None:
        if not name:
            raise ValueError("a CellSpace needs a non-empty name")
        self.name = name
        self._validate_geometry = validate_geometry
        self._cells: Dict[str, Cell] = {}
        self._boundaries: Dict[str, CellBoundary] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_cell(self, cell: Cell) -> Cell:
        """Register a cell.

        Raises:
            DuplicateIdError: when the id is already present.
            OverlappingCellsError: when geometric validation is on and
                the new cell's interior intersects an existing same-floor
                cell's interior.
        """
        if cell.cell_id in self._cells:
            raise DuplicateIdError(
                "cell id {!r} already in cell space {!r}".format(
                    cell.cell_id, self.name))
        if self._validate_geometry and cell.geometry is not None:
            self._check_non_overlap(cell)
        self._cells[cell.cell_id] = cell
        return cell

    def _check_non_overlap(self, new_cell: Cell) -> None:
        for other in self._cells.values():
            if other.geometry is None:
                continue
            if (other.floor is not None and new_cell.floor is not None
                    and other.floor != new_cell.floor):
                continue
            relation = relate(new_cell.geometry, other.geometry)
            if relation.implies_interior_intersection:
                raise OverlappingCellsError(
                    "cells {!r} and {!r} in layer {!r} are not "
                    "interior-disjoint (relation: {})".format(
                        new_cell.cell_id, other.cell_id, self.name,
                        relation.value))

    def add_boundary(self, boundary: CellBoundary) -> CellBoundary:
        """Register a boundary between two already-registered cells.

        Raises:
            DuplicateIdError: when the id is already present.
            KeyError: when either endpoint cell is unknown.
        """
        if boundary.boundary_id in self._boundaries:
            raise DuplicateIdError(
                "boundary id {!r} already in cell space {!r}".format(
                    boundary.boundary_id, self.name))
        if boundary.source not in self._cells:
            raise KeyError("unknown source cell {!r}".format(boundary.source))
        if boundary.target not in self._cells:
            raise KeyError("unknown target cell {!r}".format(boundary.target))
        self._boundaries[boundary.boundary_id] = boundary
        return boundary

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def cell(self, cell_id: str) -> Cell:
        """Fetch a cell by id (raises ``KeyError`` when absent)."""
        return self._cells[cell_id]

    def boundary(self, boundary_id: str) -> CellBoundary:
        """Fetch a boundary by id (raises ``KeyError`` when absent)."""
        return self._boundaries[boundary_id]

    def __contains__(self, cell_id: str) -> bool:
        return cell_id in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    @property
    def cells(self) -> Tuple[Cell, ...]:
        """All cells, in insertion order."""
        return tuple(self._cells.values())

    @property
    def boundaries(self) -> Tuple[CellBoundary, ...]:
        """All boundaries, in insertion order."""
        return tuple(self._boundaries.values())

    def cells_on_floor(self, floor: int) -> List[Cell]:
        """All cells with the given floor index."""
        return [c for c in self._cells.values() if c.floor == floor]

    def cells_of_class(self, semantic_class: str) -> List[Cell]:
        """All cells with the given semantic class."""
        return [c for c in self._cells.values()
                if c.semantic_class == semantic_class]

    def boundaries_between(self, cell_a: str,
                           cell_b: str) -> List[CellBoundary]:
        """All boundaries joining the two cells, in insertion order.

        There may be several — the NRG is a multigraph precisely because
        two rooms may share more than one door.
        """
        return [b for b in self._boundaries.values()
                if b.joins(cell_a, cell_b)]

    def locate_point(self, point: Point,
                     floor: Optional[int] = None) -> Optional[Cell]:
        """Find the cell whose footprint contains ``point``.

        Boundary points resolve to the first matching cell in insertion
        order.  Returns ``None`` when no cell contains the point (the
        point is in a sensor-coverage gap, in paper terms).
        """
        for cell in self._cells.values():
            if cell.geometry is None:
                continue
            if floor is not None and cell.floor is not None \
                    and cell.floor != floor:
                continue
            if cell.geometry.contains_point(point):
                return cell
        return None

    # ------------------------------------------------------------------
    # derived relations
    # ------------------------------------------------------------------
    def geometric_relation(self, cell_a: str,
                           cell_b: str) -> TopologicalRelation:
        """Topological relation between two cells' footprints.

        Raises:
            ValueError: when either cell lacks geometry.
        """
        a = self.cell(cell_a)
        b = self.cell(cell_b)
        if a.geometry is None or b.geometry is None:
            raise ValueError("both cells need geometry to be related")
        return relate(a.geometry, b.geometry)

    def adjacent_pairs(self) -> List[Tuple[str, str]]:
        """All unordered same-floor cell pairs whose footprints meet.

        This is the geometric ground truth behind the adjacency NRG.
        """
        pairs: List[Tuple[str, str]] = []
        cells = [c for c in self._cells.values() if c.geometry is not None]
        for i, a in enumerate(cells):
            for b in cells[i + 1:]:
                if (a.floor is not None and b.floor is not None
                        and a.floor != b.floor):
                    continue
                if relate(a.geometry, b.geometry) is TopologicalRelation.MEET:
                    pairs.append((a.cell_id, b.cell_id))
        return pairs
