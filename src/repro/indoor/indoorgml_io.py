"""JSON import/export of layered indoor graphs.

IndoorGML is an XML/GML exchange format; this module provides a JSON
equivalent carrying the same information content for the subset of the
standard the SITM uses (cell spaces, NRGs, MLSM layers, joint edges).
Round-tripping is lossless for everything the model reasons over.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.indoor.cells import (
    BoundaryKind,
    Cell,
    CellBoundary,
    CellSpace,
)
from repro.indoor.multilayer import JointEdge, LayeredIndoorGraph
from repro.indoor.nrg import EdgeKind, NodeRelationGraph, NRGEdge
from repro.spatial.geometry import Point, Polygon
from repro.spatial.topology import TopologicalRelation

#: Schema identifier embedded in every document.
SCHEMA = "repro-sitm-indoorgml/1"


def _polygon_to_json(polygon: Optional[Polygon]) -> Optional[List[List[float]]]:
    if polygon is None:
        return None
    return [[p.x, p.y] for p in polygon.vertices]


def _polygon_from_json(data: Optional[List[List[float]]]) -> Optional[Polygon]:
    if data is None:
        return None
    return Polygon([Point(x, y) for x, y in data])


def cell_to_dict(cell: Cell) -> Dict:
    """Serialise one cell."""
    return {
        "cell_id": cell.cell_id,
        "name": cell.name,
        "semantic_class": cell.semantic_class,
        "geometry": _polygon_to_json(cell.geometry),
        "floor": cell.floor,
        "attributes": dict(cell.attributes),
    }


def cell_from_dict(data: Dict) -> Cell:
    """Deserialise one cell."""
    return Cell(
        cell_id=data["cell_id"],
        name=data.get("name", ""),
        semantic_class=data.get("semantic_class", "Cell"),
        geometry=_polygon_from_json(data.get("geometry")),
        floor=data.get("floor"),
        attributes=data.get("attributes", {}),
    )


def boundary_to_dict(boundary: CellBoundary) -> Dict:
    """Serialise one boundary."""
    return {
        "boundary_id": boundary.boundary_id,
        "source": boundary.source,
        "target": boundary.target,
        "kind": boundary.kind.value,
        "bidirectional": boundary.bidirectional,
        "attributes": dict(boundary.attributes),
    }


def boundary_from_dict(data: Dict) -> CellBoundary:
    """Deserialise one boundary."""
    return CellBoundary(
        boundary_id=data["boundary_id"],
        source=data["source"],
        target=data["target"],
        kind=BoundaryKind(data.get("kind", "door")),
        bidirectional=data.get("bidirectional", True),
        attributes=data.get("attributes", {}),
    )


def graph_to_dict(graph: LayeredIndoorGraph) -> Dict:
    """Serialise a full layered indoor graph to plain data."""
    layers = []
    for layer_name in graph.layer_names:
        nrg = graph.layer(layer_name)
        layer_doc: Dict = {
            "name": layer_name,
            "kind": nrg.kind.value,
            "nodes": list(nrg.nodes),
            "edges": [
                {
                    "edge_id": e.edge_id,
                    "source": e.source,
                    "target": e.target,
                    "boundary_id": e.boundary_id,
                    "weight": e.weight,
                    "attributes": dict(e.attributes),
                }
                for e in nrg.edges
            ],
        }
        if graph.has_space(layer_name):
            space = graph.space(layer_name)
            layer_doc["cells"] = [cell_to_dict(c) for c in space.cells]
            layer_doc["boundaries"] = [boundary_to_dict(b)
                                       for b in space.boundaries]
        layers.append(layer_doc)
    return {
        "schema": SCHEMA,
        "name": graph.name,
        "layers": layers,
        "joint_edges": [
            {
                "source_layer": j.source_layer,
                "source": j.source,
                "target_layer": j.target_layer,
                "target": j.target,
                "relation": j.relation.value,
                "attributes": dict(j.attributes),
            }
            for j in graph.joint_edges
        ],
    }


def graph_from_dict(data: Dict) -> LayeredIndoorGraph:
    """Deserialise a layered indoor graph.

    Raises:
        ValueError: on schema mismatch.
    """
    if data.get("schema") != SCHEMA:
        raise ValueError("unsupported schema {!r}".format(data.get("schema")))
    graph = LayeredIndoorGraph(data.get("name", "indoor-space"))
    for layer_doc in data["layers"]:
        nrg = NodeRelationGraph(layer_doc["name"],
                                EdgeKind(layer_doc.get("kind",
                                                       "accessibility")))
        for node in layer_doc["nodes"]:
            nrg.add_node(node)
        for edge_doc in layer_doc["edges"]:
            nrg.add_edge(NRGEdge(
                edge_id=edge_doc["edge_id"],
                source=edge_doc["source"],
                target=edge_doc["target"],
                kind=nrg.kind,
                boundary_id=edge_doc.get("boundary_id"),
                weight=edge_doc.get("weight", 1.0),
                attributes=edge_doc.get("attributes", {}),
            ))
        space = None
        if "cells" in layer_doc:
            # Geometry was validated at authoring time; skip the O(n^2)
            # overlap re-check on load.
            space = CellSpace(layer_doc["name"], validate_geometry=False)
            for cell_doc in layer_doc["cells"]:
                space.add_cell(cell_from_dict(cell_doc))
            for boundary_doc in layer_doc.get("boundaries", []):
                space.add_boundary(boundary_from_dict(boundary_doc))
        graph.add_layer(nrg, space)
    for joint_doc in data.get("joint_edges", []):
        graph.add_joint_edge(JointEdge(
            source_layer=joint_doc["source_layer"],
            source=joint_doc["source"],
            target_layer=joint_doc["target_layer"],
            target=joint_doc["target"],
            relation=TopologicalRelation(joint_doc["relation"]),
            attributes=joint_doc.get("attributes", {}),
        ), add_converse=False)
    return graph


def dumps(graph: LayeredIndoorGraph, indent: Optional[int] = None) -> str:
    """Serialise a layered indoor graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> LayeredIndoorGraph:
    """Deserialise a layered indoor graph from a JSON string."""
    return graph_from_dict(json.loads(text))


def save(graph: LayeredIndoorGraph, path: str) -> None:
    """Write a layered indoor graph to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle)


def load(path: str) -> LayeredIndoorGraph:
    """Read a layered indoor graph from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_dict(json.load(handle))
