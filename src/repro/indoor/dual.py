"""Poincaré duality: primal cell spaces → dual Node-Relation Graphs.

"The Poincaré duality provides the means of mapping the physical indoor
space (embedded in a 2D/3D Euclidean primal space) into an adjacency NRG
(in the corresponding dual space).  Therefore, a cell (e.g. room)
becomes a node and a cell boundary (e.g. a thin wall) becomes an edge"
(Section 2.1).

Three derivations are offered, one per NRG variant:

* :func:`derive_adjacency_nrg` — from geometry (cells that *meet*) and
  from declared boundaries of any kind;
* :func:`derive_connectivity_nrg` — from boundaries with an opening;
* :func:`derive_accessibility_nrg` — from traversable boundaries,
  honouring their direction flags (directed, per Section 3.2).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.indoor.cells import CellSpace
from repro.indoor.nrg import EdgeKind, NodeRelationGraph, NRGEdge


def derive_adjacency_nrg(space: CellSpace,
                         use_geometry: bool = True) -> NodeRelationGraph:
    """Build the adjacency NRG of a cell space.

    An adjacency edge states that two cells share a common boundary —
    the symmetric "meet" relation.  Edges come from two sources:

    * every declared :class:`~repro.indoor.cells.CellBoundary`
      (walls included — a wall still witnesses adjacency);
    * optionally, geometric *meet* detection between same-floor
      footprints, which catches shared walls nobody declared.

    The result is symmetric: each adjacency is stored as a directed edge
    pair.
    """
    graph = NodeRelationGraph(space.name + ":adjacency", EdgeKind.ADJACENCY)
    for cell in space:
        graph.add_node(cell.cell_id)
    linked: Set[Tuple[str, str]] = set()
    for boundary in space.boundaries:
        _add_symmetric(graph, boundary.source, boundary.target,
                       boundary.boundary_id, linked)
    if use_geometry:
        for cell_a, cell_b in space.adjacent_pairs():
            _add_symmetric(graph, cell_a, cell_b, None, linked)
    return graph


def derive_connectivity_nrg(space: CellSpace) -> NodeRelationGraph:
    """Build the connectivity NRG of a cell space.

    A connectivity edge requires "an opening in the common boundary of
    two cells" (Section 2.1) — i.e. any boundary kind except ``WALL``.
    Connectivity is symmetric regardless of traversal direction rules:
    a one-way door is still an opening.
    """
    graph = NodeRelationGraph(space.name + ":connectivity",
                              EdgeKind.CONNECTIVITY)
    for cell in space:
        graph.add_node(cell.cell_id)
    linked: Set[Tuple[str, str]] = set()
    for boundary in space.boundaries:
        if not boundary.kind.has_opening:
            continue
        _add_symmetric(graph, boundary.source, boundary.target,
                       boundary.boundary_id, linked)
    return graph


def derive_accessibility_nrg(space: CellSpace) -> NodeRelationGraph:
    """Build the **directed** accessibility NRG of a cell space.

    An accessibility edge requires the opening to be traversable by the
    moving object, in the stated direction.  One-way boundaries
    (``bidirectional=False``) yield a single directed edge — this is how
    the Salle des États entry prohibition of Section 3.2 is modelled.

    Parallel boundaries yield parallel edges (multigraph), so the
    specific transition ``e_i`` of Definition 3.2 stays identifiable.
    """
    graph = NodeRelationGraph(space.name + ":accessibility",
                              EdgeKind.ACCESSIBILITY)
    for cell in space:
        graph.add_node(cell.cell_id)
    for boundary in space.boundaries:
        if not boundary.kind.has_opening:
            continue
        graph.add_edge(NRGEdge(
            edge_id=boundary.boundary_id + ":fwd",
            source=boundary.source,
            target=boundary.target,
            kind=EdgeKind.ACCESSIBILITY,
            boundary_id=boundary.boundary_id,
            attributes=boundary.attributes,
        ))
        if boundary.bidirectional:
            graph.add_edge(NRGEdge(
                edge_id=boundary.boundary_id + ":rev",
                source=boundary.target,
                target=boundary.source,
                kind=EdgeKind.ACCESSIBILITY,
                boundary_id=boundary.boundary_id,
                attributes=boundary.attributes,
            ))
    return graph


def _add_symmetric(graph: NodeRelationGraph, cell_a: str, cell_b: str,
                   boundary_id: Optional[str],
                   linked: Set[Tuple[str, str]]) -> None:
    """Add the edge pair for a symmetric relation, deduplicating pairs."""
    key = (min(cell_a, cell_b), max(cell_a, cell_b))
    if key in linked:
        return
    linked.add(key)
    prefix = boundary_id or "adj:{}|{}".format(*key)
    graph.add_edge(NRGEdge(prefix + ":fwd", cell_a, cell_b, graph.kind,
                           boundary_id))
    graph.add_edge(NRGEdge(prefix + ":rev", cell_b, cell_a, graph.kind,
                           boundary_id))
