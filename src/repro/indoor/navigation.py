"""Indoor navigation over the layered space model.

IndoorGML is "an OGC standard aimed at representing and allowing the
exchange of geoinformation for indoor navigational systems" (Section
2.1), and the Louvre app's motivating service is "way-finding".  This
module provides that navigation layer on top of the SITM structures:

* :class:`RoutePlanner` — shortest routes over a directed
  accessibility NRG, returning the crossed boundaries (the ``e_i`` of
  a *planned* trajectory) and honouring one-way restrictions;
* **hierarchical routing** — plan coarse at a parent layer, refine
  per coarse cell at the child layer, the classic technique the
  paper's static hierarchy enables ("hierarchies simplify ...");
* :func:`route_instructions` — human-readable turn-by-turn output
  keyed by boundary kinds (door / staircase / elevator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.indoor.cells import BoundaryKind, CellSpace
from repro.indoor.hierarchy import LayerHierarchy
from repro.indoor.nrg import NodeRelationGraph, NRGEdge


@dataclass(frozen=True)
class RouteLeg:
    """One hop of a planned route.

    Attributes:
        from_state: origin cell.
        to_state: destination cell.
        edge: the accessibility edge used (carries the boundary id).
    """

    from_state: str
    to_state: str
    edge: NRGEdge


@dataclass(frozen=True)
class Route:
    """A planned route: states plus the legs connecting them."""

    states: Tuple[str, ...]
    legs: Tuple[RouteLeg, ...]

    @property
    def hop_count(self) -> int:
        """Number of transitions."""
        return len(self.legs)

    def total_weight(self) -> float:
        """Sum of leg edge weights."""
        return sum(leg.edge.weight for leg in self.legs)

    def boundaries(self) -> List[Optional[str]]:
        """The boundary ids crossed, in order."""
        return [leg.edge.boundary_id or leg.edge.edge_id
                for leg in self.legs]


class UnreachableError(ValueError):
    """Raised when no route exists under the accessibility rules."""


class RoutePlanner:
    """Shortest-route planning over one accessibility NRG.

    Args:
        nrg: the directed accessibility graph.
        weighted: use edge weights (metres/seconds) instead of hops.
    """

    def __init__(self, nrg: NodeRelationGraph,
                 weighted: bool = False) -> None:
        self.nrg = nrg
        self.weighted = weighted

    def plan(self, origin: str, destination: str) -> Route:
        """Plan the shortest route.

        The lightest parallel edge is chosen for each hop, so the
        returned boundaries are deterministic.

        Raises:
            UnreachableError: when the directed graph admits no route
                (e.g. against a one-way restriction).
            KeyError: for unknown endpoints.
        """
        states = self.nrg.shortest_path(origin, destination,
                                        weighted=self.weighted)
        if states is None:
            raise UnreachableError(
                "no accessible route from {!r} to {!r} (one-way "
                "restrictions may apply)".format(origin, destination))
        legs: List[RouteLeg] = []
        for from_state, to_state in zip(states, states[1:]):
            edges = self.nrg.edges_between(from_state, to_state)
            edge = min(edges, key=lambda e: (e.weight, e.edge_id))
            legs.append(RouteLeg(from_state, to_state, edge))
        return Route(tuple(states), tuple(legs))

    def plan_via(self, stops: Sequence[str]) -> Route:
        """Plan a route visiting ``stops`` in order.

        Useful for curated tours ("Mona Lisa then Venus de Milo then
        the exit").

        Raises:
            ValueError: with fewer than two stops.
            UnreachableError: when any stage is unreachable.
        """
        if len(stops) < 2:
            raise ValueError("a via-route needs at least two stops")
        states: List[str] = [stops[0]]
        legs: List[RouteLeg] = []
        for origin, destination in zip(stops, stops[1:]):
            stage = self.plan(origin, destination)
            states.extend(stage.states[1:])
            legs.extend(stage.legs)
        return Route(tuple(states), tuple(legs))

    def reachable_within(self, origin: str, max_hops: int) -> List[str]:
        """All states reachable within ``max_hops`` transitions."""
        frontier = {origin}
        seen = {origin}
        for _ in range(max_hops):
            next_frontier = set()
            for state in frontier:
                for successor in self.nrg.successors(state):
                    if successor not in seen:
                        seen.add(successor)
                        next_frontier.add(successor)
            frontier = next_frontier
            if not frontier:
                break
        seen.discard(origin)
        return sorted(seen)


def plan_hierarchical(hierarchy: LayerHierarchy,
                      fine_layer: str,
                      origin: str, destination: str
                      ) -> Tuple[List[str], Route]:
    """Two-level routing: coarse corridor first, fine route second.

    Plans at the parent layer to obtain the corridor of coarse cells,
    then plans the fine route restricted to that corridor (plus the
    endpoints' cells).  With good hierarchies this explores a fraction
    of the fine graph while matching plain fine-level routes on
    realistic floorplans.

    Returns ``(coarse_states, fine_route)``.

    Raises:
        UnreachableError: when either stage fails; callers may fall
            back to flat planning.
    """
    graph = hierarchy.graph
    fine_nrg = graph.layer(fine_layer)
    parent_layer_index = hierarchy.level_of_layer(fine_layer) - 1
    if parent_layer_index < 0:
        raise ValueError("fine layer has no parent layer")
    coarse_layer = hierarchy.layers[parent_layer_index]
    coarse_origin = hierarchy.lift(origin, coarse_layer)
    coarse_destination = hierarchy.lift(destination, coarse_layer)
    if coarse_origin is None or coarse_destination is None:
        raise UnreachableError("endpoints cannot be lifted")

    coarse_route = RoutePlanner(graph.layer(coarse_layer)).plan(
        coarse_origin, coarse_destination)
    corridor = set(coarse_route.states)
    allowed = {
        state for state in fine_nrg.nodes
        if hierarchy.lift(state, coarse_layer) in corridor}
    allowed.add(origin)
    allowed.add(destination)
    restricted = fine_nrg.subgraph(allowed)
    fine_route = RoutePlanner(restricted).plan(origin, destination)
    return list(coarse_route.states), fine_route


#: Instruction verbs per boundary kind.
_VERBS: Dict[BoundaryKind, str] = {
    BoundaryKind.DOOR: "go through",
    BoundaryKind.OPENING: "continue through",
    BoundaryKind.STAIRCASE: "take the stairs",
    BoundaryKind.ELEVATOR: "take the elevator",
    BoundaryKind.RAMP: "take the ramp",
    BoundaryKind.CHECKPOINT: "pass the checkpoint",
    BoundaryKind.VIRTUAL: "continue",
}


def route_instructions(route: Route,
                       space: Optional[CellSpace] = None) -> List[str]:
    """Turn-by-turn instructions for a planned route.

    When the layer's cell space is supplied, boundary kinds and cell
    names enrich the wording; otherwise ids are used.
    """
    if not route.legs:
        return ["you are already there"]
    lines: List[str] = ["start in {}".format(
        _display(route.states[0], space))]
    for leg in route.legs:
        verb = "go to"
        boundary_name = leg.edge.boundary_id or leg.edge.edge_id
        if space is not None and leg.edge.boundary_id is not None:
            try:
                boundary = space.boundary(leg.edge.boundary_id)
                verb = _VERBS.get(boundary.kind, "go through")
            except KeyError:
                pass
        lines.append("{} {} into {}".format(
            verb, boundary_name, _display(leg.to_state, space)))
    lines.append("you have arrived at {}".format(
        _display(route.states[-1], space)))
    return lines


def _display(state: str, space: Optional[CellSpace]) -> str:
    if space is not None and state in space:
        name = space.cell(state).name
        if name:
            return "{} ({})".format(name, state)
    return state
