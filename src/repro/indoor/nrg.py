"""Node-Relation Graphs — the dual-space representation of a layer.

"The cell space and the topological relationships between its objects
are represented by one or more Node-Relation Graphs (NRGs). ... a cell
(e.g. room) becomes a node and a cell boundary (e.g. a thin wall)
becomes an edge" (Section 2.1).

Three NRG variants exist, ordered by strength:

* **adjacency** — the cells share a boundary;
* **connectivity** — the shared boundary has an opening;
* **accessibility** — the opening is traversable by the moving object.

Per Section 3.2 the SITM assumes *directed* accessibility NRGs, because
"often indoor movement is only unidirectionally possible due to
technical, safety or other limitations" (the Salle des États example).
:class:`NodeRelationGraph` is therefore a directed multigraph; symmetric
relations (adjacency, connectivity) are stored as edge pairs.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)


class EdgeKind(enum.Enum):
    """The NRG variant an edge belongs to."""

    ADJACENCY = "adjacency"
    CONNECTIVITY = "connectivity"
    ACCESSIBILITY = "accessibility"


@dataclass(frozen=True)
class NRGEdge:
    """A directed intra-layer edge (a *transition* in navigation terms).

    Attributes:
        edge_id: unique identifier; dualised boundaries reuse the
            boundary id (optionally suffixed for direction).
        source: origin node (cell id).
        target: destination node (cell id).
        kind: which NRG variant the edge belongs to.
        boundary_id: the primal-space boundary this edge dualises, when
            known — this is the paper's ``e_i`` ("which door, staircase,
            or elevator was used").
        weight: optional traversal cost (metres, seconds, ...).
        attributes: open-ended semantics.
    """

    edge_id: str
    source: str
    target: str
    kind: EdgeKind = EdgeKind.ACCESSIBILITY
    boundary_id: Optional[str] = None
    weight: float = 1.0
    attributes: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError(
                "edge {!r}: NRG edges join distinct cells".format(
                    self.edge_id))
        if self.weight < 0:
            raise ValueError(
                "edge {!r}: negative weights are not supported".format(
                    self.edge_id))


class NodeRelationGraph:
    """A directed multigraph over the cells of one layer.

    Multiple parallel edges between the same ordered pair are allowed
    ("given that each layer's NRG is a multigraph" — Section 3.3): two
    rooms joined by two doors yield two accessibility edges each way.
    """

    def __init__(self, name: str,
                 kind: EdgeKind = EdgeKind.ACCESSIBILITY) -> None:
        self.name = name
        self.kind = kind
        self._nodes: Dict[str, None] = {}
        self._edges: Dict[str, NRGEdge] = {}
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        """Register a node; repeated additions are ignored."""
        if node not in self._nodes:
            self._nodes[node] = None
            self._out[node] = []
            self._in[node] = []

    def add_edge(self, edge: NRGEdge) -> NRGEdge:
        """Register a directed edge; endpoints are auto-registered.

        Raises:
            ValueError: on duplicate edge id or kind mismatch with the
                graph.
        """
        if edge.edge_id in self._edges:
            raise ValueError("edge id {!r} already present".format(
                edge.edge_id))
        if edge.kind is not self.kind:
            raise ValueError(
                "edge {!r} has kind {} but graph {!r} holds {} edges".format(
                    edge.edge_id, edge.kind.value, self.name,
                    self.kind.value))
        self.add_node(edge.source)
        self.add_node(edge.target)
        self._edges[edge.edge_id] = edge
        self._out[edge.source].append(edge.edge_id)
        self._in[edge.target].append(edge.edge_id)
        return edge

    def connect(self, source: str, target: str, *,
                edge_id: Optional[str] = None,
                boundary_id: Optional[str] = None,
                bidirectional: bool = False,
                weight: float = 1.0,
                attributes: Optional[Mapping[str, object]] = None,
                ) -> List[NRGEdge]:
        """Convenience edge builder.

        Returns the list of created edges (two when ``bidirectional``).
        """
        attributes = attributes or {}
        base = edge_id or "{}->{}#{}".format(source, target,
                                             len(self._edges))
        edges = [self.add_edge(NRGEdge(base, source, target, self.kind,
                                       boundary_id, weight, attributes))]
        if bidirectional:
            edges.append(self.add_edge(
                NRGEdge(base + ":rev", target, source, self.kind,
                        boundary_id, weight, attributes)))
        return edges

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """All node ids, in insertion order."""
        return tuple(self._nodes)

    @property
    def edges(self) -> Tuple[NRGEdge, ...]:
        """All edges, in insertion order."""
        return tuple(self._edges.values())

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def edge(self, edge_id: str) -> NRGEdge:
        """Fetch an edge by id (raises ``KeyError`` when absent)."""
        return self._edges[edge_id]

    def out_edges(self, node: str) -> List[NRGEdge]:
        """Edges leaving ``node``."""
        return [self._edges[e] for e in self._out.get(node, [])]

    def in_edges(self, node: str) -> List[NRGEdge]:
        """Edges entering ``node``."""
        return [self._edges[e] for e in self._in.get(node, [])]

    def successors(self, node: str) -> List[str]:
        """Distinct nodes reachable in one hop from ``node``."""
        seen: Dict[str, None] = {}
        for edge in self.out_edges(node):
            seen.setdefault(edge.target, None)
        return list(seen)

    def predecessors(self, node: str) -> List[str]:
        """Distinct nodes with a one-hop edge into ``node``."""
        seen: Dict[str, None] = {}
        for edge in self.in_edges(node):
            seen.setdefault(edge.source, None)
        return list(seen)

    def edges_between(self, source: str, target: str) -> List[NRGEdge]:
        """All parallel edges from ``source`` to ``target``."""
        return [e for e in self.out_edges(source) if e.target == target]

    def has_transition(self, source: str, target: str) -> bool:
        """True when at least one directed edge ``source → target`` exists."""
        return bool(self.edges_between(source, target))

    def degree(self, node: str) -> int:
        """Total edge endpoints at ``node`` (in + out)."""
        return len(self._out.get(node, [])) + len(self._in.get(node, []))

    def is_symmetric(self) -> bool:
        """True when every edge has a reverse counterpart.

        Adjacency and connectivity NRGs must be symmetric; a directed
        accessibility NRG generally is not (Section 3.2).
        """
        for edge in self._edges.values():
            if not self.has_transition(edge.target, edge.source):
                return False
        return True

    def asymmetric_pairs(self) -> List[Tuple[str, str]]:
        """Ordered pairs with an edge one way but not the other.

        These are the one-way restrictions (e.g. the prohibited
        room2 → Salle des États entry in Figure 1).
        """
        pairs: List[Tuple[str, str]] = []
        seen: Set[Tuple[str, str]] = set()
        for edge in self._edges.values():
            key = (edge.source, edge.target)
            if key in seen:
                continue
            seen.add(key)
            if not self.has_transition(edge.target, edge.source):
                pairs.append(key)
        return pairs

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def reachable_from(self, node: str) -> Set[str]:
        """All nodes reachable from ``node`` (including itself)."""
        if node not in self._nodes:
            raise KeyError("unknown node {!r}".format(node))
        seen = {node}
        frontier = deque([node])
        while frontier:
            current = frontier.popleft()
            for nxt in self.successors(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def shortest_path(self, source: str, target: str,
                      weighted: bool = False) -> Optional[List[str]]:
        """Shortest node path from ``source`` to ``target``.

        Uses BFS on hop count, or Dijkstra over edge weights when
        ``weighted``.  Returns ``None`` when the target is unreachable —
        which the trajectory builder treats as a data error, since every
        observed transition must correspond to a path in the
        accessibility NRG.
        """
        if source not in self._nodes:
            raise KeyError("unknown node {!r}".format(source))
        if target not in self._nodes:
            raise KeyError("unknown node {!r}".format(target))
        if source == target:
            return [source]
        if weighted:
            return self._dijkstra(source, target)
        return self._bfs(source, target)

    def _bfs(self, source: str, target: str) -> Optional[List[str]]:
        parents: Dict[str, str] = {}
        frontier = deque([source])
        seen = {source}
        while frontier:
            current = frontier.popleft()
            for nxt in self.successors(current):
                if nxt in seen:
                    continue
                parents[nxt] = current
                if nxt == target:
                    return self._unwind(parents, source, target)
                seen.add(nxt)
                frontier.append(nxt)
        return None

    def _dijkstra(self, source: str, target: str) -> Optional[List[str]]:
        distances: Dict[str, float] = {source: 0.0}
        parents: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, source)]
        done: Set[str] = set()
        while heap:
            dist, current = heapq.heappop(heap)
            if current in done:
                continue
            if current == target:
                return self._unwind(parents, source, target)
            done.add(current)
            for edge in self.out_edges(current):
                candidate = dist + edge.weight
                if candidate < distances.get(edge.target, float("inf")):
                    distances[edge.target] = candidate
                    parents[edge.target] = current
                    heapq.heappush(heap, (candidate, edge.target))
        return None

    @staticmethod
    def _unwind(parents: Mapping[str, str], source: str,
                target: str) -> List[str]:
        path = [target]
        while path[-1] != source:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    def all_simple_paths(self, source: str, target: str,
                         max_length: int = 10) -> List[List[str]]:
        """All simple node paths up to ``max_length`` hops.

        Used by the missing-zone inference (Figure 6) to enumerate how a
        moving object could have travelled between two detections.
        """
        if source not in self._nodes or target not in self._nodes:
            raise KeyError("unknown endpoint")
        paths: List[List[str]] = []
        stack: List[Tuple[str, List[str]]] = [(source, [source])]
        while stack:
            current, path = stack.pop()
            if current == target:
                paths.append(path)
                continue
            if len(path) > max_length:
                continue
            for nxt in self.successors(current):
                if nxt not in path:
                    stack.append((nxt, path + [nxt]))
        return sorted(paths, key=len)

    # ------------------------------------------------------------------
    # derivations
    # ------------------------------------------------------------------
    def to_undirected(self) -> "NodeRelationGraph":
        """Symmetric closure of this graph (the "undirected variant").

        Used by the directed-vs-undirected ablation (DESIGN.md A1): it
        deliberately *loses* the one-way restrictions.
        """
        closure = NodeRelationGraph(self.name + ":undirected", self.kind)
        for node in self._nodes:
            closure.add_node(node)
        seen_pairs: Set[Tuple[str, str]] = set()
        for edge in self._edges.values():
            for src, dst in ((edge.source, edge.target),
                             (edge.target, edge.source)):
                if (src, dst) in seen_pairs:
                    continue
                seen_pairs.add((src, dst))
                closure.add_edge(NRGEdge(
                    "{}:{}->{}".format(edge.edge_id, src, dst),
                    src, dst, self.kind, edge.boundary_id, edge.weight,
                    edge.attributes))
        return closure

    def subgraph(self, nodes: Iterable[str]) -> "NodeRelationGraph":
        """The induced subgraph on ``nodes``."""
        keep = set(nodes)
        sub = NodeRelationGraph(self.name + ":sub", self.kind)
        for node in self._nodes:
            if node in keep:
                sub.add_node(node)
        for edge in self._edges.values():
            if edge.source in keep and edge.target in keep:
                sub.add_edge(edge)
        return sub

    def transition_count(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    def to_networkx(self):  # pragma: no cover - thin interop shim
        """Export as a ``networkx.MultiDiGraph`` for external analysis."""
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name, kind=self.kind.value)
        graph.add_nodes_from(self._nodes)
        for edge in self._edges.values():
            graph.add_edge(edge.source, edge.target, key=edge.edge_id,
                           boundary_id=edge.boundary_id, weight=edge.weight,
                           **dict(edge.attributes))
        return graph
