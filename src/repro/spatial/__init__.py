"""Spatial substrate for the SITM reproduction.

The paper (Section 1) argues that indoor trajectory analytics should
"avoid cumbersome calculations over geometric representations" and instead
simplify operations such as intersection, containment and proximity so the
non-geometric aspects of movement can be prioritised.  This package
therefore provides exactly the geometric machinery needed to *derive*
qualitative topological relations between indoor regions once, after which
the rest of the library works symbolically:

``repro.spatial.geometry``
    exact 2D primitives (points, segments, boxes, simple polygons).
``repro.spatial.topology``
    the eight binary topological relations of RCC-8 / the n-intersection
    model (Section 2.1 of the paper), computed between polygonal regions.
``repro.spatial.qsr``
    qualitative spatial reasoning: the relation algebra (converse,
    composition) and a path-consistency solver over relation networks.
"""

from repro.spatial.geometry import (
    BBox,
    Point,
    Polygon,
    Segment,
    Vector,
    convex_hull,
    orientation,
    polygon_clip_convex,
)
from repro.spatial.topology import (
    TopologicalRelation,
    relate,
    relate_boxes,
)
from repro.spatial.qsr import (
    RelationAlgebra,
    RelationNetwork,
    rcc8_algebra,
)

__all__ = [
    "BBox",
    "Point",
    "Polygon",
    "Segment",
    "Vector",
    "convex_hull",
    "orientation",
    "polygon_clip_convex",
    "TopologicalRelation",
    "relate",
    "relate_boxes",
    "RelationAlgebra",
    "RelationNetwork",
    "rcc8_algebra",
]
