"""Exact 2D geometric primitives for indoor space modelling.

This module is a small, dependency-free computational geometry kernel.
It exists because the topological relations of Section 2.1 of the paper
(RCC-8 / n-intersection) must be *derived* from the primal-space geometry
of indoor cells (rooms, zones, regions of interest) before the rest of
the library can reason symbolically.

Everything operates on simple polygons (no self-intersection, no holes),
which is sufficient for the paper's setting: rooms, thematic zones and
exhibit RoIs are all simple polygonal areas ("a RoI includes the area
physically taken up by the exhibit itself and its display installation,
i.e. no holes" — Section 4.2).

Numerical robustness: all predicates use an absolute epsilon
(:data:`EPSILON`) chosen for coordinates expressed in metres at building
scale (the Louvre is ~500 m across).  Exact rational arithmetic would be
overkill for synthetic floorplans whose coordinates we control.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

#: Absolute tolerance for geometric predicates, in coordinate units
#: (metres for the Louvre floorplan).  One tenth of a millimetre.
EPSILON = 1e-9

#: Orientation constants returned by :func:`orientation`.
COLLINEAR = 0
CLOCKWISE = -1
COUNTERCLOCKWISE = 1


@dataclass(frozen=True)
class Point:
    """A point in the 2D primal space.

    Points are immutable and hashable so they can key dictionaries (e.g.
    beacon positions) and be deduplicated in sets.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def almost_equals(self, other: "Point", tol: float = EPSILON) -> bool:
        """True when both coordinates differ by at most ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Vector:
    """A displacement in the plane."""

    dx: float
    dy: float

    @staticmethod
    def between(a: Point, b: Point) -> "Vector":
        """Vector from ``a`` to ``b``."""
        return Vector(b.x - a.x, b.y - a.y)

    def length(self) -> float:
        """Euclidean norm."""
        return math.hypot(self.dx, self.dy)

    def dot(self, other: "Vector") -> float:
        """Dot product."""
        return self.dx * other.dx + self.dy * other.dy

    def cross(self, other: "Vector") -> float:
        """2D cross product (z component)."""
        return self.dx * other.dy - self.dy * other.dx

    def scaled(self, factor: float) -> "Vector":
        """Return this vector scaled by ``factor``."""
        return Vector(self.dx * factor, self.dy * factor)

    def normalized(self) -> "Vector":
        """Return the unit vector with the same direction.

        Raises:
            ValueError: for the zero vector.
        """
        norm = self.length()
        if norm <= EPSILON:
            raise ValueError("cannot normalize a zero-length vector")
        return Vector(self.dx / norm, self.dy / norm)


def orientation(a: Point, b: Point, c: Point, tol: float = EPSILON) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns:
        :data:`COUNTERCLOCKWISE`, :data:`CLOCKWISE` or :data:`COLLINEAR`.
    """
    cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    if cross > tol:
        return COUNTERCLOCKWISE
    if cross < -tol:
        return CLOCKWISE
    return COLLINEAR


@dataclass(frozen=True)
class Segment:
    """A closed line segment between two points."""

    start: Point
    end: Point

    def length(self) -> float:
        """Segment length."""
        return self.start.distance_to(self.end)

    def midpoint(self) -> Point:
        """The segment midpoint."""
        return Point((self.start.x + self.end.x) / 2.0,
                     (self.start.y + self.end.y) / 2.0)

    def bbox(self) -> "BBox":
        """Axis-aligned bounding box of the segment."""
        return BBox(
            min(self.start.x, self.end.x),
            min(self.start.y, self.end.y),
            max(self.start.x, self.end.x),
            max(self.start.y, self.end.y),
        )

    def contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """True when ``p`` lies on the (closed) segment."""
        if orientation(self.start, self.end, p, tol) != COLLINEAR:
            return False
        return (min(self.start.x, self.end.x) - tol <= p.x
                <= max(self.start.x, self.end.x) + tol
                and min(self.start.y, self.end.y) - tol <= p.y
                <= max(self.start.y, self.end.y) + tol)

    def properly_crosses(self, other: "Segment") -> bool:
        """True when the two segments cross at a single interior point.

        Touching at an endpoint or overlapping collinearly does **not**
        count as a proper crossing; those situations correspond to the
        qualitative "meet" relation rather than "overlap".
        """
        o1 = orientation(self.start, self.end, other.start)
        o2 = orientation(self.start, self.end, other.end)
        o3 = orientation(other.start, other.end, self.start)
        o4 = orientation(other.start, other.end, self.end)
        return (o1 != o2 and o3 != o4
                and COLLINEAR not in (o1, o2, o3, o4))

    def intersects(self, other: "Segment") -> bool:
        """True when the two (closed) segments share at least one point."""
        o1 = orientation(self.start, self.end, other.start)
        o2 = orientation(self.start, self.end, other.end)
        o3 = orientation(other.start, other.end, self.start)
        o4 = orientation(other.start, other.end, self.end)
        if o1 != o2 and o3 != o4:
            return True
        return (self.contains_point(other.start)
                or self.contains_point(other.end)
                or other.contains_point(self.start)
                or other.contains_point(self.end))

    def overlaps_collinearly(self, other: "Segment",
                             tol: float = EPSILON) -> bool:
        """True when the segments are collinear and share more than a point.

        This is the geometric situation behind a shared wall between two
        adjacent rooms — the "meet" relation with a 1D common boundary —
        which is exactly what makes an IndoorGML adjacency edge.
        """
        if orientation(self.start, self.end, other.start, tol) != COLLINEAR:
            return False
        if orientation(self.start, self.end, other.end, tol) != COLLINEAR:
            return False
        direction = Vector.between(self.start, self.end)
        norm = direction.length()
        if norm <= tol:
            return False
        unit = direction.scaled(1.0 / norm)
        t_self = (0.0, norm)
        t_other = sorted((
            Vector.between(self.start, other.start).dot(unit),
            Vector.between(self.start, other.end).dot(unit),
        ))
        lo = max(t_self[0], t_other[0])
        hi = min(t_self[1], t_other[1])
        return hi - lo > tol


@dataclass(frozen=True)
class BBox:
    """An axis-aligned bounding box ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "degenerate BBox: min corner must not exceed max corner")

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    def area(self) -> float:
        """Box area."""
        return self.width * self.height

    def center(self) -> Point:
        """Box centre point."""
        return Point((self.min_x + self.max_x) / 2.0,
                     (self.min_y + self.max_y) / 2.0)

    def contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """True when ``p`` is inside or on the boundary."""
        return (self.min_x - tol <= p.x <= self.max_x + tol
                and self.min_y - tol <= p.y <= self.max_y + tol)

    def intersects(self, other: "BBox", tol: float = EPSILON) -> bool:
        """True when the two (closed) boxes share at least one point."""
        return not (self.max_x < other.min_x - tol
                    or other.max_x < self.min_x - tol
                    or self.max_y < other.min_y - tol
                    or other.max_y < self.min_y - tol)

    def expanded(self, margin: float) -> "BBox":
        """Return a copy grown by ``margin`` on every side."""
        return BBox(self.min_x - margin, self.min_y - margin,
                    self.max_x + margin, self.max_y + margin)

    def to_polygon(self) -> "Polygon":
        """Return the box as a counterclockwise rectangle polygon."""
        return Polygon([
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        ])

    @staticmethod
    def union_of(boxes: Iterable["BBox"]) -> "BBox":
        """Smallest box enclosing all ``boxes``.

        Raises:
            ValueError: when ``boxes`` is empty.
        """
        boxes = list(boxes)
        if not boxes:
            raise ValueError("union_of requires at least one box")
        return BBox(
            min(b.min_x for b in boxes),
            min(b.min_y for b in boxes),
            max(b.max_x for b in boxes),
            max(b.max_y for b in boxes),
        )


class Polygon:
    """A simple polygon (no self-intersections, no holes).

    Vertices may be supplied in either winding order; they are normalised
    to counterclockwise at construction so that signed areas and clipping
    behave predictably.

    The polygon is closed implicitly: the edge from the last vertex back
    to the first is part of the boundary.
    """

    __slots__ = ("_vertices", "_bbox_cache")

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        cleaned = _drop_consecutive_duplicates(vertices)
        if len(cleaned) < 3:
            raise ValueError("polygon is degenerate after deduplication")
        if _signed_area(cleaned) < 0:
            cleaned = list(reversed(cleaned))
        if abs(_signed_area(cleaned)) <= EPSILON:
            raise ValueError("polygon has (near-)zero area")
        self._vertices: Tuple[Point, ...] = tuple(cleaned)
        self._bbox_cache: Optional[BBox] = None

    @property
    def vertices(self) -> Tuple[Point, ...]:
        """The counterclockwise vertex ring (without repeated closure)."""
        return self._vertices

    @staticmethod
    def rectangle(min_x: float, min_y: float,
                  max_x: float, max_y: float) -> "Polygon":
        """Convenience constructor for an axis-aligned rectangle."""
        return BBox(min_x, min_y, max_x, max_y).to_polygon()

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:
        return "Polygon({} vertices, area={:.3f})".format(
            len(self._vertices), self.area())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self.equals(other)

    def __hash__(self) -> int:
        # Hash on the canonical (rotated) vertex ring so that equal
        # polygons hash identically regardless of starting vertex.
        ring = self._canonical_ring()
        return hash(tuple((round(p.x, 9), round(p.y, 9)) for p in ring))

    def _canonical_ring(self) -> Tuple[Point, ...]:
        """Vertex ring rotated to start at the lexicographically least."""
        least = min(range(len(self._vertices)),
                    key=lambda i: (self._vertices[i].x, self._vertices[i].y))
        return self._vertices[least:] + self._vertices[:least]

    def equals(self, other: "Polygon", tol: float = EPSILON) -> bool:
        """True when the polygons have identical vertex rings.

        This is the geometric "equal" relation of the n-intersection
        model for polygons built from the same vertex data; it is what a
        replicated node connected by an ``equal`` joint edge represents.
        """
        if len(self) != len(other):
            return False
        ring_a = self._canonical_ring()
        ring_b = other._canonical_ring()
        return all(pa.almost_equals(pb, tol)
                   for pa, pb in zip(ring_a, ring_b))

    def edges(self) -> List[Segment]:
        """The boundary as a list of segments in ring order."""
        verts = self._vertices
        return [Segment(verts[i], verts[(i + 1) % len(verts)])
                for i in range(len(verts))]

    def area(self) -> float:
        """Unsigned polygon area (shoelace formula)."""
        return abs(_signed_area(self._vertices))

    def perimeter(self) -> float:
        """Total boundary length."""
        return sum(edge.length() for edge in self.edges())

    def centroid(self) -> Point:
        """Area centroid.  May fall outside a non-convex polygon."""
        signed = _signed_area(self._vertices)
        cx = 0.0
        cy = 0.0
        verts = self._vertices
        for i in range(len(verts)):
            a = verts[i]
            b = verts[(i + 1) % len(verts)]
            cross = a.x * b.y - b.x * a.y
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Point(cx * factor, cy * factor)

    def bbox(self) -> BBox:
        """Axis-aligned bounding box (cached)."""
        if self._bbox_cache is None:
            xs = [p.x for p in self._vertices]
            ys = [p.y for p in self._vertices]
            self._bbox_cache = BBox(min(xs), min(ys), max(xs), max(ys))
        return self._bbox_cache

    def is_convex(self) -> bool:
        """True when every interior angle is at most 180 degrees."""
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            o = orientation(verts[i], verts[(i + 1) % n], verts[(i + 2) % n])
            if o == CLOCKWISE:
                return False
        return True

    def boundary_contains(self, p: Point, tol: float = EPSILON) -> bool:
        """True when ``p`` lies on the polygon boundary."""
        return any(edge.contains_point(p, tol) for edge in self.edges())

    def contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """True when ``p`` is in the closed region (interior or boundary)."""
        if not self.bbox().contains_point(p, tol):
            return False
        if self.boundary_contains(p, tol):
            return True
        return self._interior_contains_by_crossing(p)

    def interior_contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """True when ``p`` is strictly inside (not on the boundary)."""
        if not self.bbox().contains_point(p, tol):
            return False
        if self.boundary_contains(p, tol):
            return False
        return self._interior_contains_by_crossing(p)

    def _interior_contains_by_crossing(self, p: Point) -> bool:
        """Ray-crossing parity test; assumes ``p`` is not on the boundary."""
        inside = False
        verts = self._vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            yi, yj = verts[i].y, verts[j].y
            xi, xj = verts[i].x, verts[j].x
            if (yi > p.y) != (yj > p.y):
                x_cross = (xj - xi) * (p.y - yi) / (yj - yi) + xi
                if p.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def representative_point(self) -> Point:
        """A point guaranteed to lie strictly inside the polygon.

        The centroid is used when it is interior (always true for convex
        polygons); otherwise an interior point is found by ear analysis.
        """
        centroid = self.centroid()
        if self.interior_contains_point(centroid):
            return centroid
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            prev_v = verts[(i - 1) % n]
            this_v = verts[i]
            next_v = verts[(i + 1) % n]
            if orientation(prev_v, this_v, next_v) != COUNTERCLOCKWISE:
                continue
            candidate = Point((prev_v.x + this_v.x + next_v.x) / 3.0,
                              (prev_v.y + this_v.y + next_v.y) / 3.0)
            if self.interior_contains_point(candidate):
                return candidate
        # Fall back to sampling midpoints of chords; a simple polygon
        # always yields one.
        for i in range(n):
            for j in range(i + 2, n):
                candidate = Segment(verts[i], verts[j]).midpoint()
                if self.interior_contains_point(candidate):
                    return candidate
        raise ValueError("could not find an interior point; "
                         "polygon may be degenerate")

    def contains_polygon(self, other: "Polygon", tol: float = EPSILON) -> bool:
        """True when ``other`` lies entirely within this closed region."""
        if not _bbox_covers(self.bbox(), other.bbox(), tol):
            return False
        if any(not self.contains_point(v, tol) for v in other.vertices):
            return False
        # Vertex containment is insufficient for non-convex containers:
        # an edge of ``other`` could exit and re-enter.  A proper edge
        # crossing between boundaries disproves containment.
        for edge_a in self.edges():
            for edge_b in other.edges():
                if edge_a.properly_crosses(edge_b):
                    return False
        return True

    def translated(self, dx: float, dy: float) -> "Polygon":
        """Return a copy moved by ``(dx, dy)``."""
        return Polygon([v.translated(dx, dy) for v in self._vertices])

    def scaled_about_centroid(self, factor: float) -> "Polygon":
        """Return a copy scaled about the centroid by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        c = self.centroid()
        return Polygon([
            Point(c.x + (v.x - c.x) * factor, c.y + (v.y - c.y) * factor)
            for v in self._vertices
        ])


def _signed_area(vertices: Sequence[Point]) -> float:
    """Shoelace signed area; positive for counterclockwise rings."""
    total = 0.0
    n = len(vertices)
    for i in range(n):
        a = vertices[i]
        b = vertices[(i + 1) % n]
        total += a.x * b.y - b.x * a.y
    return total / 2.0


def _drop_consecutive_duplicates(vertices: Sequence[Point]) -> List[Point]:
    """Remove consecutive (near-)duplicate vertices, including wraparound."""
    cleaned: List[Point] = []
    for vertex in vertices:
        if not cleaned or not cleaned[-1].almost_equals(vertex):
            cleaned.append(vertex)
    while len(cleaned) > 1 and cleaned[0].almost_equals(cleaned[-1]):
        cleaned.pop()
    return cleaned


def _bbox_covers(outer: BBox, inner: BBox, tol: float = EPSILON) -> bool:
    """True when ``outer`` contains ``inner`` (boxes treated as closed)."""
    return (outer.min_x - tol <= inner.min_x
            and outer.min_y - tol <= inner.min_y
            and outer.max_x + tol >= inner.max_x
            and outer.max_y + tol >= inner.max_y)


def convex_hull(points: Iterable[Point]) -> List[Point]:
    """Andrew's monotone-chain convex hull.

    Returns the hull vertices in counterclockwise order without the
    closing repetition.  Collinear points on the hull edges are dropped.

    Raises:
        ValueError: with fewer than three non-collinear input points.
    """
    unique = sorted(set((p.x, p.y) for p in points))
    if len(unique) < 3:
        raise ValueError("convex hull needs at least three distinct points")
    pts = [Point(x, y) for x, y in unique]

    def _half_hull(sequence: Sequence[Point]) -> List[Point]:
        hull: List[Point] = []
        for p in sequence:
            while (len(hull) >= 2
                   and orientation(hull[-2], hull[-1], p)
                   != COUNTERCLOCKWISE):
                hull.pop()
            hull.append(p)
        return hull

    lower = _half_hull(pts)
    upper = _half_hull(list(reversed(pts)))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        raise ValueError("input points are collinear")
    return hull


def polygon_clip_convex(subject: Polygon, clip: Polygon) -> Optional[Polygon]:
    """Clip ``subject`` against a **convex** ``clip`` polygon.

    Implements Sutherland–Hodgman.  The result is the intersection region
    or ``None`` when the intersection is empty or degenerate (shared
    boundary only).  This supports coverage computations (Figure 4 of the
    paper: RoIs do not fully cover their room), where clip regions are
    convex rooms/zones.

    Raises:
        ValueError: when ``clip`` is not convex.
    """
    if not clip.is_convex():
        raise ValueError("polygon_clip_convex requires a convex clip polygon")
    output = list(subject.vertices)
    clip_verts = clip.vertices
    n = len(clip_verts)
    for i in range(n):
        edge_a = clip_verts[i]
        edge_b = clip_verts[(i + 1) % n]
        input_ring = output
        output = []
        if not input_ring:
            break
        prev = input_ring[-1]
        prev_inside = _left_of_or_on(edge_a, edge_b, prev)
        for current in input_ring:
            cur_inside = _left_of_or_on(edge_a, edge_b, current)
            if cur_inside:
                if not prev_inside:
                    output.append(_line_intersection(edge_a, edge_b,
                                                     prev, current))
                output.append(current)
            elif prev_inside:
                output.append(_line_intersection(edge_a, edge_b,
                                                 prev, current))
            prev, prev_inside = current, cur_inside
    cleaned = _drop_consecutive_duplicates(output)
    if len(cleaned) < 3 or abs(_signed_area(cleaned)) <= EPSILON:
        return None
    return Polygon(cleaned)


def intersection_area(subject: Polygon, clip: Polygon) -> float:
    """Area of ``subject`` ∩ ``clip`` for a convex ``clip`` polygon."""
    clipped = polygon_clip_convex(subject, clip)
    return 0.0 if clipped is None else clipped.area()


def _left_of_or_on(a: Point, b: Point, p: Point) -> bool:
    """True when ``p`` is on or to the left of the directed line ``a→b``."""
    return ((b.x - a.x) * (p.y - a.y)
            - (b.y - a.y) * (p.x - a.x)) >= -EPSILON


def _line_intersection(a: Point, b: Point, p: Point, q: Point) -> Point:
    """Intersection of line ``a→b`` with segment ``p→q``.

    Callers guarantee the segment straddles the line, so the denominator
    is non-zero up to epsilon.
    """
    a1 = b.y - a.y
    b1 = a.x - b.x
    c1 = a1 * a.x + b1 * a.y
    a2 = q.y - p.y
    b2 = p.x - q.x
    c2 = a2 * p.x + b2 * p.y
    det = a1 * b2 - a2 * b1
    if abs(det) <= EPSILON:
        # Nearly parallel; return the segment midpoint as a stable choice.
        return Segment(p, q).midpoint()
    return Point((b2 * c1 - b1 * c2) / det, (a1 * c2 - a2 * c1) / det)
