"""Qualitative Spatial Reasoning over topological relation networks.

The paper (Section 1) notes that "reasoning about space without precise
quantitative information has been at the core of Qualitative Spatial
Relations research", and Section 3.2 relies on one specific inference:
"a relation (e.g. 'overlap') between two nodes will also hold between
their predecessors" — i.e. relations propagate up a layer hierarchy via
the transitivity of parthood.

This module provides the machinery behind such inferences:

* :class:`RelationAlgebra` — the RCC-8 relation algebra with converse
  and (weak) composition tables;
* :class:`RelationNetwork` — a constraint network over regions whose
  edges hold *sets* of possible relations, refined to path consistency
  with the classic ``PC`` algorithm.

The composition table is the standard RCC-8 table (Cohn et al. 1997,
reference [10] of the paper).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.spatial.topology import TopologicalRelation as R

#: Type alias: a disjunctive set of possible relations.
RelationSet = FrozenSet[R]

#: The universal relation set (total ignorance).
UNIVERSAL: RelationSet = frozenset(R)

_ALL = frozenset(R)


def _rs(*relations: R) -> RelationSet:
    """Build a relation set literal."""
    return frozenset(relations)


# Short aliases to keep the composition table readable.  These follow the
# RCC-8 vocabulary: DC=disjoint, EC=meet, PO=overlap, EQ=equal,
# TPP=coveredBy, NTPP=insideOf, TPPi=covers, NTPPi=contains.
DC = R.DISJOINT
EC = R.MEET
PO = R.OVERLAP
EQ = R.EQUAL
TPP = R.COVERED_BY
NTPP = R.INSIDE
TPPi = R.COVERS
NTPPi = R.CONTAINS

#: The standard RCC-8 weak composition table.
#: ``_COMPOSITION[(r1, r2)]`` is the set of relations r such that
#: r1(a, b) and r2(b, c) admit r(a, c).
_COMPOSITION: Dict[Tuple[R, R], RelationSet] = {
    (DC, DC): _ALL,
    (DC, EC): _rs(DC, EC, PO, TPP, NTPP),
    (DC, PO): _rs(DC, EC, PO, TPP, NTPP),
    (DC, TPP): _rs(DC, EC, PO, TPP, NTPP),
    (DC, NTPP): _rs(DC, EC, PO, TPP, NTPP),
    (DC, TPPi): _rs(DC),
    (DC, NTPPi): _rs(DC),
    (DC, EQ): _rs(DC),

    (EC, DC): _rs(DC, EC, PO, TPPi, NTPPi),
    (EC, EC): _rs(DC, EC, PO, TPP, TPPi, EQ),
    (EC, PO): _rs(DC, EC, PO, TPP, NTPP),
    (EC, TPP): _rs(EC, PO, TPP, NTPP),
    (EC, NTPP): _rs(PO, TPP, NTPP),
    (EC, TPPi): _rs(DC, EC),
    (EC, NTPPi): _rs(DC),
    (EC, EQ): _rs(EC),

    (PO, DC): _rs(DC, EC, PO, TPPi, NTPPi),
    (PO, EC): _rs(DC, EC, PO, TPPi, NTPPi),
    (PO, PO): _ALL,
    (PO, TPP): _rs(PO, TPP, NTPP),
    (PO, NTPP): _rs(PO, TPP, NTPP),
    (PO, TPPi): _rs(DC, EC, PO, TPPi, NTPPi),
    (PO, NTPPi): _rs(DC, EC, PO, TPPi, NTPPi),
    (PO, EQ): _rs(PO),

    (TPP, DC): _rs(DC),
    (TPP, EC): _rs(DC, EC),
    (TPP, PO): _rs(DC, EC, PO, TPP, NTPP),
    (TPP, TPP): _rs(TPP, NTPP),
    (TPP, NTPP): _rs(NTPP),
    (TPP, TPPi): _rs(DC, EC, PO, TPP, TPPi, EQ),
    (TPP, NTPPi): _rs(DC, EC, PO, TPPi, NTPPi),
    (TPP, EQ): _rs(TPP),

    (NTPP, DC): _rs(DC),
    (NTPP, EC): _rs(DC),
    (NTPP, PO): _rs(DC, EC, PO, TPP, NTPP),
    (NTPP, TPP): _rs(NTPP),
    (NTPP, NTPP): _rs(NTPP),
    (NTPP, TPPi): _rs(DC, EC, PO, TPP, NTPP),
    (NTPP, NTPPi): _ALL,
    (NTPP, EQ): _rs(NTPP),

    (TPPi, DC): _rs(DC, EC, PO, TPPi, NTPPi),
    (TPPi, EC): _rs(EC, PO, TPPi, NTPPi),
    (TPPi, PO): _rs(PO, TPPi, NTPPi),
    (TPPi, TPP): _rs(PO, TPP, TPPi, EQ),
    (TPPi, NTPP): _rs(PO, TPP, NTPP),
    (TPPi, TPPi): _rs(TPPi, NTPPi),
    (TPPi, NTPPi): _rs(NTPPi),
    (TPPi, EQ): _rs(TPPi),

    (NTPPi, DC): _rs(DC, EC, PO, TPPi, NTPPi),
    (NTPPi, EC): _rs(PO, TPPi, NTPPi),
    (NTPPi, PO): _rs(PO, TPPi, NTPPi),
    (NTPPi, TPP): _rs(PO, TPPi, NTPPi),
    (NTPPi, NTPP): _rs(PO, TPP, NTPP, TPPi, NTPPi, EQ),
    (NTPPi, TPPi): _rs(NTPPi),
    (NTPPi, NTPPi): _rs(NTPPi),
    (NTPPi, EQ): _rs(NTPPi),

    (EQ, DC): _rs(DC),
    (EQ, EC): _rs(EC),
    (EQ, PO): _rs(PO),
    (EQ, TPP): _rs(TPP),
    (EQ, NTPP): _rs(NTPP),
    (EQ, TPPi): _rs(TPPi),
    (EQ, NTPPi): _rs(NTPPi),
    (EQ, EQ): _rs(EQ),
}


class RelationAlgebra:
    """The RCC-8 relation algebra: converse and weak composition.

    Instances are stateless; :func:`rcc8_algebra` returns the shared
    singleton.
    """

    def relations(self) -> Tuple[R, ...]:
        """All base relations, in declaration order."""
        return tuple(R)

    def converse(self, relation: R) -> R:
        """The converse of a base relation."""
        return relation.converse()

    def converse_set(self, relations: Iterable[R]) -> RelationSet:
        """Element-wise converse of a relation set."""
        return frozenset(r.converse() for r in relations)

    def compose(self, first: R, second: R) -> RelationSet:
        """Weak composition of two base relations.

        ``compose(r1, r2)`` is the set of relations that may hold between
        ``a`` and ``c`` when ``r1(a, b)`` and ``r2(b, c)``.
        """
        return _COMPOSITION[(first, second)]

    def compose_sets(self, firsts: Iterable[R],
                     seconds: Iterable[R]) -> RelationSet:
        """Weak composition lifted to relation sets (union of cells)."""
        result: set = set()
        seconds = tuple(seconds)
        for r1 in firsts:
            for r2 in seconds:
                result |= _COMPOSITION[(r1, r2)]
                if len(result) == len(_ALL):
                    return _ALL
        return frozenset(result)

    def is_consistent_triple(self, r_ab: R, r_bc: R, r_ac: R) -> bool:
        """True when ``r_ac`` is admitted by composing ``r_ab ∘ r_bc``."""
        return r_ac in self.compose(r_ab, r_bc)


_ALGEBRA = RelationAlgebra()


def rcc8_algebra() -> RelationAlgebra:
    """Return the shared RCC-8 algebra instance."""
    return _ALGEBRA


class InconsistentNetworkError(ValueError):
    """Raised when constraint propagation empties a relation set."""


class RelationNetwork:
    """A qualitative constraint network over named regions.

    Edges carry disjunctive sets of possible RCC-8 relations.  Unstated
    edges are implicitly :data:`UNIVERSAL`.  :meth:`propagate` refines
    the network to path consistency, which for many RCC-8 fragments
    decides satisfiability; the SITM uses it to

    * sanity-check hand-authored floorplan relations, and
    * infer relations between cells of non-adjacent layers (e.g. a RoI
      and the wing that transitively contains it).
    """

    def __init__(self, algebra: Optional[RelationAlgebra] = None):
        self._algebra = algebra or rcc8_algebra()
        self._nodes: List[str] = []
        self._index: Dict[str, int] = {}
        self._constraints: Dict[Tuple[str, str], RelationSet] = {}

    @property
    def nodes(self) -> Tuple[str, ...]:
        """The region names, in insertion order."""
        return tuple(self._nodes)

    def add_node(self, name: str) -> None:
        """Register a region; repeated additions are ignored."""
        if name not in self._index:
            self._index[name] = len(self._nodes)
            self._nodes.append(name)

    def constrain(self, a: str, b: str,
                  relations: Iterable[R]) -> None:
        """Restrict the relation between ``a`` and ``b``.

        The converse constraint on ``(b, a)`` is maintained
        automatically.  Repeated calls intersect with the existing
        constraint.

        Raises:
            InconsistentNetworkError: when the intersection is empty.
        """
        self.add_node(a)
        self.add_node(b)
        new_set = frozenset(relations)
        if not new_set:
            raise InconsistentNetworkError(
                "empty constraint between {!r} and {!r}".format(a, b))
        current = self._constraints.get((a, b), UNIVERSAL)
        refined = current & new_set
        if not refined:
            raise InconsistentNetworkError(
                "contradictory constraints between {!r} and {!r}: "
                "{} vs {}".format(a, b,
                                  sorted(r.value for r in current),
                                  sorted(r.value for r in new_set)))
        self._constraints[(a, b)] = refined
        self._constraints[(b, a)] = self._algebra.converse_set(refined)

    def get(self, a: str, b: str) -> RelationSet:
        """The current constraint between ``a`` and ``b``.

        Identical arguments yield ``{equal}``; unknown pairs yield the
        universal set.
        """
        if a == b:
            return _rs(R.EQUAL)
        return self._constraints.get((a, b), UNIVERSAL)

    def propagate(self) -> bool:
        """Refine all constraints to path consistency.

        Runs the classic PC-style fixpoint: for every triple
        ``(i, k, j)``, ``C(i,j)`` is intersected with
        ``C(i,k) ∘ C(k,j)`` until nothing changes.

        Returns:
            True when the network remains satisfiable (no constraint
            emptied), False otherwise.
        """
        names = self._nodes
        changed = True
        while changed:
            changed = False
            for k in names:
                for i in names:
                    if i == k:
                        continue
                    c_ik = self.get(i, k)
                    for j in names:
                        if j in (i, k):
                            continue
                        composed = self._algebra.compose_sets(
                            c_ik, self.get(k, j))
                        current = self.get(i, j)
                        refined = current & composed
                        if refined == current:
                            continue
                        if not refined:
                            return False
                        self._constraints[(i, j)] = refined
                        self._constraints[(j, i)] = (
                            self._algebra.converse_set(refined))
                        changed = True
        return True

    def definite(self, a: str, b: str) -> Optional[R]:
        """The single remaining relation between ``a`` and ``b``, if any."""
        relations = self.get(a, b)
        if len(relations) == 1:
            return next(iter(relations))
        return None

    def is_definite(self) -> bool:
        """True when every constrained pair is down to one relation."""
        return all(len(rel) == 1 for rel in self._constraints.values())
