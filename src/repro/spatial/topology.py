"""Binary topological relations between polygonal regions.

Section 2.1 of the paper grounds indoor space modelling in Qualitative
Spatial Reasoning: "RCC-8 and 4-intersection (as well as other variants)
result in the definition of eight binary topological relations:
'disjoint', 'touch' ('meet'), 'overlap', 'contains', 'insideOf',
'covers', 'coveredBy', 'equal'."

This module computes those eight relations between simple polygons.
They later become:

* intra-layer **adjacency** edges (the ``meet`` relation),
* inter-layer **joint** edges (any of the six relations other than
  ``disjoint`` and ``meet`` — see Table 1 of the paper),
* the ``contains``/``covers`` edges that the paper's layer hierarchies
  are restricted to (Section 3.2).
"""

from __future__ import annotations

import enum
from typing import FrozenSet

from repro.spatial.geometry import (
    EPSILON,
    BBox,
    Polygon,
)


class TopologicalRelation(enum.Enum):
    """The eight RCC-8 / 4-intersection binary topological relations.

    Values follow the paper's vocabulary; the equivalent RCC-8 names are
    given by :attr:`rcc8_name`.
    """

    DISJOINT = "disjoint"
    MEET = "meet"
    OVERLAP = "overlap"
    EQUAL = "equal"
    CONTAINS = "contains"
    INSIDE = "insideOf"
    COVERS = "covers"
    COVERED_BY = "coveredBy"

    @property
    def rcc8_name(self) -> str:
        """The RCC-8 constant this relation corresponds to."""
        return _RCC8_NAMES[self]

    def converse(self) -> "TopologicalRelation":
        """The relation holding with arguments swapped.

        ``disjoint``, ``meet``, ``overlap`` and ``equal`` are symmetric;
        the containment relations pair up (Section 3.2: "'contains' and
        'covers' can not" be thought of as symmetric).
        """
        return _CONVERSES[self]

    @property
    def is_symmetric(self) -> bool:
        """True for relations equal to their own converse."""
        return self.converse() is self

    @property
    def implies_intersection(self) -> bool:
        """True when the relation implies a non-empty set intersection.

        Every relation except ``disjoint`` implies the two regions share
        at least one point.
        """
        return self is not TopologicalRelation.DISJOINT

    @property
    def implies_interior_intersection(self) -> bool:
        """True when the relation implies the *interiors* intersect.

        This is the criterion for an inter-layer joint edge: "a joint
        edge represents any of the eight binary topological relationships
        ... except for 'disjoint' and 'meet'" (Section 2.1).
        """
        return self not in (TopologicalRelation.DISJOINT,
                            TopologicalRelation.MEET)

    @property
    def is_parthood(self) -> bool:
        """True for the four proper-part relations.

        Layer hierarchies only admit the top→bottom directed versions,
        ``contains`` and ``covers`` (Section 3.2).
        """
        return self in (TopologicalRelation.CONTAINS,
                        TopologicalRelation.INSIDE,
                        TopologicalRelation.COVERS,
                        TopologicalRelation.COVERED_BY)

    @property
    def is_downward_parthood(self) -> bool:
        """True for ``contains``/``covers`` — the allowed hierarchy edges."""
        return self in (TopologicalRelation.CONTAINS,
                        TopologicalRelation.COVERS)


_RCC8_NAMES = {
    TopologicalRelation.DISJOINT: "DC",
    TopologicalRelation.MEET: "EC",
    TopologicalRelation.OVERLAP: "PO",
    TopologicalRelation.EQUAL: "EQ",
    TopologicalRelation.CONTAINS: "NTPPi",
    TopologicalRelation.INSIDE: "NTPP",
    TopologicalRelation.COVERS: "TPPi",
    TopologicalRelation.COVERED_BY: "TPP",
}

_CONVERSES = {
    TopologicalRelation.DISJOINT: TopologicalRelation.DISJOINT,
    TopologicalRelation.MEET: TopologicalRelation.MEET,
    TopologicalRelation.OVERLAP: TopologicalRelation.OVERLAP,
    TopologicalRelation.EQUAL: TopologicalRelation.EQUAL,
    TopologicalRelation.CONTAINS: TopologicalRelation.INSIDE,
    TopologicalRelation.INSIDE: TopologicalRelation.CONTAINS,
    TopologicalRelation.COVERS: TopologicalRelation.COVERED_BY,
    TopologicalRelation.COVERED_BY: TopologicalRelation.COVERS,
}

#: The six relations a joint edge may carry (Section 2.1 / Table 1).
JOINT_EDGE_RELATIONS: FrozenSet[TopologicalRelation] = frozenset({
    TopologicalRelation.OVERLAP,
    TopologicalRelation.EQUAL,
    TopologicalRelation.CONTAINS,
    TopologicalRelation.INSIDE,
    TopologicalRelation.COVERS,
    TopologicalRelation.COVERED_BY,
})

#: The relations allowed on layer-hierarchy joint edges (Section 3.2).
HIERARCHY_RELATIONS: FrozenSet[TopologicalRelation] = frozenset({
    TopologicalRelation.CONTAINS,
    TopologicalRelation.COVERS,
})


def relate(a: Polygon, b: Polygon, tol: float = EPSILON) -> TopologicalRelation:
    """Compute the topological relation of ``a`` with respect to ``b``.

    The result reads left-to-right: ``relate(a, b) == CONTAINS`` means
    "``a`` contains ``b``".

    The decision procedure works on simple polygons:

    1. mutual containment               → ``equal``
    2. disjoint bounding boxes          → ``disjoint``
    3. properly crossing boundaries     → ``overlap``
    4. one region containing the other  → ``contains``/``covers`` (or the
       converse), split on whether the boundaries touch
    5. interiors intersect without containment → ``overlap``
    6. boundaries touch                 → ``meet``
    7. otherwise                        → ``disjoint``
    """
    if not a.bbox().intersects(b.bbox(), tol):
        return TopologicalRelation.DISJOINT

    a_contains_b = a.contains_polygon(b, tol)
    b_contains_a = b.contains_polygon(a, tol)
    if a_contains_b and b_contains_a:
        return TopologicalRelation.EQUAL

    boundaries_cross = _boundaries_properly_cross(a, b)
    if boundaries_cross:
        return TopologicalRelation.OVERLAP

    boundaries_touch = _boundaries_touch(a, b, tol)
    if a_contains_b:
        return (TopologicalRelation.COVERS if boundaries_touch
                else TopologicalRelation.CONTAINS)
    if b_contains_a:
        return (TopologicalRelation.COVERED_BY if boundaries_touch
                else TopologicalRelation.INSIDE)

    if _interiors_intersect_without_containment(a, b, tol):
        return TopologicalRelation.OVERLAP

    if boundaries_touch:
        return TopologicalRelation.MEET
    return TopologicalRelation.DISJOINT


def relate_boxes(a: BBox, b: BBox, tol: float = EPSILON) -> TopologicalRelation:
    """Fast-path :func:`relate` for axis-aligned boxes.

    Equivalent to ``relate(a.to_polygon(), b.to_polygon())`` but runs in
    constant time; useful for the rectangular rooms and zones of the
    synthetic Louvre floorplan.
    """
    if (a.max_x < b.min_x - tol or b.max_x < a.min_x - tol
            or a.max_y < b.min_y - tol or b.max_y < a.min_y - tol):
        return TopologicalRelation.DISJOINT

    def _near(u: float, v: float) -> bool:
        return abs(u - v) <= tol

    if (_near(a.min_x, b.min_x) and _near(a.max_x, b.max_x)
            and _near(a.min_y, b.min_y) and _near(a.max_y, b.max_y)):
        return TopologicalRelation.EQUAL

    a_holds_b = (a.min_x <= b.min_x + tol and a.max_x >= b.max_x - tol
                 and a.min_y <= b.min_y + tol and a.max_y >= b.max_y - tol)
    b_holds_a = (b.min_x <= a.min_x + tol and b.max_x >= a.max_x - tol
                 and b.min_y <= a.min_y + tol and b.max_y >= a.max_y - tol)
    touch = (_near(a.min_x, b.min_x) or _near(a.max_x, b.max_x)
             or _near(a.min_y, b.min_y) or _near(a.max_y, b.max_y)
             or _near(a.max_x, b.min_x) or _near(b.max_x, a.min_x)
             or _near(a.max_y, b.min_y) or _near(b.max_y, a.min_y))

    if a_holds_b:
        boundary_contact = (_near(a.min_x, b.min_x) or _near(a.max_x, b.max_x)
                            or _near(a.min_y, b.min_y)
                            or _near(a.max_y, b.max_y))
        return (TopologicalRelation.COVERS if boundary_contact
                else TopologicalRelation.CONTAINS)
    if b_holds_a:
        boundary_contact = (_near(a.min_x, b.min_x) or _near(a.max_x, b.max_x)
                            or _near(a.min_y, b.min_y)
                            or _near(a.max_y, b.max_y))
        return (TopologicalRelation.COVERED_BY if boundary_contact
                else TopologicalRelation.INSIDE)

    # Interiors intersect iff the open intervals overlap on both axes.
    open_overlap_x = (a.max_x > b.min_x + tol and b.max_x > a.min_x + tol)
    open_overlap_y = (a.max_y > b.min_y + tol and b.max_y > a.min_y + tol)
    if open_overlap_x and open_overlap_y:
        return TopologicalRelation.OVERLAP
    if touch:
        return TopologicalRelation.MEET
    return TopologicalRelation.DISJOINT


def _boundaries_properly_cross(a: Polygon, b: Polygon) -> bool:
    """True when some edge of ``a`` properly crosses some edge of ``b``."""
    edges_b = b.edges()
    for edge_a in a.edges():
        box_a = edge_a.bbox()
        for edge_b in edges_b:
            if not box_a.intersects(edge_b.bbox()):
                continue
            if edge_a.properly_crosses(edge_b):
                return True
    return False


def _boundaries_touch(a: Polygon, b: Polygon, tol: float) -> bool:
    """True when the boundaries share at least one point.

    Detects vertex-on-boundary contact and collinear edge overlap (the
    shared-wall situation behind IndoorGML adjacency).
    """
    for vertex in a.vertices:
        if b.boundary_contains(vertex, tol):
            return True
    for vertex in b.vertices:
        if a.boundary_contains(vertex, tol):
            return True
    edges_b = b.edges()
    for edge_a in a.edges():
        for edge_b in edges_b:
            if edge_a.overlaps_collinearly(edge_b, tol):
                return True
            if edge_a.intersects(edge_b):
                return True
    return False


def _interiors_intersect_without_containment(a: Polygon, b: Polygon,
                                             tol: float) -> bool:
    """Detect partial interior overlap not witnessed by a proper crossing.

    Two rectangles sharing a strip (e.g. ``[0,2]×[0,1]`` and
    ``[1,3]×[0,1]``) have no properly-crossing edges — their boundaries
    only meet at vertices lying on each other's edges — yet their
    interiors overlap.  Sampling vertices and edge midpoints for strict
    interior membership catches these cases for the polygon families used
    in indoor floorplans.
    """
    for vertex in a.vertices:
        if b.interior_contains_point(vertex, tol):
            return True
    for vertex in b.vertices:
        if a.interior_contains_point(vertex, tol):
            return True
    for edge in a.edges():
        if b.interior_contains_point(edge.midpoint(), tol):
            return True
    for edge in b.edges():
        if a.interior_contains_point(edge.midpoint(), tol):
            return True
    return False
