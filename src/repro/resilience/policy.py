"""Deadlines and retry backoff — the two budgets every call carries.

A :class:`Deadline` is an absolute point on the monotonic clock.  It
is created once where a request enters the system (from the command's
``deadline_ms`` field) and flows *by reference* through the scatter
layers; whoever forwards the command over a wire re-stamps the
*remaining* budget so the far side sees a decremented deadline rather
than the original one.

A :class:`RetryPolicy` implements capped exponential backoff with
full jitter (``uniform(0, min(cap, base * 2^(attempt-1)))``), the
standard defence against retry synchronization.  The jitter source is
a per-instance :class:`random.Random` so tests can seed it.
"""

from __future__ import annotations

import random
import time
from typing import Optional


class DeadlineExceeded(RuntimeError):
    """The propagated deadline ran out before the call completed.

    Maps to the typed ``deadline_exceeded`` protocol error (HTTP 504).
    """


class Deadline:
    """An absolute budget on :func:`time.monotonic`."""

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = at

    @classmethod
    def after_ms(cls, ms: float) -> "Deadline":
        """A deadline ``ms`` milliseconds from now."""
        return cls(time.monotonic() + ms / 1000.0)

    @classmethod
    def of(cls, command) -> Optional["Deadline"]:
        """The deadline a command's ``deadline_ms`` budget implies,
        anchored at the moment of the call — or ``None``."""
        ms = getattr(command, "deadline_ms", None)
        if ms is None:
            return None
        return cls.after_ms(ms)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.at - time.monotonic()

    def remaining_ms(self) -> int:
        """Whole milliseconds left, floored at zero."""
        return max(0, int(self.remaining() * 1000))

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def clamp(self, timeout: Optional[float],
              floor: float = 0.05) -> Optional[float]:
        """``timeout`` shrunk to the remaining budget (never below
        ``floor`` so sockets still get a chance to fail cleanly)."""
        remaining = max(floor, self.remaining())
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:
        return "Deadline(remaining={:.3f}s)".format(self.remaining())


class RetryPolicy:
    """Capped exponential backoff with full jitter.

    Args:
        attempts: total attempt budget (1 = no retries).
        base: first-retry backoff ceiling in seconds; the ceiling
            doubles each further attempt.  ``0`` disables sleeping.
        cap: upper bound on any single backoff.
        seed: seeds the jitter source (tests); ``None`` is entropy.
    """

    def __init__(self, attempts: int = 3, base: float = 0.05,
                 cap: float = 2.0, seed: Optional[int] = None) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)

    def backoff(self, attempt: int) -> float:
        """Jittered delay after the ``attempt``-th failure (1-based)."""
        if self.base <= 0:
            return 0.0
        ceiling = min(self.cap, self.base * (2 ** max(0, attempt - 1)))
        return self._rng.uniform(0.0, ceiling)

    def sleep(self, attempt: int,
              deadline: Optional[Deadline] = None) -> float:
        """Sleep the jittered backoff, never past the deadline.

        Returns the delay actually slept.
        """
        delay = self.backoff(attempt)
        if deadline is not None:
            delay = min(delay, max(0.0, deadline.remaining()))
        if delay > 0:
            time.sleep(delay)
        return delay
