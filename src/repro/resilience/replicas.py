"""One shard's replica set: read balancing, failover, write fan-out.

A :class:`ShardTarget` owns an ordered list of protocol bindings for
the *same* shard — index 0 is the primary (it owns the shard's
durable journal), the rest are read replicas fed from the same
snapshot + WAL directory.  Reads rotate across replicas whose circuit
breaker admits them and fail over on transport faults; writes go to
the primary first (its failure fails the request) and are then fanned
to every secondary so in-memory replicas track the live corpus — a
secondary that misses a write is marked *stale* and ejected from the
read rotation until something heals it (the supervisor, after a
process restart that replays the shared journal).

Deadline-bounded calls are placed through a guard thread pool so a
hung wire costs a bounded thread, not the caller's lifetime.  While
budget remains and other candidates exist, a call is *hedged* — given
half the remaining budget — so one hung replica still leaves room to
fail over within the deadline.

Failure classification matters for byte-identity: transport faults
(``OSError``, ``ProtocolError``) and the retryable service codes
(``internal``/``saturated``/``unavailable``) trigger failover and
charge the breaker; every other ``ServiceError`` is an application
answer (``unknown_session``, ``bad_cursor``, ...) that all replicas
would agree on, and is relayed verbatim.  ``unknown_session`` alone
is *soft*: a replica that is still restoring legitimately disagrees,
so the read fails over without charging the breaker, and only relays
the error once every replica said the same thing.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Callable, Dict, List, Optional

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.policy import Deadline, DeadlineExceeded, RetryPolicy
from repro.service import protocol as P

#: Service-error codes that mean "this replica failed", not "this is
#: the answer" — safe to retry elsewhere, charged to the breaker.
FAILOVER_CODES = frozenset({"internal", "saturated", "unavailable"})

#: Codes a lagging replica can produce that a healthy one would not;
#: fail over without charging the breaker.
SOFT_CODES = frozenset({"unknown_session"})

#: Minimum per-try socket budget, seconds.
TRY_FLOOR = 0.05


class ReplicaUnavailable(RuntimeError):
    """Every replica of a shard refused or failed the call."""

    def __init__(self, shard: int, attempts: int) -> None:
        super().__init__(
            "shard {}: no replica answered after {} attempt{}".format(
                shard, attempts, "" if attempts == 1 else "s"))
        self.shard = shard
        self.attempts = attempts


class _ReplicaTimeout(RuntimeError):
    """A hedged try timed out but the request deadline still has
    budget — fail over, don't give up."""


def is_shard_loss(error: BaseException) -> bool:
    """Did this failure mean the shard (every replica) is gone, as
    opposed to an application-level answer?"""
    if isinstance(error, (ReplicaUnavailable, DeadlineExceeded)):
        return True
    if isinstance(error, P.ServiceError):
        return error.code in FAILOVER_CODES
    return isinstance(error, (OSError, P.ProtocolError))


class ShardTarget:
    """The coordinator's handle on one shard's replicas."""

    def __init__(self, shard: int, replicas: List,
                 retry: Optional[RetryPolicy] = None,
                 breaker_factory: Optional[
                     Callable[[], CircuitBreaker]] = None,
                 executor: Optional[ThreadPoolExecutor] = None) -> None:
        if not replicas:
            raise ValueError("a shard needs at least one replica")
        self.shard = shard
        self.replicas = list(replicas)
        self.retry = retry or RetryPolicy()
        factory = breaker_factory or CircuitBreaker
        self.breakers = [factory() for _ in self.replicas]
        self.stale = [False] * len(self.replicas)
        self._rr = itertools.count()
        self._lock = threading.Lock()
        self._executor = executor
        self._own_executor = False

    @property
    def primary(self):
        return self.replicas[0]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _guard(self) -> ThreadPoolExecutor:
        """The pool deadline-bounded calls run on (lazily owned when
        the coordinator did not supply a shared one)."""
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(4, 2 * len(self.replicas)),
                    thread_name_prefix="repro-replica-guard")
                self._own_executor = True
            return self._executor

    def _invoke(self, index: int, command,
                deadline: Optional[Deadline], hedge: bool = False):
        """One call to one replica, deadline-bounded when asked.

        ``hedge`` grants only half the remaining budget so a hung
        replica leaves room to fail over; a hedged timeout raises
        :class:`_ReplicaTimeout`, a true expiry
        :class:`DeadlineExceeded`.
        """
        backend = self.replicas[index]
        if deadline is None:
            return backend.call(command)
        remaining = deadline.remaining()
        if remaining <= 0:
            raise DeadlineExceeded(
                "shard {} deadline expired before the call"
                .format(self.shard))
        budget = remaining
        if hedge:
            budget = max(remaining * 0.5, min(TRY_FLOOR, remaining))
        stamped = command.with_deadline(max(1, int(budget * 1000)))
        future = self._guard().submit(backend.call, stamped)
        try:
            return future.result(timeout=budget)
        except FuturesTimeout:
            future.cancel()
            if deadline.expired:
                raise DeadlineExceeded(
                    "shard {} missed its deadline".format(
                        self.shard)) from None
            raise _ReplicaTimeout(
                "shard {} replica {} timed out after {:.0f}ms".format(
                    self.shard, index, budget * 1000)) from None

    def _rotation(self) -> List[int]:
        count = len(self.replicas)
        start = next(self._rr) % count
        return [(start + step) % count for step in range(count)]

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call_read(self, command, deadline: Optional[Deadline] = None):
        """Load-balanced, failing-over, breaker-guarded read."""
        relay: Optional[P.ServiceError] = None
        attempts = 0
        for round_index in range(self.retry.attempts):
            if round_index:
                self.retry.sleep(round_index, deadline)
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    "shard {} deadline expired".format(self.shard))
            allowed = [index for index in self._rotation()
                       if not self.stale[index]
                       and self.breakers[index].allow()]
            if not allowed:
                allowed = [0]  # last resort: force the primary
            for position, index in enumerate(allowed):
                attempts += 1
                hedge = position < len(allowed) - 1 \
                    or round_index < self.retry.attempts - 1
                try:
                    result = self._invoke(index, command, deadline,
                                          hedge=hedge)
                except DeadlineExceeded:
                    self.breakers[index].record_failure()
                    raise
                except _ReplicaTimeout:
                    self.breakers[index].record_failure()
                    continue
                except P.ServiceError as error:
                    if error.code in FAILOVER_CODES:
                        self.breakers[index].record_failure()
                        relay = error
                        continue
                    if error.code in SOFT_CODES:
                        relay = error
                        continue
                    raise
                except (OSError, P.ProtocolError):
                    self.breakers[index].record_failure()
                    continue
                self.breakers[index].record_success()
                return result
        if relay is not None:
            raise relay
        raise ReplicaUnavailable(self.shard, attempts)

    def call_write(self, command, deadline: Optional[Deadline] = None):
        """Primary-first write, fanned to every live secondary.

        The primary's failure fails the request (it owns the
        journal).  A secondary that cannot apply the write is marked
        stale and leaves the read rotation until healed — after a
        restart it replays the shared journal and catches up.
        """
        result = self._invoke(0, command, deadline)
        for index in range(1, len(self.replicas)):
            if self.stale[index]:
                continue
            try:
                self._invoke(index, command, deadline)
            except (OSError, P.ProtocolError, P.ServiceError,
                    _ReplicaTimeout, DeadlineExceeded):
                self.stale[index] = True
                self.breakers[index].record_failure()
        return result

    def call_primary(self, command,
                     deadline: Optional[Deadline] = None):
        """Primary only — checkpoints; standbys never own the log."""
        return self._invoke(0, command, deadline)

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def heal(self, index: int) -> None:
        """Re-admit a replica (it restarted and replayed the log)."""
        self.stale[index] = False
        self.breakers[index].reset()

    def report(self) -> List[Dict[str, object]]:
        entries = []
        for index, breaker in enumerate(self.breakers):
            entry = {"shard": self.shard, "replica": index,
                     "stale": self.stale[index]}
            entry.update(breaker.snapshot())
            entries.append(entry)
        return entries

    def close(self) -> None:
        with self._lock:
            if self._own_executor and self._executor is not None:
                self._executor.shutdown(wait=False)
                self._executor = None

    def __repr__(self) -> str:
        return "ShardTarget(shard={}, replicas={})".format(
            self.shard, len(self.replicas))
