"""Failure-path machinery for the sharded service.

The shard coordinator treats every backend as fallible: reads are
load-balanced across replicas and fail over when one dies, every call
can carry a deadline that is decremented as it propagates, flapping
targets are ejected by circuit breakers, and dead worker processes are
restarted by a supervisor.  A deterministic fault-injection wire layer
(:mod:`repro.resilience.faults`) exists to prove all of it under test.

Modules:

- :mod:`~repro.resilience.policy` — deadlines and retry backoff.
- :mod:`~repro.resilience.breaker` — the per-target circuit breaker.
- :mod:`~repro.resilience.replicas` — a shard's replica set: read
  load balancing, failover, write fan-out.
- :mod:`~repro.resilience.faults` — seeded fault injection around any
  protocol binding.
- :mod:`~repro.resilience.supervisor` — auto-restart of dead shard
  worker processes with backoff.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultSchedule, FaultyBinding, FaultyClient
from repro.resilience.policy import Deadline, DeadlineExceeded, RetryPolicy
from repro.resilience.replicas import ReplicaUnavailable, ShardTarget
from repro.resilience.supervisor import WorkerSupervisor

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultSchedule",
    "FaultyBinding",
    "FaultyClient",
    "ReplicaUnavailable",
    "RetryPolicy",
    "ShardTarget",
    "WorkerSupervisor",
]
