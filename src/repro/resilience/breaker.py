"""A per-target circuit breaker: closed → open → half-open → closed.

One breaker guards one replica endpoint.  Consecutive failures trip
it *open*; while open every call is refused without touching the
wire, so a dead or hung replica stops consuming scatter threads.
After ``cooldown`` seconds the next :meth:`allow` admits exactly one
probe (*half-open*); the probe's outcome either closes the breaker or
re-opens it for another cooldown.  A probe whose caller never reports
back (a hung wire with no deadline) is abandoned after a further
cooldown so the breaker cannot wedge half-open forever.

Thread-safe; all transitions happen under one lock and the clock is
injectable for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures, probe
    again after ``cooldown`` seconds."""

    def __init__(self, failure_threshold: int = 3,
                 cooldown: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_started = 0.0
        self._trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the caller place a call right now?

        Open breakers refuse until the cooldown elapses; then one
        caller is admitted as the half-open probe and must report via
        :meth:`record_success` / :meth:`record_failure`.
        """
        now = self._clock()
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if now - self._opened_at < self.cooldown:
                    return False
                self._state = HALF_OPEN
                self._probe_started = now
                return True
            # Half-open: one probe outstanding.  Admit a replacement
            # if the previous prober vanished without reporting.
            if now - self._probe_started >= self.cooldown:
                self._probe_started = now
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        now = self._clock()
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN \
                    or self._failures >= self.failure_threshold:
                if self._state != OPEN:
                    self._trips += 1
                self._state = OPEN
                self._opened_at = now

    def reset(self) -> None:
        """Force-close (a supervisor healed the target)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "trips": self._trips,
            }

    def __repr__(self) -> str:
        return "CircuitBreaker(state={!r}, failures={})".format(
            self._state, self._failures)
