"""Auto-restart of dead shard worker processes, with backoff.

A :class:`WorkerSupervisor` watches a pool of workers (anything with
``alive()``/``restart()`` — :class:`~repro.shard.workers.ShardWorker`
in practice) from a daemon thread.  A worker found dead is restarted
on its pinned port; a restart that fails is retried with capped
exponential backoff so a crash-looping worker cannot spin the
supervisor.  After each successful restart the optional
``on_restart(worker)`` callback runs — the worker pool uses it to
tell the coordinator to heal the matching replica (clear its stale
flag, reset its breaker) now that the process has replayed the
shared journal.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional


class WorkerSupervisor:
    """Poll workers; restart the dead ones.

    Args:
        workers: the worker list to watch (shared, not copied).
        poll_interval: seconds between liveness sweeps.
        restart_backoff: first retry delay after a *failed* restart;
            doubles per consecutive failure, capped at
            ``restart_backoff_cap``.
        on_restart: called with the worker after a successful restart.
    """

    def __init__(self, workers: List, poll_interval: float = 0.5,
                 restart_backoff: float = 0.5,
                 restart_backoff_cap: float = 10.0,
                 on_restart: Optional[Callable] = None) -> None:
        self.workers = workers
        self.poll_interval = poll_interval
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        self.on_restart = on_restart
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._restarts: Dict[int, int] = {}
        self._failures: Dict[int, int] = {}
        self._next_attempt: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def start(self) -> "WorkerSupervisor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-supervisor", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """One liveness pass; restarts what it finds dead.  Returns
        the number of workers restarted (exposed for tests)."""
        restarted = 0
        now = time.monotonic()
        for slot, worker in enumerate(self.workers):
            try:
                if worker.alive():
                    continue
            except Exception:
                continue
            if now < self._next_attempt.get(slot, 0.0):
                continue
            try:
                worker.restart()
            except Exception:
                failures = self._failures.get(slot, 0) + 1
                self._failures[slot] = failures
                delay = min(self.restart_backoff_cap,
                            self.restart_backoff * (2 ** (failures - 1)))
                self._next_attempt[slot] = time.monotonic() + delay
                continue
            self._failures[slot] = 0
            self._next_attempt[slot] = 0.0
            with self._lock:
                self._restarts[slot] = self._restarts.get(slot, 0) + 1
            restarted += 1
            if self.on_restart is not None:
                try:
                    self.on_restart(worker)
                except Exception:
                    pass  # healing is advisory; the breaker recovers too
        return restarted

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self.sweep()

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        with self._lock:
            return {
                "running": self._thread is not None,
                "restarts": dict(self._restarts),
                "pending_backoff": {
                    slot: max(0.0, when - time.monotonic())
                    for slot, when in self._next_attempt.items()
                    if when > time.monotonic()},
            }
