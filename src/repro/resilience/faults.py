"""Deterministic fault injection around any protocol binding.

A :class:`FaultyBinding` wraps anything with ``call(command)`` — a
:class:`~repro.service.executor.LocalBinding`, a
:class:`~repro.service.client.ServiceClient` — and injects the
failure modes a real wire exhibits: connection drops, delays, error
responses, hangs, and byte corruption.  Faults are drawn from a
seeded :class:`FaultSchedule`, so a chaos run is reproducible from
its seed alone.

Hangs are *releasable*: a hung call blocks on an event, not a bare
sleep, so tests can free every stuck thread at teardown (scatter
pools are joined at interpreter exit — an unreleased hang would stall
the test process for the full hang duration).
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, List, Optional

from repro.service import protocol as P

#: Fault kinds, in the order the schedule's thresholds stack.
FAULT_KINDS = ("drop", "error", "hang", "corrupt", "delay")


class FaultSchedule:
    """A seeded plan of which calls fail, and how.

    Either probabilistic (``*_rate`` arguments, drawn from one seeded
    RNG shared by every draw) or scripted (:meth:`scripted` — an
    explicit per-call fault sequence, ``None`` entries pass through).
    """

    def __init__(self, seed: int = 0, drop_rate: float = 0.0,
                 error_rate: float = 0.0, hang_rate: float = 0.0,
                 corrupt_rate: float = 0.0, delay_rate: float = 0.0,
                 delay_seconds: float = 0.01,
                 hang_seconds: float = 30.0) -> None:
        self.rates = {
            "drop": drop_rate,
            "error": error_rate,
            "hang": hang_rate,
            "corrupt": corrupt_rate,
            "delay": delay_rate,
        }
        self.delay_seconds = delay_seconds
        self.hang_seconds = hang_seconds
        self._rng = random.Random(seed)
        self._script: Optional[List[Optional[str]]] = None
        self._cursor = 0
        self._lock = threading.Lock()

    @classmethod
    def scripted(cls, plan: Iterable[Optional[str]],
                 delay_seconds: float = 0.01,
                 hang_seconds: float = 30.0) -> "FaultSchedule":
        """An explicit fault-per-call plan; exhausted → pass-through."""
        schedule = cls(delay_seconds=delay_seconds,
                       hang_seconds=hang_seconds)
        plan = list(plan)
        for kind in plan:
            if kind is not None and kind not in FAULT_KINDS:
                raise ValueError("unknown fault kind {!r}".format(kind))
        schedule._script = plan
        return schedule

    def draw(self) -> Optional[str]:
        """The fault for the next call, or ``None`` (healthy)."""
        with self._lock:
            if self._script is not None:
                if self._cursor >= len(self._script):
                    return None
                kind = self._script[self._cursor]
                self._cursor += 1
                return kind
            roll = self._rng.random()
            floor = 0.0
            for kind in FAULT_KINDS:
                floor += self.rates[kind]
                if roll < floor:
                    return kind
            return None


class FaultyBinding:
    """A protocol binding that misbehaves on schedule.

    Injected faults surface exactly as the real failures would:

    - ``drop`` → :class:`ConnectionResetError`
    - ``error`` → ``ServiceError("internal", ...)``
    - ``hang`` → blocks until :meth:`release` or ``hang_seconds``,
      then raises :class:`ConnectionResetError`
    - ``corrupt`` → serializes the real response, flips a byte, and
      raises the resulting :class:`~repro.service.protocol.ProtocolError`
    - ``delay`` → sleeps ``delay_seconds``, then proceeds normally

    :meth:`kill` simulates a dead process (every call refused until
    :meth:`revive`).  Per-kind injection counts are kept in
    :attr:`injected` for assertions.
    """

    def __init__(self, inner, schedule: FaultSchedule,
                 name: str = "faulty") -> None:
        self.inner = inner
        self.schedule = schedule
        self.name = name
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.injected["dead"] = 0
        self._dead = False
        self._release = threading.Event()
        self._lock = threading.Lock()

    def kill(self) -> None:
        """Refuse every call from now on, like a SIGKILLed worker."""
        self._dead = True

    def revive(self) -> None:
        self._dead = False

    @property
    def dead(self) -> bool:
        return self._dead

    def release(self) -> None:
        """Free every call currently blocked in an injected hang.

        Call this at test teardown — scatter threads parked in a hang
        would otherwise stall interpreter exit.
        """
        self._release.set()

    def _count(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] += 1

    def call(self, command):
        if self._dead:
            self._count("dead")
            raise ConnectionRefusedError(
                "injected: {} is down".format(self.name))
        fault = self.schedule.draw()
        if fault == "delay":
            self._count("delay")
            self._release.wait(self.schedule.delay_seconds)
        elif fault == "drop":
            self._count("drop")
            raise ConnectionResetError(
                "injected: {} dropped the connection".format(self.name))
        elif fault == "error":
            self._count("error")
            raise P.ServiceError(
                "internal", "injected: {} error response".format(self.name))
        elif fault == "hang":
            self._count("hang")
            self._release.wait(self.schedule.hang_seconds)
            raise ConnectionResetError(
                "injected: {} hung and was reset".format(self.name))
        elif fault == "corrupt":
            self._count("corrupt")
            raw = bytearray(self.inner.call(command).to_json())
            raw[len(raw) // 2] ^= 0xFF
            P.response_from_json(bytes(raw))  # raises ProtocolError
            raise P.ProtocolError(
                "injected: {} returned corrupt bytes".format(self.name))
        return self.inner.call(command)

    def __repr__(self) -> str:
        return "FaultyBinding({!r}, dead={})".format(self.name, self._dead)


class FaultyClient(FaultyBinding):
    """A :class:`FaultyBinding` over a ``ServiceClient`` that keeps
    the client surface (``health``/``close``/``url``) intact."""

    @property
    def url(self) -> str:
        return self.inner.url

    def health(self):
        if self._dead:
            raise ConnectionRefusedError(
                "injected: {} is down".format(self.name))
        return self.inner.health()

    def close(self) -> None:
        self.inner.close()
