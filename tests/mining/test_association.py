"""Tests for Apriori and association rules."""

import pytest

from repro.mining.association import apriori, mine_rules

TRANSACTIONS = [
    {"egypt", "greek", "exit"},
    {"egypt", "greek"},
    {"egypt", "shop", "exit"},
    {"greek", "exit"},
    {"egypt", "greek", "exit"},
]


class TestApriori:
    def test_singleton_supports(self):
        frequent = apriori(TRANSACTIONS, min_support=0.2)
        assert frequent[frozenset(["egypt"])] == pytest.approx(0.8)
        assert frequent[frozenset(["greek"])] == pytest.approx(0.8)

    def test_pair_support(self):
        frequent = apriori(TRANSACTIONS, min_support=0.2)
        assert frequent[frozenset(["egypt", "greek"])] \
            == pytest.approx(0.6)

    def test_min_support_prunes(self):
        frequent = apriori(TRANSACTIONS, min_support=0.7)
        assert frozenset(["shop"]) not in frequent
        assert frozenset(["egypt"]) in frequent

    def test_apriori_property(self):
        """Every subset of a frequent itemset is frequent."""
        frequent = apriori(TRANSACTIONS, min_support=0.2)
        for itemset in frequent:
            for item in itemset:
                assert frozenset([item]) in frequent

    def test_max_size(self):
        frequent = apriori(TRANSACTIONS, min_support=0.1, max_size=2)
        assert all(len(s) <= 2 for s in frequent)

    def test_empty_transactions_rejected(self):
        with pytest.raises(ValueError):
            apriori([], 0.5)

    def test_invalid_support_rejected(self):
        with pytest.raises(ValueError):
            apriori(TRANSACTIONS, 0.0)
        with pytest.raises(ValueError):
            apriori(TRANSACTIONS, 1.5)


class TestRules:
    def test_rule_metrics(self):
        rules = mine_rules(TRANSACTIONS, min_support=0.3,
                           min_confidence=0.5)
        by_parts = {(tuple(sorted(r.antecedent)),
                     tuple(sorted(r.consequent))): r for r in rules}
        rule = by_parts[(("egypt",), ("greek",))]
        assert rule.support == pytest.approx(0.6)
        assert rule.confidence == pytest.approx(0.75)
        assert rule.lift == pytest.approx(0.75 / 0.8)

    def test_min_confidence_filters(self):
        strict = mine_rules(TRANSACTIONS, min_support=0.2,
                            min_confidence=0.95)
        loose = mine_rules(TRANSACTIONS, min_support=0.2,
                           min_confidence=0.1)
        assert len(strict) < len(loose)

    def test_antecedent_consequent_disjoint(self):
        for rule in mine_rules(TRANSACTIONS, min_support=0.2,
                               min_confidence=0.1):
            assert not rule.antecedent & rule.consequent

    def test_sorted_by_lift(self):
        rules = mine_rules(TRANSACTIONS, min_support=0.2,
                           min_confidence=0.1)
        lifts = [r.lift for r in rules]
        assert lifts == sorted(lifts, reverse=True)

    def test_describe(self):
        rules = mine_rules(TRANSACTIONS, min_support=0.3,
                           min_confidence=0.5)
        assert "⇒" in rules[0].describe()
