"""Tests for visitor profiling and floor-switching patterns."""

import math

import pytest

from repro.mining.patterns import (
    floor_switch_profile,
    multi_floor_share,
    switch_sequences,
    vertical_explorers,
)
from repro.mining.profiling import (
    VisitFeatures,
    cluster_summary,
    extract_features,
    k_medoids,
    standardize,
)
from tests.conftest import make_trajectory


class TestFeatures:
    def test_extract_basic(self):
        trajectory = make_trajectory(states=("a", "b", "a"),
                                     dwell=100.0, gap=10.0)
        features = extract_features(trajectory)
        assert features.cell_count == 2
        assert features.entry_count == 3
        assert features.mean_dwell == 100.0
        assert features.max_dwell == 100.0
        assert features.floor_switches == 0  # no hierarchy given

    def test_floor_switches(self, louvre_space, small_trajectories):
        multi = [t for t in small_trajectories
                 if len(t.distinct_state_sequence()) >= 4]
        assert multi, "corpus should contain multi-zone visits"
        features = extract_features(multi[0],
                                    louvre_space.zone_hierarchy)
        assert features.floor_switches >= 0

    def test_vector_log_scaled(self):
        features = VisitFeatures("m", 100.0, 3, 4, 50.0, 80.0, 2)
        vector = features.as_vector()
        assert vector[0] == pytest.approx(math.log1p(100.0))
        assert vector[1] == 3.0


class TestKMedoids:
    def test_separates_obvious_clusters(self):
        points = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.1),
                  (10.0, 10.0), (10.1, 10.0), (10.0, 10.1)]
        assignment, medoids = k_medoids(points, 2, seed=1)
        assert assignment[0] == assignment[1] == assignment[2]
        assert assignment[3] == assignment[4] == assignment[5]
        assert assignment[0] != assignment[3]
        assert len(medoids) == 2

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            k_medoids([(0, 0)], 2)
        with pytest.raises(ValueError):
            k_medoids([(0, 0)], 0)

    def test_k_equals_n(self):
        assignment, _ = k_medoids([(0, 0), (5, 5)], 2, seed=1)
        assert sorted(assignment) == [0, 1]

    def test_custom_distance(self):
        words = ["aaa", "aab", "zzz", "zzy"]

        def hamming(a, b):
            return sum(1 for x, y in zip(a, b) if x != y)

        assignment, _ = k_medoids(words, 2, distance=hamming, seed=2)
        assert assignment[0] == assignment[1]
        assert assignment[2] == assignment[3]
        assert assignment[0] != assignment[2]

    def test_standardize(self):
        vectors = [(0.0, 10.0), (2.0, 20.0), (4.0, 30.0)]
        standardized = standardize(vectors)
        for dim in range(2):
            mean = sum(v[dim] for v in standardized) / 3
            assert mean == pytest.approx(0.0, abs=1e-9)

    def test_standardize_constant_dimension(self):
        standardized = standardize([(1.0, 5.0), (1.0, 6.0)])
        assert standardized[0][0] == standardized[1][0] == 0.0

    def test_cluster_summary(self):
        features = [VisitFeatures("m", 100.0, 2, 2, 50.0, 60.0, 1),
                    VisitFeatures("n", 200.0, 4, 5, 70.0, 90.0, 3)]
        summaries = cluster_summary(features, [0, 1], 2)
        assert summaries[0]["size"] == 1
        assert summaries[1]["mean_duration"] == 200.0


class TestFloorSwitching:
    def test_profile_on_corpus(self, louvre_space, small_trajectories):
        profile = floor_switch_profile(small_trajectories,
                                       louvre_space.zone_hierarchy,
                                       "floors")
        assert profile.visits > 0
        assert profile.mean_switches >= 0
        assert sum(profile.switch_histogram.values()) == profile.visits
        assert profile.top_sequences
        assert 0.0 <= multi_floor_share(profile) <= 1.0

    def test_switch_sequences_lifted(self, louvre_space,
                                     small_trajectories):
        sequences = switch_sequences(small_trajectories,
                                     louvre_space.zone_hierarchy,
                                     "floors")
        floors = {state for seq in sequences for state in seq}
        assert all(state.startswith("floor:") for state in floors)

    def test_vertical_explorers(self, louvre_space, small_trajectories):
        explorers = vertical_explorers(small_trajectories,
                                       louvre_space.zone_hierarchy,
                                       min_floors=3, target_layer="floors")
        for trajectory in explorers:
            floors = set()
            for state in trajectory.distinct_state_sequence():
                lifted = louvre_space.zone_hierarchy.lift(state, "floors")
                if lifted:
                    floors.add(lifted)
            assert len(floors) >= 3

    def test_empty_corpus(self, louvre_space):
        profile = floor_switch_profile([], louvre_space.zone_hierarchy)
        assert profile.visits == 0
        assert multi_floor_share(profile) == 0.0
