"""Tests for trajectory similarity metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.indoor.hierarchy import LayerHierarchy, add_hierarchy_edge
from repro.indoor.multilayer import LayeredIndoorGraph
from repro.indoor.nrg import NodeRelationGraph
from repro.mining.similarity import (
    edit_distance,
    hierarchy_similarity,
    longest_common_subsequence,
    normalized_edit_similarity,
    similarity_matrix,
    state_similarity,
    state_similarity_table,
)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance(["a", "b"], ["a", "b"]) == 0

    def test_substitution(self):
        assert edit_distance(["a", "b"], ["a", "c"]) == 1

    def test_insertion_deletion(self):
        assert edit_distance(["a"], ["a", "b"]) == 1
        assert edit_distance(["a", "b"], ["a"]) == 1

    def test_empty(self):
        assert edit_distance([], ["a", "b"]) == 2
        assert edit_distance([], []) == 0

    def test_normalized_bounds(self):
        assert normalized_edit_similarity(["a"], ["a"]) == 1.0
        assert normalized_edit_similarity(["a"], ["b"]) == 0.0
        assert normalized_edit_similarity([], []) == 1.0


class TestLCS:
    def test_basic(self):
        assert longest_common_subsequence(["a", "b", "c"],
                                          ["a", "c"]) == 2

    def test_no_common(self):
        assert longest_common_subsequence(["a"], ["b"]) == 0

    def test_empty(self):
        assert longest_common_subsequence([], ["a"]) == 0


@pytest.fixture(scope="module")
def hierarchy():
    graph = LayeredIndoorGraph("sim")
    wings = NodeRelationGraph("wing")
    wings.add_node("W1")
    wings.add_node("W2")
    rooms = NodeRelationGraph("room")
    for room in ("r1", "r2", "r3"):
        rooms.add_node(room)
    graph.add_layer(wings)
    graph.add_layer(rooms)
    add_hierarchy_edge(graph, "W1", "r1")
    add_hierarchy_edge(graph, "W1", "r2")
    add_hierarchy_edge(graph, "W2", "r3")
    return LayerHierarchy(graph, ["wing", "room"])


class TestHierarchySimilarity:
    def test_identical_states(self, hierarchy):
        assert state_similarity(hierarchy, "r1", "r1") == 1.0

    def test_siblings_closer_than_strangers(self, hierarchy):
        siblings = state_similarity(hierarchy, "r1", "r2")
        strangers = state_similarity(hierarchy, "r1", "r3")
        assert siblings > strangers
        assert strangers == 0.0  # no common ancestor in this hierarchy

    def test_sequence_similarity_rewards_siblings(self, hierarchy):
        base = ["r1", "r1"]
        sibling_path = ["r2", "r2"]
        stranger_path = ["r3", "r3"]
        assert hierarchy_similarity(hierarchy, base, sibling_path) \
            > hierarchy_similarity(hierarchy, base, stranger_path)

    def test_identical_sequences(self, hierarchy):
        assert hierarchy_similarity(hierarchy, ["r1", "r2"],
                                    ["r1", "r2"]) == pytest.approx(1.0)

    def test_empty_sequences(self, hierarchy):
        assert hierarchy_similarity(hierarchy, [], []) == 1.0
        assert hierarchy_similarity(hierarchy, ["r1"], []) == 0.0

    def test_matrix_symmetric(self, hierarchy):
        sequences = [["r1"], ["r2"], ["r3"]]
        matrix = similarity_matrix(hierarchy, sequences)
        for i in range(3):
            assert matrix[i][i] == 1.0
            for j in range(3):
                assert matrix[i][j] == matrix[j][i]

    def test_matrix_without_hierarchy(self):
        matrix = similarity_matrix(None, [["a"], ["a"], ["b"]])
        assert matrix[0][1] == 1.0
        assert matrix[0][2] == 0.0


class TestSimilarityTable:
    """The precomputed alphabet-pair table is a pure memo: identical
    values to per-cell state_similarity calls."""

    def test_table_matches_direct_calls(self, hierarchy):
        states = ["r1", "r2", "r3"]
        table = state_similarity_table(hierarchy, states)
        for a in states:
            for b in states:
                assert table[(a, b)] == state_similarity(hierarchy,
                                                         a, b)

    def test_table_covers_duplicates_once(self, hierarchy):
        table = state_similarity_table(hierarchy,
                                       ["r1", "r1", "r2", "r1"])
        assert set(table) == {("r1", "r1"), ("r1", "r2"),
                              ("r2", "r1"), ("r2", "r2")}

    def test_sequence_similarity_with_and_without_table_agree(
            self, hierarchy):
        a = ["r1", "r2", "r3", "r1"]
        b = ["r2", "r3", "r3"]
        table = state_similarity_table(hierarchy, a + b)
        assert hierarchy_similarity(hierarchy, a, b, table) \
            == hierarchy_similarity(hierarchy, a, b)

    def test_matrix_equals_per_pair_computation(self, hierarchy):
        sequences = [["r1", "r2"], ["r2", "r3"], ["r3"],
                     ["r1", "r1", "r3"]]
        matrix = similarity_matrix(hierarchy, sequences)
        for i, seq_a in enumerate(sequences):
            for j, seq_b in enumerate(sequences):
                if i == j:
                    continue
                assert matrix[i][j] == hierarchy_similarity(
                    hierarchy, seq_a, seq_b)


items = st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=8)


@given(items, items)
def test_property_edit_distance_symmetric(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)


@given(items, items, items)
def test_property_edit_distance_triangle(a, b, c):
    assert edit_distance(a, c) \
        <= edit_distance(a, b) + edit_distance(b, c)


@given(items, items)
def test_property_lcs_bounded(a, b):
    lcs = longest_common_subsequence(a, b)
    assert 0 <= lcs <= min(len(a), len(b))


@given(items, items)
def test_property_edit_lcs_relation(a, b):
    """Levenshtein ≥ max(len) − LCS (substitutions help Levenshtein)."""
    lcs = longest_common_subsequence(a, b)
    assert edit_distance(a, b) >= max(len(a), len(b)) - lcs
