"""Tests for symbolic sequence statistics."""

import pytest

from repro.mining.sequences import (
    corpus_summary,
    detection_counts,
    dwell_statistics,
    ngram_counts,
    state_sequences,
    top_transitions,
    transition_matrix,
    visitor_counts,
)
from tests.conftest import make_trajectory


@pytest.fixture
def corpus():
    return [
        make_trajectory(mo_id="m1", states=("a", "b", "c")),
        make_trajectory(mo_id="m2", states=("a", "b")),
        make_trajectory(mo_id="m1", states=("b", "c")),
    ]


class TestCounts:
    def test_detection_counts(self, corpus):
        counts = detection_counts(corpus)
        assert counts == {"a": 2, "b": 3, "c": 2}

    def test_detection_counts_zero_filled(self, corpus):
        counts = detection_counts(corpus, states=["a", "z"])
        assert counts == {"a": 2, "z": 0}

    def test_visitor_counts(self, corpus):
        counts = visitor_counts(corpus)
        assert counts["b"] == 2  # m1 and m2
        assert counts["c"] == 1  # only m1

    def test_transition_matrix(self, corpus):
        matrix = transition_matrix(corpus)
        assert matrix[("a", "b")] == 2
        assert matrix[("b", "c")] == 2

    def test_top_transitions_deterministic(self, corpus):
        top = top_transitions(transition_matrix(corpus), count=1)
        assert top[0][0] == ("a", "b")  # lexicographic tiebreak

    def test_state_sequences(self, corpus):
        assert state_sequences(corpus)[0] == ["a", "b", "c"]


class TestNgrams:
    def test_bigrams(self):
        counts = ngram_counts([["a", "b", "c"], ["a", "b"]], n=2)
        assert counts[("a", "b")] == 2
        assert counts[("b", "c")] == 1

    def test_unigrams(self):
        counts = ngram_counts([["a", "a", "b"]], n=1)
        assert counts[("a",)] == 2

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngram_counts([["a"]], n=0)

    def test_ngram_longer_than_sequence(self):
        assert ngram_counts([["a"]], n=3) == {}


class TestStatistics:
    def test_dwell_statistics(self, corpus):
        stats = dwell_statistics(corpus)
        assert stats["a"]["count"] == 2
        assert stats["a"]["mean"] == 100.0
        assert stats["a"]["max"] == 100.0

    def test_corpus_summary(self, corpus):
        summary = corpus_summary(corpus)
        assert summary["visits"] == 3
        assert summary["visitors"] == 2
        assert summary["detections"] == 7
        assert summary["transitions"] == 4

    def test_corpus_summary_empty(self):
        assert corpus_summary([])["visits"] == 0
