"""Tests for PrefixSpan sequential pattern mining."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mining.prefixspan import (
    contains_pattern,
    pattern_support,
    prefixspan,
)

SEQUENCES = [
    ["a", "b", "c"],
    ["a", "c"],
    ["a", "b", "b", "c"],
    ["b", "c"],
]


class TestPrefixSpan:
    def test_singleton_supports(self):
        patterns = {p.sequence: p.support
                    for p in prefixspan(SEQUENCES, min_support=1,
                                        max_length=1)}
        assert patterns[("a",)] == 3
        assert patterns[("b",)] == 3
        assert patterns[("c",)] == 4

    def test_subsequence_semantics(self):
        """Patterns allow gaps: a...c matches ['a','b','c']."""
        patterns = {p.sequence: p.support
                    for p in prefixspan(SEQUENCES, min_support=2)}
        assert patterns[("a", "c")] == 3

    def test_min_support_filters(self):
        patterns = prefixspan(SEQUENCES, min_support=4)
        assert {p.sequence for p in patterns} == {("c",)}

    def test_max_length_respected(self):
        patterns = prefixspan(SEQUENCES, min_support=1, max_length=2)
        assert all(p.length <= 2 for p in patterns)

    def test_sorted_by_support(self):
        patterns = prefixspan(SEQUENCES, min_support=1)
        supports = [p.support for p in patterns]
        assert supports == sorted(supports, reverse=True)

    def test_repeated_items_counted_once_per_sequence(self):
        patterns = {p.sequence: p.support
                    for p in prefixspan([["a", "a", "a"]],
                                        min_support=1)}
        assert patterns[("a",)] == 1
        assert patterns[("a", "a")] == 1  # still a valid subsequence

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            prefixspan(SEQUENCES, min_support=0)
        with pytest.raises(ValueError):
            prefixspan(SEQUENCES, min_support=1, max_length=0)

    def test_empty_input(self):
        assert prefixspan([], min_support=1) == []

    def test_describe(self):
        pattern = prefixspan(SEQUENCES, min_support=2)[0]
        assert "support" in pattern.describe()


class TestHelpers:
    def test_contains_pattern(self):
        assert contains_pattern(["a", "x", "b"], ["a", "b"])
        assert not contains_pattern(["b", "a"], ["a", "b"])

    def test_pattern_support(self):
        assert pattern_support(SEQUENCES, ["a", "c"]) == 3


@settings(max_examples=50)
@given(st.lists(
    st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1,
             max_size=6),
    min_size=1, max_size=12),
    st.integers(1, 4))
def test_property_supports_are_correct(sequences, min_support):
    """Every mined pattern's support matches a brute-force recount."""
    for pattern in prefixspan(sequences, min_support, max_length=3):
        recounted = pattern_support(sequences, pattern.sequence)
        assert recounted == pattern.support
        assert recounted >= min_support
