"""Tests for stop/move segmentation."""

import pytest

from repro.core.annotations import AnnotationKind
from repro.mining.stops import (
    StopMoveConfig,
    moves_of,
    segment_stops_moves,
    stop_cells,
    stops_of,
)
from tests.conftest import make_trajectory


@pytest.fixture
def visit():
    """Long stay in a, quick pass through b and c, long stay in d."""
    from repro.core.annotations import AnnotationSet
    from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry

    entries = [
        TraceEntry(None, "a", 0.0, 700.0),
        TraceEntry("e1", "b", 720.0, 760.0),
        TraceEntry("e2", "c", 770.0, 800.0),
        TraceEntry("e3", "d", 820.0, 1600.0),
    ]
    return SemanticTrajectory("v", Trace(entries),
                              AnnotationSet.goals("visit"))


class TestSegmentation:
    def test_stops_detected(self, visit):
        segmentation = segment_stops_moves(
            visit, StopMoveConfig(min_stop_seconds=300.0))
        assert stop_cells(segmentation) == ["a", "d"]
        assert len(moves_of(segmentation)) == 1
        move = moves_of(segmentation)[0]
        assert move.states() == ["b", "c"]

    def test_covers_trajectory(self, visit):
        segmentation = segment_stops_moves(visit)
        assert segmentation.covers_main(tolerance=60.0)
        assert not segmentation.has_overlaps()

    def test_activity_annotations(self, visit):
        segmentation = segment_stops_moves(visit)
        for stop in stops_of(segmentation):
            assert stop.annotations.has(AnnotationKind.ACTIVITY, "stay")
        for move in moves_of(segmentation):
            assert move.annotations.has(AnnotationKind.ACTIVITY,
                                        "transit")

    def test_threshold_changes_result(self, visit):
        lenient = segment_stops_moves(
            visit, StopMoveConfig(min_stop_seconds=20.0))
        assert stop_cells(lenient) == ["a", "b", "c", "d"]
        strict = segment_stops_moves(
            visit, StopMoveConfig(min_stop_seconds=10_000.0))
        assert stop_cells(strict) == []

    def test_fragmented_stay_accumulates(self):
        """Event-split entries in one cell form a single run/stop."""
        from repro.core.annotations import AnnotationSet
        from repro.core.trajectory import (
            SemanticTrajectory,
            Trace,
            TraceEntry,
        )

        entries = [
            TraceEntry(None, "a", 0.0, 200.0),
            TraceEntry(None, "a", 201.0, 400.0,
                       AnnotationSet.goals("buy")),
            TraceEntry("e", "b", 420.0, 440.0),
        ]
        visit = SemanticTrajectory("v", Trace(entries),
                                   AnnotationSet.goals("visit"))
        segmentation = segment_stops_moves(
            visit, StopMoveConfig(min_stop_seconds=350.0))
        assert stop_cells(segmentation) == ["a"]

    def test_internal_gap_breaks_run(self):
        trajectory = make_trajectory(states=("a",), dwell=400.0)
        from repro.core.trajectory import Trace, TraceEntry
        entries = list(trajectory.trace.entries)
        entries.append(TraceEntry(None, "a", 5000.0, 5400.0))
        split_visit = trajectory.with_trace(Trace(entries))
        segmentation = segment_stops_moves(
            split_visit,
            StopMoveConfig(min_stop_seconds=300.0,
                           max_internal_gap=600.0))
        # Two runs, but each spans half the trace: both are proper
        # subtrajectories, so both become stops.
        assert len(stops_of(segmentation)) == 2

    def test_single_run_trajectory_yields_nothing(self):
        solo = make_trajectory(states=("a",), dwell=1000.0)
        segmentation = segment_stops_moves(solo)
        assert len(segmentation) == 0

    def test_on_corpus(self, small_trajectories):
        segmented = 0
        for trajectory in small_trajectories[:100]:
            segmentation = segment_stops_moves(
                trajectory, StopMoveConfig(min_stop_seconds=120.0))
            if len(segmentation):
                segmented += 1
                for a, b in zip(segmentation.episodes,
                                segmentation.episodes[1:]):
                    assert a.t_start <= b.t_start
        assert segmented > 0
