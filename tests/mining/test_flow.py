"""Tests for collective flow analytics."""

import pytest

from repro.core.timeutil import from_clock, from_date
from repro.mining.flow import (
    FlowBalance,
    congestion_profile,
    flow_balances,
    hourly_occupancy,
    od_matrix,
    peak_hour,
    simultaneous_occupancy,
)
from repro.storage import TrajectoryStore
from tests.conftest import make_trajectory


@pytest.fixture
def corpus():
    return [
        make_trajectory(mo_id="m1", states=("in", "x", "out")),
        make_trajectory(mo_id="m2", states=("in", "y", "out")),
        make_trajectory(mo_id="m3", states=("in", "x", "y", "out")),
    ]


class TestOdMatrix:
    def test_counts(self, corpus):
        matrix = od_matrix(corpus)
        assert matrix == {("in", "out"): 3}

    def test_single_state_visit(self):
        matrix = od_matrix([make_trajectory(states=("solo",))])
        assert matrix == {("solo", "solo"): 1}


class TestFlowBalance:
    def test_entrance_and_exit_detected(self, corpus):
        balances = {b.state: b for b in flow_balances(corpus)}
        assert balances["in"].imbalance == -3   # pure source
        assert balances["out"].imbalance == 3   # pure sink
        assert balances["in"].started_here == 3
        assert balances["out"].ended_here == 3

    def test_through_cells_balanced(self, corpus):
        balances = {b.state: b for b in flow_balances(corpus)}
        assert balances["x"].imbalance == 0
        assert balances["y"].imbalance == 0

    def test_sorted_by_magnitude(self, corpus):
        balances = flow_balances(corpus)
        magnitudes = [abs(b.imbalance) for b in balances]
        assert magnitudes == sorted(magnitudes, reverse=True)


class TestHourlyOccupancy:
    def test_single_hour(self):
        day = from_date("01-03-2017")
        trajectory = make_trajectory(
            states=("a",), start=from_clock(day, "10:00:00"),
            dwell=1800.0)
        occupancy = hourly_occupancy([trajectory])
        assert occupancy["a"][10] == pytest.approx(1800.0)
        assert sum(occupancy["a"]) == pytest.approx(1800.0)

    def test_spans_hours(self):
        day = from_date("01-03-2017")
        trajectory = make_trajectory(
            states=("a",), start=from_clock(day, "10:30:00"),
            dwell=5400.0)  # 10:30 → 12:00
        occupancy = hourly_occupancy([trajectory])
        assert occupancy["a"][10] == pytest.approx(1800.0)
        assert occupancy["a"][11] == pytest.approx(3600.0)
        assert occupancy["a"][12] == pytest.approx(0.0)

    def test_zero_filled_states(self):
        occupancy = hourly_occupancy([], states=["ghost"])
        assert occupancy["ghost"] == [0.0] * 24

    def test_peak_hour(self):
        series = [0.0] * 24
        series[14] = 100.0
        assert peak_hour(series) == 14


class TestCongestion:
    @pytest.fixture
    def store(self, corpus):
        store = TrajectoryStore()
        store.insert_many(corpus)
        return store

    def test_simultaneous_occupancy(self, store, corpus):
        t = corpus[0].trace.entries[0].t_start + 10.0
        occupancy = simultaneous_occupancy(store, t)
        assert occupancy == {"in": 3}

    def test_empty_time(self, store):
        assert simultaneous_occupancy(store, 1e12) == {}

    def test_congestion_profile(self, store, corpus):
        t0 = corpus[0].t_start
        samples = congestion_profile(store, t0, t0 + 300.0, step=100.0)
        assert len(samples) == 4
        assert samples[0][1] == 3
        assert samples[0][2] == "in"

    def test_invalid_parameters(self, store):
        with pytest.raises(ValueError):
            congestion_profile(store, 0.0, 10.0, step=0.0)
        with pytest.raises(ValueError):
            congestion_profile(store, 10.0, 0.0)


def test_flow_on_corpus(louvre_space, small_trajectories):
    """On the Louvre corpus the pyramid entrance is the top source."""
    balances = flow_balances(small_trajectories)
    sources = [b for b in balances if b.imbalance < 0]
    assert sources
    assert sources[0].state == "zone60886"
