"""Tests for visitor profiles, graph walkers and geometric agents."""

import random

import pytest

from repro.indoor.nrg import NodeRelationGraph
from repro.movement.agents import GeometricAgent, WaypointPath
from repro.movement.profiles import PROFILES, choose_profile
from repro.movement.walker import GraphWalker
from repro.spatial.geometry import Point


class TestProfiles:
    def test_weights_sum_to_one(self):
        assert sum(p.weight for p in PROFILES.values()) \
            == pytest.approx(1.0)

    def test_four_canonical_styles(self):
        assert set(PROFILES) == {"ant", "fish", "grasshopper",
                                 "butterfly"}

    def test_zone_count_at_least_one(self):
        rng = random.Random(1)
        for profile in PROFILES.values():
            counts = [profile.sample_zone_count(rng) for _ in range(200)]
            assert min(counts) >= 1
            assert max(counts) <= 60

    def test_mean_zone_count_approximate(self):
        rng = random.Random(2)
        ant = PROFILES["ant"]
        counts = [ant.sample_zone_count(rng) for _ in range(3000)]
        mean = sum(counts) / len(counts)
        assert abs(mean - ant.mean_zone_count) < 1.0

    def test_dwell_positive(self):
        rng = random.Random(3)
        for profile in PROFILES.values():
            assert all(profile.sample_dwell(rng) > 0 for _ in range(50))

    def test_grasshopper_dwells_longest(self):
        rng = random.Random(4)
        means = {}
        for name, profile in PROFILES.items():
            dwells = [profile.sample_dwell(rng) for _ in range(2000)]
            means[name] = sum(dwells) / len(dwells)
        assert means["grasshopper"] > means["fish"]

    def test_choose_profile_distribution(self):
        rng = random.Random(5)
        drawn = [choose_profile(rng).name for _ in range(4000)]
        for name, profile in PROFILES.items():
            share = drawn.count(name) / len(drawn)
            assert abs(share - profile.weight) < 0.05


@pytest.fixture
def nrg():
    graph = NodeRelationGraph("g")
    graph.connect("a", "b", bidirectional=True)
    graph.connect("b", "c", bidirectional=True)
    graph.connect("c", "d", bidirectional=True)
    return graph


class TestGraphWalker:
    def test_walk_length(self, nrg):
        walker = GraphWalker(nrg, random.Random(1))
        steps = walker.walk("a", 4, PROFILES["fish"])
        assert len(steps) == 4
        assert steps[0].state == "a"

    def test_walk_follows_edges(self, nrg):
        walker = GraphWalker(nrg, random.Random(2))
        steps = walker.walk("a", 6, PROFILES["ant"])
        states = [s.state for s in steps]
        for src, dst in zip(states, states[1:]):
            assert nrg.has_transition(src, dst)

    def test_dead_end_stops(self):
        graph = NodeRelationGraph("d")
        graph.connect("a", "b")  # one-way, b is a dead end
        walker = GraphWalker(graph, random.Random(3))
        steps = walker.walk("a", 10, PROFILES["fish"])
        assert [s.state for s in steps] == ["a", "b"]

    def test_unknown_start_raises(self, nrg):
        walker = GraphWalker(nrg, random.Random(1))
        with pytest.raises(KeyError):
            walker.walk("ghost", 3, PROFILES["fish"])

    def test_invalid_steps_raises(self, nrg):
        walker = GraphWalker(nrg, random.Random(1))
        with pytest.raises(ValueError):
            walker.walk("a", 0, PROFILES["fish"])

    def test_attraction_bias(self):
        graph = NodeRelationGraph("fork")
        graph.connect("start", "boring", bidirectional=True)
        graph.connect("start", "monalisa", bidirectional=True)
        rng = random.Random(7)
        walker = GraphWalker(graph, rng,
                             attractions={"monalisa": 50.0})
        choices = [walker.next_state("start", []) for _ in range(300)]
        assert choices.count("monalisa") > choices.count("boring") * 3

    def test_revisit_penalty(self, nrg):
        rng = random.Random(8)
        walker = GraphWalker(nrg, rng, revisit_penalty=0.0)
        # From b with a already visited, only c can be chosen.
        choices = {walker.next_state("b", ["a", "b"])
                   for _ in range(50)}
        assert choices == {"c"}

    def test_walk_towards(self, nrg):
        walker = GraphWalker(nrg, random.Random(9))
        steps = walker.walk_towards("a", "d", PROFILES["fish"])
        assert [s.state for s in steps] == ["a", "b", "c", "d"]

    def test_walk_towards_unreachable(self):
        graph = NodeRelationGraph("u")
        graph.connect("a", "b")
        graph.add_node("island")
        walker = GraphWalker(graph, random.Random(1))
        with pytest.raises(ValueError):
            walker.walk_towards("a", "island", PROFILES["fish"])

    def test_invalid_penalty(self, nrg):
        with pytest.raises(ValueError):
            GraphWalker(nrg, random.Random(1), revisit_penalty=2.0)


class TestGeometricAgent:
    def test_duration(self):
        path = WaypointPath([Point(0, 0), Point(8, 0)], [10.0, 5.0])
        agent = GeometricAgent(path, speed=0.8, rng=random.Random(1))
        assert agent.duration() == pytest.approx(10 + 5 + 10.0)

    def test_track_is_time_ordered(self):
        path = WaypointPath([Point(0, 0), Point(10, 0), Point(10, 10)],
                            [2.0, 2.0, 2.0])
        agent = GeometricAgent(path, rng=random.Random(2))
        track = agent.track(100.0)
        times = [s.t for s in track]
        assert times == sorted(times)
        assert times[0] == 100.0

    def test_track_visits_waypoints(self):
        path = WaypointPath([Point(0, 0), Point(20, 0)], [3.0, 3.0])
        agent = GeometricAgent(path, speed=1.0, jitter=0.0,
                               rng=random.Random(3))
        track = agent.track(0.0)
        assert track[0].position.distance_to(Point(0, 0)) < 0.1
        assert track[-1].position.distance_to(Point(20, 0)) < 0.1

    def test_mismatched_dwells_rejected(self):
        with pytest.raises(ValueError):
            WaypointPath([Point(0, 0)], [1.0, 2.0])

    def test_invalid_speed(self):
        path = WaypointPath([Point(0, 0)], [1.0])
        with pytest.raises(ValueError):
            GeometricAgent(path, speed=0.0)

    def test_invalid_sample_interval(self):
        path = WaypointPath([Point(0, 0)], [1.0])
        agent = GeometricAgent(path)
        with pytest.raises(ValueError):
            agent.track(0.0, sample_interval=0.0)
