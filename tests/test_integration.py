"""End-to-end integration tests across all subsystems."""

import random

import pytest

from repro.core import (
    TrajectoryBuilder,
    infer_missing_presence,
    lift_trajectory,
    validate_trajectory,
)
from repro.core.annotations import AnnotationKind
from repro.core.validation import Severity
from repro.louvre.floorplan import SALLE_DES_ETATS_ROOM
from repro.louvre.zones import ZONE_SALLE_DES_ETATS
from repro.mining.prefixspan import pattern_support, prefixspan
from repro.mining.sequences import state_sequences
from repro.movement.agents import GeometricAgent, WaypointPath
from repro.positioning import (
    BeaconGrid,
    ExtendedKalmanFilter2D,
    RssiModel,
    ZoneDetector,
    trilaterate,
)
from repro.positioning.detection import PositionFix
from repro.storage import Query, TrajectoryStore
from repro.storage.csvio import (
    read_detrecords_csv,
    write_detections_csv,
)


class TestSymbolicPipeline:
    """Corpus generation → building → storage → mining."""

    def test_build_report_matches_paper_shape(self, louvre_space,
                                              small_corpus):
        _, records = small_corpus
        builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
        trajectories, report = builder.build_all(records)
        assert 0.08 <= report.cleaning.zero_duration_share <= 0.12
        assert report.trajectories == len(trajectories)
        assert all(t.annotations.has(AnnotationKind.GOAL, "visit")
                   for t in trajectories)

    def test_no_error_level_issues_beyond_known_kinds(
            self, louvre_space, small_trajectories):
        nrg = louvre_space.dataset_zone_nrg()
        for trajectory in small_trajectories[:100]:
            issues = validate_trajectory(trajectory, nrg)
            errors = [i for i in issues if i.severity is Severity.ERROR]
            # The builder marks unobservable moves instead of leaving
            # impossible transitions.
            assert errors == []

    def test_inference_repairs_gaps(self, louvre_space,
                                    small_trajectories):
        nrg = louvre_space.dataset_zone_nrg()
        repaired_any = False
        for trajectory in small_trajectories[:200]:
            repaired = infer_missing_presence(trajectory, nrg)
            if len(repaired.trace) > len(trajectory.trace):
                repaired_any = True
                inferred = [e for e in repaired.trace
                            if e.annotations.has(
                                AnnotationKind.PROVENANCE, "inferred")]
                assert inferred
                break
        assert repaired_any, \
            "sparse corpus should contain repairable gaps"

    def test_store_and_query_roundtrip(self, small_trajectories):
        store = TrajectoryStore()
        store.insert_many(small_trajectories)
        hits = Query(store).visiting_state("zone60886").execute()
        assert hits
        for hit in hits:
            assert hit.trajectory.trace.visits_state("zone60886")

    def test_mining_multi_granularity(self, louvre_space,
                                      small_trajectories):
        """The same corpus mined at zone and floor granularity."""
        zone_sequences = state_sequences(small_trajectories)
        zone_patterns = prefixspan(
            zone_sequences, max(2, len(zone_sequences) // 10), 3)
        assert zone_patterns

        lifted = [lift_trajectory(t, louvre_space.zone_hierarchy,
                                  "floors")
                  for t in small_trajectories]
        floor_sequences = state_sequences(lifted)
        floor_patterns = prefixspan(
            floor_sequences, max(2, len(floor_sequences) // 10), 3)
        assert floor_patterns
        # Every mined support is honest.
        for pattern in zone_patterns[:10]:
            assert pattern_support(zone_sequences, pattern.sequence) \
                == pattern.support

    def test_csv_persistence_roundtrip(self, small_corpus, tmp_path):
        _, records = small_corpus
        path = str(tmp_path / "corpus.csv")
        write_detections_csv(records, path)
        restored = read_detrecords_csv(path)
        assert len(restored) == len(records)
        assert restored[0].state == records[0].state


class TestGeometricPipeline:
    """Ground truth → RSSI → trilateration → EKF → zone detections →
    trajectory: the full sensing path of Section 4.1."""

    def test_agent_to_trajectory(self, louvre_space):
        plan = louvre_space.floorplan
        rooms = plan.rooms_of_zone(ZONE_SALLE_DES_ETATS)
        waypoints = [plan.room_space.cell(r).geometry.centroid()
                     for r in rooms]
        path = WaypointPath(waypoints, [30.0] * len(waypoints), floor=1)
        agent = GeometricAgent(path, speed=0.8, rng=random.Random(1))
        track = agent.track(t_start=1000.0, sample_interval=2.0)

        bbox = plan.zone_space.cell(ZONE_SALLE_DES_ETATS).geometry.bbox()
        grid = BeaconGrid(bbox.expanded(20.0), floor=1, spacing=10.0)
        registry = {b.beacon_id: b for b in grid.beacons}
        model = RssiModel(sigma=2.0, rng=random.Random(2))
        ekf = None
        fixes = []
        for sample in track:
            readings = model.scan(grid.beacons, sample.position,
                                  sample.floor, sample.t)
            fix = trilaterate(readings, registry, model)
            if fix is None:
                continue
            if ekf is None:
                ekf = ExtendedKalmanFilter2D(
                    initial_position=fix.position)
            else:
                ekf.predict(2.0)
            ekf.update_position(fix.position)
            fixes.append(PositionFix(sample.t, ekf.position,
                                     sample.floor))

        detector = ZoneDetector(plan.zone_space, max_fix_gap=30.0)
        records = detector.detect("sim-visitor", fixes)
        assert records
        # The dominant detected zone is the one actually walked.
        dominant = max(records, key=lambda r: r.duration)
        assert dominant.state == ZONE_SALLE_DES_ETATS

        builder = TrajectoryBuilder(louvre_space.zone_nrg)
        trajectories, _ = builder.build_all(records)
        assert len(trajectories) == 1
        assert trajectories[0].trace.visits_state(ZONE_SALLE_DES_ETATS)


class TestCrossModelConsistency:
    def test_room_and_zone_views_agree(self, louvre_space):
        """A room's zone (attribute) matches the zone joint edges."""
        graph = louvre_space.graph
        for room_id in list(graph.layer("rooms").nodes)[:50]:
            zone_attr = louvre_space.zone_of_room(room_id)
            partners = graph.joint_partners(room_id, layer="zones")
            assert partners == [zone_attr]

    def test_mona_lisa_room_overall_state(self, louvre_space):
        assert louvre_space.graph.is_valid_overall_state({
            "rooms": SALLE_DES_ETATS_ROOM,
            "zones": ZONE_SALLE_DES_ETATS,
            "floors": "floor:denon:1",
        })
