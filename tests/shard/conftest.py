"""Shared sharding fixtures: one small built corpus per test run.

Everything in this package compares a sharded engine against the
single-process executor, so the corpus itself only needs to be built
once (the louvre source is seeded — identical documents every time).
"""

import pytest

from repro.service import protocol as P
from repro.service.executor import LocalBinding
from repro.service.registry import SessionRegistry

SESSION = "s"


@pytest.fixture(scope="session")
def corpus_docs():
    """The reference corpus as wire documents, built once."""
    registry = SessionRegistry()
    registry.build(SESSION, source="louvre", scale=0.03, wait=True)
    store = registry.get(SESSION).workbench.store
    return [trajectory.to_dict() for trajectory in store]


@pytest.fixture()
def single(corpus_docs):
    """The unsharded reference engine, pre-ingested."""
    binding = LocalBinding(SessionRegistry())
    binding.call(P.IngestDocuments(session=SESSION,
                                   docs=corpus_docs))
    return binding


def ingested_coordinator(shard_count, corpus_docs, **kwargs):
    """A fresh local coordinator holding the reference corpus."""
    from repro.shard import ShardCoordinator

    coordinator = ShardCoordinator.local(shard_count, **kwargs)
    response = coordinator.execute_command(P.IngestDocuments(
        session=SESSION, docs=corpus_docs))
    assert isinstance(response, P.Ingested), response
    return coordinator
