"""Property test: sharded keyset pagination == unsharded, always.

Hypothesis drives the whole cursor-translation surface — random
corpus slices, shard counts, *adversarial* routers (any function of
the doc id, not just the hash ring), orderings, directions and page
sizes — and asserts that a full cursor walk over the sharded engine
yields byte-identical pages to the single-process executor.  A second
property checks the hard case: a cursor issued before more documents
arrive must resume identically after both engines ingest them.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import protocol as P
from repro.service.executor import LocalBinding
from repro.service.registry import SessionRegistry
from repro.service.wire import execute_json
from repro.shard import ShardCoordinator

SESSION = "s"
ORDERINGS = [None, "doc_id", "mo_id", "t_start", "t_end",
             "duration", "entries"]

_DOCS = None


def reference_docs():
    """The seeded corpus, built once per process."""
    global _DOCS
    if _DOCS is None:
        registry = SessionRegistry()
        registry.build(SESSION, source="louvre", scale=0.03,
                       wait=True)
        store = registry.get(SESSION).workbench.store
        _DOCS = [trajectory.to_dict() for trajectory in store]
    return _DOCS


def engines(docs, shard_count, seed):
    """(unsharded, sharded) engines holding the same documents,
    the sharded one routed by a seeded arbitrary function."""
    single = LocalBinding(SessionRegistry())
    single.call(P.IngestDocuments(session=SESSION, docs=docs))
    coordinator = ShardCoordinator.local(
        shard_count,
        router=lambda doc_id: (doc_id * 2654435761 + seed)
        % shard_count)
    coordinator.execute_command(P.IngestDocuments(
        session=SESSION, docs=docs))
    return single.registry, coordinator


def walk(engine, order_by, descending, limit, offset=0,
         cursor=None):
    pages = []
    while True:
        command = P.RunQuery(session=SESSION, limit=limit,
                             cursor=cursor, offset=offset,
                             order_by=order_by,
                             descending=descending)
        status, body = execute_json(engine, command.to_json())
        assert status == 200, body
        pages.append(body)
        cursor = json.loads(body)["next_cursor"]
        if cursor is None:
            return pages


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_sharded_walk_equals_unsharded_walk(data):
    docs = reference_docs()
    count = data.draw(st.integers(min_value=0,
                                  max_value=len(docs)))
    shard_count = data.draw(st.integers(min_value=1, max_value=5))
    seed = data.draw(st.integers(min_value=0, max_value=2 ** 32))
    order_by = data.draw(st.sampled_from(ORDERINGS))
    descending = data.draw(st.booleans())
    limit = data.draw(st.integers(min_value=1, max_value=9))
    offset = data.draw(st.integers(min_value=0, max_value=5))

    single, sharded = engines(docs[:count], shard_count, seed)
    assert walk(sharded, order_by, descending, limit, offset) \
        == walk(single, order_by, descending, limit, offset)


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_cursor_survives_concurrent_ingest(data):
    docs = reference_docs()
    split = data.draw(st.integers(min_value=1,
                                  max_value=len(docs) - 1))
    shard_count = data.draw(st.integers(min_value=1, max_value=4))
    seed = data.draw(st.integers(min_value=0, max_value=2 ** 32))
    order_by = data.draw(st.sampled_from(ORDERINGS))
    descending = data.draw(st.booleans())
    limit = data.draw(st.integers(min_value=1, max_value=7))

    single, sharded = engines(docs[:split], shard_count, seed)
    first = P.RunQuery(session=SESSION, limit=limit,
                       order_by=order_by, descending=descending)
    page_single = execute_json(single, first.to_json())
    page_sharded = execute_json(sharded, first.to_json())
    assert page_sharded == page_single
    cursor = json.loads(page_single[1])["next_cursor"]

    late = docs[split:]
    LocalBinding(single).call(P.IngestDocuments(session=SESSION,
                                                docs=late))
    sharded.execute_command(P.IngestDocuments(session=SESSION,
                                              docs=late))
    if cursor is not None:
        assert walk(sharded, order_by, descending, limit,
                    cursor=cursor) \
            == walk(single, order_by, descending, limit,
                    cursor=cursor)
