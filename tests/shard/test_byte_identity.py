"""The sharding regression gate: byte-identity with the executor.

Every read command against a sharded session (N ∈ {1, 2, 4}) must
produce *exactly* the bytes the single-process executor produces —
same hits, same order, same cursors, same totals, same error
payloads.  Comparison happens at the wire layer
(:func:`~repro.service.wire.execute_json`), so serialization and
HTTP-status mapping are part of the contract, not just the Python
values.
"""

import json

import pytest

from repro.service import protocol as P
from repro.service.wire import execute_json
from tests.shard.conftest import SESSION, ingested_coordinator

SHARD_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def sharded(request, corpus_docs):
    return ingested_coordinator(request.param, corpus_docs)


@pytest.fixture(scope="module")
def reference(corpus_docs):
    from repro.service.executor import LocalBinding
    from repro.service.registry import SessionRegistry

    binding = LocalBinding(SessionRegistry())
    binding.call(P.IngestDocuments(session=SESSION,
                                   docs=corpus_docs))
    return binding.registry


def wire(engine, command):
    """(status, body) for one command at the wire layer."""
    return execute_json(engine, command.to_json())


COMMANDS = [
    P.ListSessions(),
    P.Summary(session=SESSION),
    P.Summary(session=SESSION,
              query={"expr": {"op": "state", "state": "zone60886"}}),
    P.Flow(session=SESSION),
    P.Sequences(session=SESSION),
    P.Similarity(session=SESSION),
    P.MinePatterns(session=SESSION, min_support=0.2, max_length=3),
    P.MinePatterns(session=SESSION, min_support=3, max_length=4),
    P.Explain(session=SESSION),
    P.Explain(session=SESSION,
              query={"expr": {"op": "state", "state": "zone60886"}}),
    P.RunQuery(session=SESSION, limit=7),
    P.RunQuery(session=SESSION, limit=7, order_by="duration"),
    P.RunQuery(session=SESSION, limit=7, order_by="duration",
               descending=True),
    P.RunQuery(session=SESSION, limit=5, order_by="doc_id",
               descending=True),
    P.RunQuery(session=SESSION, limit=5, offset=3,
               order_by="t_start"),
    P.RunQuery(session=SESSION, limit=4, offset=2),
    P.RunQuery(session=SESSION, limit=500),
    P.RunQuery(session=SESSION, limit=6, include_total=False),
    # Error paths must relay byte-identically too.
    P.Summary(session="nope"),
    P.RunQuery(session=SESSION, limit=0),
    P.RunQuery(session=SESSION, order_by="bogus"),
    P.RunQuery(session=SESSION, cursor="not-a-cursor"),
    P.MinePatterns(session=SESSION, min_support=0.2, max_length=0),
    P.RunQuery(session=SESSION,
               query={"expr": {"op": "no-such-op"}}),
]


@pytest.mark.parametrize("command", COMMANDS,
                         ids=lambda c: type(c).__name__)
def test_command_bytes_match(reference, sharded, command):
    assert wire(sharded, command) == wire(reference, command)


ORDERINGS = [(None, False), ("doc_id", False), ("doc_id", True),
             ("mo_id", False), ("t_start", False), ("t_end", True),
             ("duration", False), ("duration", True),
             ("entries", True)]


@pytest.mark.parametrize("order_by,descending", ORDERINGS)
def test_full_cursor_walk_matches(reference, sharded, order_by,
                                  descending):
    def walk(engine):
        pages = []
        cursor = None
        while True:
            status, body = wire(engine, P.RunQuery(
                session=SESSION, limit=4, cursor=cursor,
                order_by=order_by, descending=descending))
            assert status == 200
            pages.append(body)
            cursor = json.loads(body)["next_cursor"]
            if cursor is None:
                return pages

    assert walk(sharded) == walk(reference)


def test_filtered_walk_matches(reference, sharded):
    query = {"expr": {"op": "min-entries", "count": 3}}

    def walk(engine):
        pages = []
        cursor = None
        while True:
            status, body = wire(engine, P.RunQuery(
                session=SESSION, limit=3, cursor=cursor, query=query,
                order_by="duration", descending=True))
            pages.append((status, body))
            cursor = json.loads(body)["next_cursor"]
            if cursor is None:
                return pages

    assert walk(sharded) == walk(reference)


def test_resume_after_ingest_matches(corpus_docs):
    """A cursor issued before more documents arrive must resume to
    the same bytes on both engines."""
    from repro.service.executor import LocalBinding
    from repro.service.registry import SessionRegistry

    half = len(corpus_docs) // 2
    reference = LocalBinding(SessionRegistry())
    reference.call(P.IngestDocuments(session=SESSION,
                                     docs=corpus_docs[:half]))
    sharded = ingested_coordinator(3, corpus_docs[:half])

    for order_by, descending in [(None, False), ("duration", False),
                                 ("duration", True),
                                 ("doc_id", True)]:
        first = P.RunQuery(session=SESSION, limit=5,
                           order_by=order_by, descending=descending)
        page_r = wire(reference.registry, first)
        page_s = wire(sharded, first)
        assert page_s == page_r
        cursor = json.loads(page_r[1])["next_cursor"]

        reference.call(P.IngestDocuments(session=SESSION,
                                         docs=corpus_docs[half:]))
        sharded.execute_command(P.IngestDocuments(
            session=SESSION, docs=corpus_docs[half:]))
        while cursor is not None:
            resume = P.RunQuery(session=SESSION, limit=5,
                                cursor=cursor, order_by=order_by,
                                descending=descending)
            page_r = wire(reference.registry, resume)
            page_s = wire(sharded, resume)
            assert page_s == page_r
            cursor = json.loads(page_r[1])["next_cursor"]

        # reset both engines for the next ordering
        reference.call(P.DropSession(session=SESSION))
        reference.call(P.IngestDocuments(session=SESSION,
                                         docs=corpus_docs[:half]))
        sharded.execute_command(P.DropSession(session=SESSION))
        sharded.execute_command(P.IngestDocuments(
            session=SESSION, docs=corpus_docs[:half]))


def test_http_frontends_serve_the_coordinator(corpus_docs):
    """Both HTTP front-ends over a 2-shard coordinator return the
    same bytes a front-end over a plain registry returns."""
    from repro.service.client import ServiceClient
    from repro.service.registry import SessionRegistry
    from tests.service.conftest import make_server

    registry = SessionRegistry()
    reference = make_server("asyncio", registry)

    coordinator = ingested_coordinator(2, corpus_docs)
    probes = [P.Summary(session=SESSION),
              P.RunQuery(session=SESSION, limit=6,
                         order_by="duration", descending=True),
              P.Summary(session="nope")]

    import urllib.error
    import urllib.request

    def fetch(url, command):
        request = urllib.request.Request(
            url + "/v1/call", data=command.to_json(),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request) as reply:
                return reply.status, reply.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    reference.start()
    try:
        client = ServiceClient(reference.url)
        client.call(P.IngestDocuments(session=SESSION,
                                      docs=corpus_docs))
        expected = [fetch(reference.url, probe) for probe in probes]
    finally:
        reference.stop()

    for backend in ("threading", "asyncio"):
        server = make_server(backend, coordinator)
        server.start()
        try:
            got = [fetch(server.url, probe) for probe in probes]
            assert got == expected
            health = ServiceClient(server.url).health()
            assert len(health["shards"]) == 2
            assert health["shards"][0]["requests"] > 0
        finally:
            server.stop()


def test_build_dataset_fans_out(corpus_docs):
    """A build through the coordinator yields the same session bytes
    as the same build through a registry."""
    from repro.service.registry import SessionRegistry
    from repro.shard import ShardCoordinator

    registry = SessionRegistry()
    registry.build("b", source="louvre", scale=0.02, wait=True)

    coordinator = ShardCoordinator.local(2)
    info = coordinator.execute_command(P.BuildDataset(
        session="b", source="louvre", scale=0.02, wait=True))
    assert isinstance(info, P.JobInfo) and info.state == "done"

    for probe in (P.Summary(session="b"),
                  P.RunQuery(session="b", limit=9,
                             order_by="duration"),
                  P.Flow(session="b")):
        assert wire(coordinator, probe) == wire(registry, probe)

    status = coordinator.execute_command(
        P.JobStatus(job_id=info.job_id))
    assert isinstance(status, P.JobInfo)
    assert status.state == "done"
