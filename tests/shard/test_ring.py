"""The consistent-hash ring and the derived shard topology."""

import pytest

from repro.shard.ring import (
    DEFAULT_REPLICAS,
    HashRing,
    ShardTopology,
)


class TestHashRing:
    def test_routing_is_deterministic_across_instances(self):
        a = HashRing(4)
        b = HashRing(4)
        assert a.assignments(500) == b.assignments(500)

    def test_every_shard_owns_documents(self):
        ring = HashRing(4)
        owned = set(ring.assignments(1000))
        assert owned == {0, 1, 2, 3}

    def test_split_is_roughly_even(self):
        ring = HashRing(4)
        counts = [0] * 4
        for shard in ring.assignments(4000):
            counts[shard] += 1
        # A loose bound: no shard under a third or over double its
        # fair share (virtual nodes smooth the split).
        for count in counts:
            assert 4000 / 12 < count < 4000 / 2

    def test_growing_the_ring_moves_a_minority(self):
        docs = 2000
        before = HashRing(4).assignments(docs)
        after = HashRing(5).assignments(docs)
        moved = sum(1 for a, b in zip(before, after) if a != b)
        # Consistent hashing moves ~1/5 of the corpus; a rehash-all
        # scheme would move ~4/5.  Assert well under half.
        assert moved < docs / 2

    def test_replica_count_changes_the_layout(self):
        a = HashRing(4, replicas=8)
        b = HashRing(4, replicas=DEFAULT_REPLICAS)
        assert a.assignments(200) != b.assignments(200)

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert set(ring.assignments(100)) == {0}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)


class TestShardTopology:
    def brute_force(self, router, shard_count, doc_count):
        globals_of = [[] for _ in range(shard_count)]
        for doc_id in range(doc_count):
            globals_of[router(doc_id)].append(doc_id)
        return globals_of

    def test_matches_brute_force_enumeration(self):
        ring = HashRing(3)
        topology = ShardTopology(3, ring.shard_of)
        topology.extend_to(300)
        expected = self.brute_force(ring.shard_of, 3, 300)
        for shard in range(3):
            assert topology.globals_of(shard) == expected[shard]

    def test_counts_partition_the_corpus(self):
        ring = HashRing(4)
        topology = ShardTopology(4, ring.shard_of)
        counts = topology.counts(257)
        assert sum(counts) == 257

    def test_global_for_derives_on_demand(self):
        ring = HashRing(2)
        topology = ShardTopology(2, ring.shard_of)
        expected = self.brute_force(ring.shard_of, 2, 64)
        # Ask for a local id before any extend_to: the mapping must
        # grow itself until the answer exists.
        assert topology.global_for(0, 5) == expected[0][5]
        assert topology.global_for(1, 5) == expected[1][5]

    def test_mapping_is_prefix_stable_across_growth(self):
        ring = HashRing(3)
        topology = ShardTopology(3, ring.shard_of)
        topology.extend_to(50)
        before = [list(topology.globals_of(s)) for s in range(3)]
        topology.extend_to(200)
        for shard in range(3):
            grown = topology.globals_of(shard)
            assert grown[:len(before[shard])] == before[shard]

    def test_rejects_out_of_range_router(self):
        topology = ShardTopology(2, lambda doc_id: 7)
        with pytest.raises(ValueError, match="router sent doc"):
            topology.extend_to(1)
