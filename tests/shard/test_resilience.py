"""Coordinator error paths under injected wire failures: hangs become
typed deadline errors, mid-pagination death degrades or fails typed,
corrupt bytes fail over, and nothing leaks threads."""

import threading
import time

import pytest

from repro.resilience import FaultSchedule, RetryPolicy
from repro.service import protocol as P

from tests.resilience.conftest import SESSION, FaultyCluster


@pytest.fixture()
def cluster_factory(corpus_docs):
    built = []

    def build(**kwargs):
        cluster = FaultyCluster(corpus_docs, **kwargs)
        built.append(cluster)
        return cluster

    yield build
    for cluster in built:
        cluster.close()


class TestHangs:
    def test_hung_shard_times_out_typed_not_forever(
            self, cluster_factory):
        cluster = cluster_factory(
            shard_count=2, replicas=1,
            schedules={(1, 0): FaultSchedule(
                seed=5, hang_rate=1.0, hang_seconds=30.0)})
        command = P.RunQuery(session=SESSION,
                             limit=3).with_deadline(400)
        start = time.monotonic()
        response = cluster.coordinator.execute_command(command)
        elapsed = time.monotonic() - start
        assert isinstance(response, P.ErrorInfo), response
        assert response.code == "deadline_exceeded"
        # Bounded by deadline + scatter grace, nowhere near the
        # 30s injected hang.
        assert elapsed < 3.0, elapsed

    def test_hung_replica_fails_over_within_the_deadline(
            self, cluster_factory, single):
        cluster = cluster_factory(
            shard_count=2, replicas=2,
            schedules={(1, 0): FaultSchedule(
                seed=5, hang_rate=1.0, hang_seconds=30.0)})
        command = P.RunQuery(session=SESSION,
                             limit=5).with_deadline(2000)
        response = cluster.coordinator.execute_command(command)
        assert response.to_dict() == single.call(
            P.RunQuery(session=SESSION, limit=5)).to_dict()


class TestDeathBetweenPages:
    def _first_page(self, cluster, allow_partial):
        page = cluster.coordinator.execute_command(P.RunQuery(
            session=SESSION, limit=4, allow_partial=allow_partial))
        assert isinstance(page, P.QueryPage), page
        assert page.next_cursor
        return page

    def test_partial_pagination_degrades_explicitly(
            self, cluster_factory):
        cluster = cluster_factory(shard_count=2, replicas=1)
        page = self._first_page(cluster, allow_partial=True)
        cluster.wires[1][0].kill()
        follow = cluster.coordinator.execute_command(P.RunQuery(
            session=SESSION, limit=4, cursor=page.next_cursor,
            allow_partial=True))
        assert isinstance(follow, P.QueryPage), follow
        assert follow.degraded == {"missing_shards": [1]}

    def test_strict_pagination_fails_typed(self, cluster_factory):
        cluster = cluster_factory(shard_count=2, replicas=1)
        page = self._first_page(cluster, allow_partial=False)
        cluster.wires[1][0].kill()
        follow = cluster.coordinator.execute_command(P.RunQuery(
            session=SESSION, limit=4, cursor=page.next_cursor))
        assert isinstance(follow, P.ErrorInfo), follow
        assert follow.code == "unavailable"

    def test_mining_commands_degrade_too(self, cluster_factory,
                                         single):
        cluster = cluster_factory(shard_count=2, replicas=1)
        cluster.wires[0][0].kill()
        strict = cluster.coordinator.execute_command(
            P.Summary(session=SESSION))
        assert isinstance(strict, P.ErrorInfo)
        assert strict.code == "unavailable"
        partial = cluster.coordinator.execute_command(
            P.Summary(session=SESSION, allow_partial=True))
        assert isinstance(partial, P.SummaryStats), partial
        assert partial.degraded == {"missing_shards": [0]}
        reference = single.call(P.Summary(session=SESSION))
        assert partial.stats["visits"] < reference.stats["visits"]


class TestCorruptBytes:
    def test_corrupt_response_fails_over_to_the_twin(
            self, cluster_factory, single):
        cluster = cluster_factory(
            shard_count=2, replicas=2,
            schedules={(0, 0): FaultSchedule(
                seed=5, corrupt_rate=1.0)})
        for _ in range(6):
            response = cluster.coordinator.execute_command(
                P.RunQuery(session=SESSION, limit=3))
            assert response.to_dict() == single.call(
                P.RunQuery(session=SESSION, limit=3)).to_dict()
        assert cluster.wires[0][0].injected["corrupt"] > 0

    def test_transient_corruption_is_absorbed_by_retry(
            self, cluster_factory, single):
        cluster = cluster_factory(
            shard_count=2, replicas=1,
            schedules={(0, 0): FaultSchedule.scripted(["corrupt"])})
        response = cluster.coordinator.execute_command(
            P.RunQuery(session=SESSION, limit=3))
        assert response.to_dict() == single.call(
            P.RunQuery(session=SESSION, limit=3)).to_dict()
        assert cluster.wires[0][0].injected["corrupt"] == 1

    def test_persistent_corruption_fails_typed(self, cluster_factory):
        cluster = cluster_factory(
            shard_count=2, replicas=1,
            schedules={(0, 0): FaultSchedule(seed=5,
                                             corrupt_rate=1.0)},
            retry=RetryPolicy(attempts=2, base=0.001, cap=0.01,
                              seed=3))
        response = cluster.coordinator.execute_command(
            P.RunQuery(session=SESSION, limit=3))
        assert isinstance(response, P.ErrorInfo), response
        assert response.code == "unavailable"


class TestThreadHygiene:
    def test_failure_storms_do_not_leak_threads(self, corpus_docs):
        baseline = threading.active_count()
        for _ in range(3):
            cluster = FaultyCluster(
                corpus_docs, shard_count=2, replicas=2,
                schedules={(0, 0): FaultSchedule(
                    seed=9, drop_rate=0.5),
                    (1, 1): FaultSchedule(
                        seed=10, hang_rate=0.3, hang_seconds=2.0)})
            for _ in range(10):
                cluster.coordinator.execute_command(P.RunQuery(
                    session=SESSION, limit=2,
                    allow_partial=True).with_deadline(500))
            cluster.close()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if threading.active_count() <= baseline + 4:
                break
            time.sleep(0.1)
        assert threading.active_count() <= baseline + 4, \
            [thread.name for thread in threading.enumerate()]
