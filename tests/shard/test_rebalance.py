"""Offline resharding: snapshots in, re-split snapshots out."""

import os

import pytest

from repro.service import protocol as P
from repro.service.wire import execute_json
from repro.shard import ShardCoordinator, ShardStateError
from repro.shard.rebalance import (
    read_manifest,
    rebalance,
    write_manifest,
)
from tests.shard.conftest import SESSION


def saved_root(tmp_path, corpus_docs, shard_count=2):
    root = str(tmp_path / "shards")
    coordinator = ShardCoordinator.local(shard_count,
                                         persist_dir=root,
                                         fsync=False)
    coordinator.execute_command(P.IngestDocuments(
        session=SESSION, docs=corpus_docs))
    saved = coordinator.execute_command(
        P.SaveSession(session=SESSION))
    assert isinstance(saved, P.SessionSaved)
    assert saved.trajectories == len(corpus_docs)
    return root


def wire(engine, command):
    return execute_json(engine, command.to_json())


@pytest.mark.parametrize("new_count", [1, 3, 4])
def test_resharded_root_is_byte_identical(tmp_path, corpus_docs,
                                          single, new_count):
    root = saved_root(tmp_path, corpus_docs)
    report = rebalance(root, new_count, fsync=False)
    assert sum(report["sessions"][SESSION]["per_shard"]) \
        == len(corpus_docs)
    assert read_manifest(root)["shard_count"] == new_count

    coordinator = ShardCoordinator.local(new_count,
                                         persist_dir=root,
                                         fsync=False)
    for probe in (P.Summary(session=SESSION),
                  P.RunQuery(session=SESSION, limit=6,
                             order_by="duration", descending=True),
                  P.Sequences(session=SESSION),
                  P.MinePatterns(session=SESSION, min_support=0.25,
                                 max_length=3)):
        assert wire(coordinator, probe) \
            == wire(single.registry, probe)


def test_growing_moves_a_minority(tmp_path, corpus_docs):
    root = saved_root(tmp_path, corpus_docs, shard_count=4)
    report = rebalance(root, 5, fsync=False)
    assert report["moved"] < len(corpus_docs) / 2


def test_wrong_shard_count_is_rejected_until_rebalanced(
        tmp_path, corpus_docs):
    root = saved_root(tmp_path, corpus_docs)
    with pytest.raises(ShardStateError):
        ShardCoordinator.local(3, persist_dir=root, fsync=False)
    rebalance(root, 3, fsync=False)
    coordinator = ShardCoordinator.local(3, persist_dir=root,
                                         fsync=False)
    assert coordinator.names() == [SESSION]


def test_rebalance_without_manifest_fails(tmp_path):
    root = str(tmp_path / "empty")
    os.makedirs(root)
    with pytest.raises(ShardStateError, match="manifest"):
        rebalance(root, 2)


def test_manifest_round_trip(tmp_path):
    root = str(tmp_path / "m")
    write_manifest(root, 3, replicas=16)
    assert read_manifest(root) == {"shard_count": 3, "replicas": 16}
