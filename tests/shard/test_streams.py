"""Sharded streams: events bucketed by the ring, relayed episodes
routed by global id, min-over-shards watermarks, and content identity
between a sharded stream replay and the single-process batch build.
"""

import pytest

from repro.service import protocol as P
from repro.service.protocol import canonical_json
from repro.shard import ShardCoordinator
from repro.shard.ring import HashRing

ZONES = ["zone60886", "zone60887", "zone60888"]
GAP = 4 * 3600.0
SESSION = "live"
STREAM = "gates"


def ev(mo_id, state, t_start, duration=60.0):
    return {"mo_id": mo_id, "state": state, "t_start": t_start,
            "t_end": t_start + duration}


def walk(mo_id, t0, zones=ZONES, dwell=60.0):
    return [ev(mo_id, zone, t0 + i * dwell, dwell)
            for i, zone in enumerate(zones)]


def call(coordinator, command):
    response = coordinator.execute_command(command)
    assert not isinstance(response, P.ErrorInfo), response
    return response


def open_stream(coordinator, **kwargs):
    return call(coordinator, P.OpenStream(session=SESSION,
                                          stream=STREAM, **kwargs))


def append(coordinator, events=(), watermark=None):
    return call(coordinator, P.AppendEvents(
        session=SESSION, stream=STREAM, events=list(events),
        watermark=watermark))


@pytest.fixture(params=[1, 2, 4])
def coordinator(request):
    coordinator = ShardCoordinator.local(request.param)
    yield coordinator
    coordinator.close()


class TestShardedStreamLifecycle:
    def test_open_append_close(self, coordinator):
        info = open_stream(coordinator)
        assert info.status["relay"] is True
        assert info.status["watermark"] is None

        ack = append(coordinator, walk("alice", 0.0)
                     + walk("bob", 10.0))
        assert ack.appended == 6
        assert ack.episodes_closed == 0
        # the client-facing ack never carries episode payloads
        assert ack.episodes == []

        ack = append(coordinator, watermark=3 * 60.0 + GAP + 11.0)
        assert ack.episodes_closed == 2
        assert ack.open_events == 0

        closed = call(coordinator, P.CloseStream(session=SESSION,
                                                 stream=STREAM))
        assert closed.events_acked == 6
        assert closed.episodes_total == 2

        page = call(coordinator, P.RunQuery(session=SESSION))
        assert page.total == 2
        assert sorted(h.trajectory.mo_id for h in page.hits) \
            == ["alice", "bob"]

    def test_watermark_is_min_over_shards(self, coordinator):
        open_stream(coordinator)
        # the watermark broadcast reaches every shard — even those
        # with empty buckets — so the merged minimum is exact
        ack = append(coordinator, walk("alice", 0.0), watermark=42.0)
        assert ack.watermark == 42.0
        status = call(coordinator, P.StreamStatus(session=SESSION,
                                                  stream=STREAM))
        assert status.status["watermark"] == 42.0
        assert len(status.status["shard_watermarks"]) \
            == coordinator.shard_count
        assert all(mark == 42.0
                   for mark in status.status["shard_watermarks"])

    def test_events_bucket_by_ring_key(self, coordinator):
        open_stream(coordinator)
        visitors = ["v{}".format(i) for i in range(8)]
        for visitor in visitors:
            append(coordinator, walk(visitor, 0.0))
        expected = [0] * coordinator.shard_count
        ring = HashRing(coordinator.shard_count)
        for visitor in visitors:
            expected[ring.shard_of_key(visitor)] += 3
        statuses = [
            shard_binding.call(P.StreamStatus(session=SESSION,
                                              stream=STREAM)).status
            for shard_binding in coordinator.backends]
        assert [s["events_acked"] for s in statuses] == expected

    def test_unknown_stream_relays_404(self, coordinator):
        response = coordinator.execute_command(P.AppendEvents(
            session="nowhere", stream=STREAM, events=[]))
        assert isinstance(response, P.ErrorInfo)
        assert response.code == "unknown_stream"

    def test_bad_event_acks_nothing_anywhere(self, coordinator):
        open_stream(coordinator)
        response = coordinator.execute_command(P.AppendEvents(
            session=SESSION, stream=STREAM,
            events=[ev("ok", ZONES[0], 0.0), {"mo_id": "broken"}]))
        assert isinstance(response, P.ErrorInfo)
        assert response.code == "bad_request"
        status = call(coordinator, P.StreamStatus(session=SESSION,
                                                  stream=STREAM))
        assert status.status["events_acked"] == 0

    def test_overload_precheck_rejects_before_any_shard_acks(
            self, coordinator):
        open_stream(coordinator, max_open_events=2)
        response = coordinator.execute_command(P.AppendEvents(
            session=SESSION, stream=STREAM,
            events=walk("alice", 0.0)))
        assert isinstance(response, P.ErrorInfo)
        assert response.code == "overloaded"
        status = call(coordinator, P.StreamStatus(session=SESSION,
                                                  stream=STREAM))
        assert status.status["events_acked"] == 0

    def test_health_hook_reports_streams(self, coordinator):
        from repro.service.wire import health_payload

        open_stream(coordinator)
        append(coordinator, walk("alice", 0.0), watermark=30.0)
        payload = health_payload(coordinator)
        assert payload["streams"]["open"] == 1
        assert payload["streams"]["events_acked"] == 3
        assert payload["streams"]["watermark_min"] == 30.0


class TestShardedStreamIdentity:
    """The layout invariant: streamed episodes are routed by global
    id exactly like batch ingest, so a coordinator reopened over the
    same shards adopts the session without a layout error."""

    def test_streamed_corpus_matches_batch_content(self, tmp_path,
                                                   louvre_space,
                                                   small_corpus):
        from repro.core.builder import TrajectoryBuilder
        from repro.stream.segmenter import event_to_dict
        from tests.stream.test_segmenter import interleave

        _, records = small_corpus
        batch, _ = TrajectoryBuilder(
            louvre_space.dataset_zone_nrg()).build_all(records)
        by_visitor = {}
        for record in sorted(records, key=lambda r: (r.mo_id,
                                                     r.t_start,
                                                     r.t_end)):
            by_visitor.setdefault(record.mo_id, []).append(record)
        events = interleave(list(by_visitor.values()), seed=3)

        persist = str(tmp_path / "shards")
        coordinator = ShardCoordinator.local(2, persist_dir=persist,
                                             fsync=False)
        try:
            open_stream(coordinator, checkpoint_every=10)
            consumed = 0
            while consumed < len(events):
                chunk = events[consumed:consumed + 200]
                consumed += len(chunk)
                rest = events[consumed:]
                append(coordinator,
                       [event_to_dict(e) for e in chunk],
                       watermark=(min(e.t_start for e in rest)
                                  if rest else None))
            closed = call(coordinator, P.CloseStream(
                session=SESSION, stream=STREAM))
            assert closed.events_acked == len(events)
            page = call(coordinator, P.RunQuery(
                session=SESSION, limit=len(batch) + 10))
            assert page.total == len(batch)
            assert (sorted(canonical_json(h.trajectory.to_dict())
                           for h in page.hits)
                    == sorted(canonical_json(t.to_dict())
                              for t in batch))
            call(coordinator, P.SaveSession(session=SESSION))
        finally:
            coordinator.close()

        # reopening the shard set must adopt the streamed session
        # without a ShardStateError — proof the relayed episodes were
        # routed exactly like batch ingest
        reopened = ShardCoordinator.local(2, persist_dir=persist,
                                          fsync=False)
        try:
            assert SESSION in reopened.names()
            page = call(reopened, P.RunQuery(
                session=SESSION, limit=len(batch) + 10))
            assert page.total == len(batch)
        finally:
            reopened.close()

    def test_shard_crash_recovery_redelivers_without_duplicates(
            self, tmp_path):
        """Kill the shard set after an acked append, rebuild over the
        same directories: the relayed stream recovers shard-side,
        pending episodes are re-harvested once, and a retried append
        does not double-ingest."""
        persist = str(tmp_path / "shards")
        coordinator = ShardCoordinator.local(2, persist_dir=persist,
                                             fsync=False)
        try:
            open_stream(coordinator)
            append(coordinator, walk("alice", 0.0)
                   + walk("bob", 20.0))
            # the episodes close on the shards but the coordinator
            # "crashes" before harvesting this watermark's output:
            # send it straight to the shards, bypassing the harvest
            for binding in coordinator.backends:
                binding.call(P.AppendEvents(
                    session=SESSION, stream=STREAM,
                    watermark=3 * 60.0 + GAP + 21.0))
        finally:
            coordinator.close()

        # a fresh coordinator over the same shard directories (the
        # in-memory shard registries died unflushed — only journaled
        # state survives, like kill -9)
        reopened = ShardCoordinator.local(2, persist_dir=persist,
                                          fsync=False)
        try:
            info = open_stream(reopened)
            # reopen harvested the recovered pending episodes
            assert info.status["pending"] == 0
            assert info.status["events_acked"] == 6
            closed = call(reopened, P.CloseStream(session=SESSION,
                                                  stream=STREAM))
            assert closed.events_acked == 6
            page = call(reopened, P.RunQuery(session=SESSION))
            assert page.total == 2
            assert sorted(h.trajectory.mo_id for h in page.hits) \
                == ["alice", "bob"]
        finally:
            reopened.close()
