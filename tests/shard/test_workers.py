"""Process-backed shards: spawn, crash, restart, rediscover.

These tests spawn real ``repro serve`` worker processes, so they are
the slowest in the package — kept to one pool each and a tiny corpus.
"""

import json
import signal

import pytest

from repro.service import protocol as P
from repro.service.wire import execute_json
from repro.shard.workers import ShardWorkerPool
from tests.shard.conftest import SESSION


def wire(engine, command):
    return execute_json(engine, command.to_json())


PROBES = [
    P.Summary(session=SESSION),
    P.RunQuery(session=SESSION, limit=6, order_by="duration",
               descending=True),
]


@pytest.fixture(scope="module")
def pool():
    with ShardWorkerPool(2, fsync=False) as live:
        yield live


def test_kill9_restart_and_rediscovery(pool, corpus_docs, single):
    coordinator = pool.coordinator()
    coordinator.execute_command(P.IngestDocuments(
        session=SESSION, docs=corpus_docs))
    for probe in PROBES:
        assert wire(coordinator, probe) \
            == wire(single.registry, probe)

    report = coordinator.shard_report()
    assert len(report) == 2
    assert all(entry["requests"] > 0 for entry in report)

    # Checkpoint, then kill -9 one worker and bring it back on the
    # port it announced — the coordinator's clients hold the URL.
    coordinator.execute_command(P.SaveSession(session=SESSION))
    worker = pool.workers[1]
    old_url = worker.url
    worker.kill(signal.SIGKILL)
    assert not worker.alive()
    worker.restart()
    assert worker.url == old_url

    # A fresh coordinator rediscovers the restored layout and serves
    # the same bytes.
    revived = pool.coordinator()
    assert revived.names() == [SESSION]
    for probe in PROBES:
        assert wire(revived, probe) == wire(single.registry, probe)

    with open(worker.announce_path, "r", encoding="utf-8") as handle:
        announce = json.load(handle)
    assert announce["url"] == old_url
    assert announce["pid"] == worker.pid
