"""Tests for the simulated BLE positioning stack."""

import math
import random

import pytest

from repro.positioning.beacons import (
    Beacon,
    BeaconGrid,
    RssiModel,
    RssiReading,
)
from repro.positioning.detection import PositionFix, ZoneDetector
from repro.positioning.kalman import ExtendedKalmanFilter2D
from repro.positioning.particle import ParticleFilter2D
from repro.positioning.trilateration import trilaterate
from repro.indoor.cells import Cell, CellSpace
from repro.spatial.geometry import BBox, Point, Polygon


@pytest.fixture
def grid():
    return BeaconGrid(BBox(0, 0, 60, 60), floor=0, spacing=12.0)


@pytest.fixture
def model():
    return RssiModel(rng=random.Random(42))


class TestRssiModel:
    def test_monotone_decay(self, model):
        beacon = Beacon("b", Point(0, 0))
        near = model.expected_rssi(beacon, Point(1, 0))
        far = model.expected_rssi(beacon, Point(30, 0))
        assert near > far

    def test_reference_distance_power(self, model):
        beacon = Beacon("b", Point(0, 0), tx_power=-59.0)
        assert model.expected_rssi(beacon, Point(1, 0)) \
            == pytest.approx(-59.0)

    def test_distance_inversion(self, model):
        beacon = Beacon("b", Point(0, 0))
        for true_distance in (1.0, 5.0, 20.0):
            rssi = model.expected_rssi(
                beacon, Point(true_distance, 0))
            assert model.distance_from_rssi(beacon, rssi) \
                == pytest.approx(true_distance, rel=1e-6)

    def test_sensitivity_floor(self):
        model = RssiModel(sigma=0.0, sensitivity=-70.0,
                          rng=random.Random(1))
        beacon = Beacon("b", Point(0, 0))
        assert model.observe(beacon, Point(1, 0), 0.0) is not None
        assert model.observe(beacon, Point(500, 0), 0.0) is None

    def test_scan_filters_floor(self, model, grid):
        readings = model.scan(grid.beacons, Point(30, 30), floor=1,
                              t=0.0)
        assert readings == []

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            RssiModel(path_loss_exponent=0)


class TestBeaconGrid:
    def test_density(self, grid):
        assert len(grid) == 25  # 5x5 over 60x60 at 12 m spacing

    def test_nearest(self, grid):
        nearest = grid.nearest(Point(6, 6), count=1)
        assert len(nearest) == 1
        assert nearest[0].position.distance_to(Point(6, 6)) < 12.0

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            BeaconGrid(BBox(0, 0, 10, 10), 0, spacing=0)


class TestTrilateration:
    def test_noise_free_recovery(self, grid):
        model = RssiModel(sigma=0.0, rng=random.Random(1))
        registry = {b.beacon_id: b for b in grid.beacons}
        truth = Point(25.0, 31.0)
        readings = model.scan(grid.beacons, truth, 0, 0.0)
        fix = trilaterate(readings, registry, model)
        assert fix is not None
        assert fix.position.distance_to(truth) < 0.5
        assert fix.residual < 1.0

    def test_noisy_recovery_within_metres(self, grid, model):
        registry = {b.beacon_id: b for b in grid.beacons}
        truth = Point(30.0, 30.0)
        errors = []
        for t in range(20):
            readings = model.scan(grid.beacons, truth, 0, float(t))
            fix = trilaterate(readings, registry, model)
            if fix is not None:
                errors.append(fix.position.distance_to(truth))
        assert errors
        assert sum(errors) / len(errors) < 8.0

    def test_too_few_beacons(self, model):
        beacon = Beacon("b", Point(0, 0))
        readings = [RssiReading("b", -60.0, 0.0)]
        assert trilaterate(readings, {"b": beacon}, model) is None


class TestKalman:
    def test_smoothing_reduces_error(self, grid):
        model = RssiModel(sigma=5.0, rng=random.Random(3))
        registry = {b.beacon_id: b for b in grid.beacons}
        ekf = ExtendedKalmanFilter2D(initial_position=Point(5, 30))
        raw_errors, ekf_errors = [], []
        for step in range(60):
            truth = Point(5.0 + step * 0.8, 30.0)
            readings = model.scan(grid.beacons, truth, 0, float(step))
            fix = trilaterate(readings, registry, model)
            if fix is None:
                continue
            if step:
                ekf.predict(1.0)
            ekf.update_position(fix.position)
            raw_errors.append(fix.position.distance_to(truth))
            ekf_errors.append(ekf.position.distance_to(truth))
        steady = slice(10, None)
        assert sum(ekf_errors[steady.start:]) \
            < sum(raw_errors[steady.start:])

    def test_velocity_estimated(self):
        ekf = ExtendedKalmanFilter2D(initial_position=Point(0, 0))
        for step in range(1, 30):
            ekf.predict(1.0)
            ekf.update_position(Point(step * 1.0, 0.0))
        vx, vy = ekf.velocity
        assert vx == pytest.approx(1.0, abs=0.3)
        assert abs(vy) < 0.3

    def test_polar_update(self):
        ekf = ExtendedKalmanFilter2D(initial_position=Point(0, 0))
        for step in range(1, 10):
            ekf.predict(1.0)
            ekf.update_position(Point(step * 1.0, 0.0))
        ekf.update_polar(speed=1.0, heading=0.0)
        vx, _ = ekf.velocity
        assert vx > 0.5

    def test_invalid_dt(self):
        ekf = ExtendedKalmanFilter2D()
        with pytest.raises(ValueError):
            ekf.predict(0.0)

    def test_uncertainty_shrinks_with_updates(self):
        ekf = ExtendedKalmanFilter2D(initial_position=Point(0, 0))
        initial = ekf.position_uncertainty
        for _ in range(10):
            ekf.predict(1.0)
            ekf.update_position(Point(0, 0))
        assert ekf.position_uncertainty < initial


class TestParticleFilter:
    def test_converges_to_fixes(self):
        pf = ParticleFilter2D(particle_count=300, seed=5)
        pf.initialise(Point(0, 0))
        for step in range(30):
            pf.predict(1.0)
            pf.update(Point(step * 0.5, 10.0))
        assert pf.position.distance_to(Point(14.5, 10.0)) < 4.0

    def test_first_update_initialises(self):
        pf = ParticleFilter2D(seed=1)
        pf.update(Point(50, 50))
        assert pf.position.distance_to(Point(50, 50)) < 10.0

    def test_walkable_constraint(self):
        pf = ParticleFilter2D(particle_count=100, seed=2,
                              walkable=lambda x, y: x >= 0)
        pf.initialise(Point(1.0, 0.0), spread=0.1)
        for _ in range(20):
            pf.predict(1.0)
        # Particles that tried to cross x<0 were held back.
        assert pf.position.x >= -1.0

    def test_ess_bounds(self):
        pf = ParticleFilter2D(particle_count=100, seed=3)
        pf.initialise(Point(0, 0))
        assert 1.0 <= pf.effective_sample_size() <= 100.0

    def test_too_few_particles(self):
        with pytest.raises(ValueError):
            ParticleFilter2D(particle_count=1)

    def test_invalid_dt(self):
        pf = ParticleFilter2D(seed=1)
        with pytest.raises(ValueError):
            pf.predict(-1.0)


class TestZoneDetector:
    @pytest.fixture
    def space(self):
        space = CellSpace("zones", validate_geometry=False)
        space.add_cell(Cell("z1", geometry=Polygon.rectangle(0, 0, 10, 10),
                            floor=0))
        space.add_cell(Cell("z2",
                            geometry=Polygon.rectangle(10, 0, 20, 10),
                            floor=0))
        return space

    def test_same_zone_run_aggregated(self, space):
        detector = ZoneDetector(space)
        fixes = [PositionFix(t, Point(5, 5), 0) for t in range(5)]
        records = detector.detect("mo", fixes)
        assert len(records) == 1
        assert records[0].state == "z1"
        assert records[0].t_start == 0 and records[0].t_end == 4

    def test_zone_change_splits(self, space):
        detector = ZoneDetector(space)
        fixes = [PositionFix(0, Point(5, 5), 0),
                 PositionFix(1, Point(5.5, 5), 0),
                 PositionFix(2, Point(15, 5), 0)]
        records = detector.detect("mo", fixes)
        assert [r.state for r in records] == ["z1", "z2"]

    def test_outside_fix_breaks_run(self, space):
        detector = ZoneDetector(space)
        fixes = [PositionFix(0, Point(5, 5), 0),
                 PositionFix(1, Point(50, 50), 0),
                 PositionFix(2, Point(5, 5), 0)]
        records = detector.detect("mo", fixes)
        assert len(records) == 2
        # The isolated single-fix runs have zero duration — exactly the
        # error records the paper's cleaning filters out.
        assert all(r.duration == 0 for r in records)

    def test_long_silence_splits(self, space):
        detector = ZoneDetector(space, max_fix_gap=60.0)
        fixes = [PositionFix(0, Point(5, 5), 0),
                 PositionFix(1000, Point(5, 5), 0)]
        records = detector.detect("mo", fixes)
        assert len(records) == 2

    def test_bad_fix_filtered(self, space):
        detector = ZoneDetector(space, max_error=5.0)
        fixes = [PositionFix(0, Point(5, 5), 0, error=100.0)]
        assert detector.detect("mo", fixes) == []

    def test_unordered_fixes_rejected(self, space):
        detector = ZoneDetector(space)
        fixes = [PositionFix(5, Point(5, 5), 0),
                 PositionFix(1, Point(5, 5), 0)]
        with pytest.raises(ValueError):
            detector.detect("mo", fixes)

    def test_wrong_floor_not_detected(self, space):
        detector = ZoneDetector(space)
        fixes = [PositionFix(0, Point(5, 5), floor=3)]
        assert detector.detect("mo", fixes) == []
