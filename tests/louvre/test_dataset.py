"""Tests for the statistics-calibrated dataset generator."""

from collections import Counter

import pytest

from repro.louvre.dataset import (
    DatasetParameters,
    LouvreDatasetGenerator,
    PAPER_STATISTICS,
)
from repro.louvre.zones import DATASET_ZONE_IDS


@pytest.fixture(scope="module")
def small_params():
    return DatasetParameters().scaled(0.02)


@pytest.fixture(scope="module")
def generated(louvre_space, small_params):
    generator = LouvreDatasetGenerator(louvre_space, small_params)
    return generator.generate()


class TestParameters:
    def test_default_visit_arithmetic(self):
        """3,228 + 737 + 2·490 = 4,945 and 737 + 2·490 = 1,717."""
        params = DatasetParameters()
        assert params.total_visits == PAPER_STATISTICS["visits"]
        assert params.two_visit_visitors \
            + 2 * params.three_visit_visitors \
            == PAPER_STATISTICS["repeat_visits"]
        assert params.two_visit_visitors + params.three_visit_visitors \
            == PAPER_STATISTICS["returning_visitors"]

    def test_scaled(self):
        scaled = DatasetParameters().scaled(0.1)
        assert scaled.visitors == 323
        assert scaled.total_detections == 2025 or \
            scaled.total_detections == 2024

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            DatasetParameters().scaled(0)
        with pytest.raises(ValueError):
            DatasetParameters().scaled(2.0)


class TestGeneratedCorpus:
    def test_exact_visit_count(self, generated, small_params):
        assert len(generated) == small_params.total_visits

    def test_exact_detection_count(self, generated, small_params):
        total = sum(len(v.records) for v in generated)
        assert total == small_params.total_detections

    def test_visitor_structure(self, generated, small_params):
        per_visitor = Counter(v.visitor_id for v in generated)
        assert len(per_visitor) == small_params.visitors
        assert Counter(per_visitor.values())[2] \
            == small_params.two_visit_visitors
        assert Counter(per_visitor.values())[3] \
            == small_params.three_visit_visitors

    def test_zero_duration_count(self, generated, small_params):
        zeros = sum(1 for v in generated for r in v.records
                    if r.duration == 0)
        assert zeros == small_params.zero_duration_detections

    def test_extreme_visit(self, generated, small_params):
        longest = max(v.duration for v in generated)
        assert longest == small_params.max_visit_duration
        longest_detection = max(r.duration for v in generated
                                for r in v.records)
        assert longest_detection == small_params.max_detection_duration

    def test_zero_duration_visit_exists(self, generated):
        assert any(v.duration == 0 for v in generated)

    def test_all_states_are_dataset_zones(self, generated):
        states = {r.state for v in generated for r in v.records}
        assert states <= set(DATASET_ZONE_IDS)

    def test_records_time_ordered_within_visit(self, generated):
        for visit in generated:
            times = [(r.t_start, r.t_end) for r in visit.records]
            assert times == sorted(times)
            for record in visit.records:
                assert record.t_end >= record.t_start

    def test_devices(self, generated):
        devices = {v.device for v in generated}
        assert devices == {"iPhone", "Android"}

    def test_visit_ids_unique(self, generated):
        ids = [v.visit_id for v in generated]
        assert len(set(ids)) == len(ids)

    def test_deterministic(self, louvre_space, small_params):
        a = LouvreDatasetGenerator(louvre_space, small_params).generate()
        b = LouvreDatasetGenerator(louvre_space, small_params).generate()
        assert [(v.visit_id, v.visitor_id,
                 [(r.state, r.t_start, r.t_end) for r in v.records])
                for v in a] \
            == [(v.visit_id, v.visitor_id,
                 [(r.state, r.t_start, r.t_end) for r in v.records])
                for v in b]

    def test_seed_changes_corpus(self, louvre_space, small_params):
        other = DatasetParameters(
            visitors=small_params.visitors,
            two_visit_visitors=small_params.two_visit_visitors,
            three_visit_visitors=small_params.three_visit_visitors,
            total_detections=small_params.total_detections,
            zero_duration_detections=(
                small_params.zero_duration_detections),
            seed=999)
        a = LouvreDatasetGenerator(louvre_space, small_params).generate()
        b = LouvreDatasetGenerator(louvre_space, other).generate()
        flat_a = [r.state for v in a for r in v.records]
        flat_b = [r.state for v in b for r in v.records]
        assert flat_a != flat_b

    def test_detection_records_flatten(self, louvre_space, generated,
                                       small_params):
        generator = LouvreDatasetGenerator(louvre_space, small_params)
        records = generator.detection_records(generated)
        assert len(records) == small_params.total_detections

    def test_timestamps_within_collection_window(self, generated,
                                                 small_params):
        from repro.core.timeutil import from_date
        start = from_date("19-01-2017")
        end = start + small_params.collection_days * 86400.0
        for visit in generated:
            for record in visit.records:
                assert start <= record.t_start <= end
