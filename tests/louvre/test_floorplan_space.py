"""Tests for the synthetic floorplan and the layered space model."""

import pytest

from repro.indoor.cells import OverlappingCellsError
from repro.louvre.floorplan import (
    MONA_LISA_ROI,
    SALLE_DES_ETATS_ROOM,
    LouvreFloorplan,
    WING_FOOTPRINTS,
    floor_cell_id,
    wing_cell_id,
)
from repro.louvre.zones import (
    WING_FLOORS,
    WINGS,
    ZONE_GRANDE_GALERIE,
    ZONE_SALLE_DES_ETATS,
    ZONES,
)
from repro.spatial.topology import TopologicalRelation, relate


@pytest.fixture(scope="module")
def floorplan(louvre_space):
    return louvre_space.floorplan


class TestFloorplanGeometry:
    def test_wing_footprints_disjoint_or_meet(self):
        names = list(WING_FOOTPRINTS)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                relation = relate(WING_FOOTPRINTS[a].to_polygon(),
                                  WING_FOOTPRINTS[b].to_polygon())
                assert relation in (TopologicalRelation.DISJOINT,
                                    TopologicalRelation.MEET)

    def test_napoleon_meets_every_wing(self):
        napoleon = WING_FOOTPRINTS["napoleon"].to_polygon()
        for other in ("denon", "richelieu", "sully"):
            assert relate(napoleon,
                          WING_FOOTPRINTS[other].to_polygon()) \
                is TopologicalRelation.MEET

    def test_18_wing_floors(self, floorplan):
        assert len(floorplan.floor_space) \
            == sum(len(floors) for floors in WING_FLOORS.values())

    def test_hundreds_of_rooms(self, floorplan):
        """'Layer 1 as a floor's rooms and halls (hundreds in total)'."""
        assert floorplan.room_count() \
            == sum(z.room_count for z in ZONES)
        assert floorplan.room_count() >= 150

    def test_hundreds_of_rois(self, floorplan):
        """'Layer 0 as a room's exhibits (several hundreds ...)'."""
        assert floorplan.roi_count() >= 200

    def test_rooms_partition_zone(self, floorplan):
        zone_cell = floorplan.zone_space.cell(ZONE_SALLE_DES_ETATS)
        total = sum(
            floorplan.room_space.cell(room_id).geometry.area()
            for room_id in floorplan.rooms_of_zone(ZONE_SALLE_DES_ETATS))
        assert total == pytest.approx(zone_cell.geometry.area())

    def test_rois_strictly_inside_rooms(self, floorplan):
        room = floorplan.room_space.cell(SALLE_DES_ETATS_ROOM)
        for roi_id in floorplan.rois_of_room(SALLE_DES_ETATS_ROOM):
            roi = floorplan.roi_space.cell(roi_id)
            assert relate(room.geometry, roi.geometry) \
                is TopologicalRelation.CONTAINS

    def test_mona_lisa_exists(self, floorplan):
        roi = floorplan.roi_space.cell(MONA_LISA_ROI)
        assert roi.name == "Mona Lisa"
        assert roi.attribute("room") == SALLE_DES_ETATS_ROOM

    def test_salle_des_etats_named(self, floorplan):
        room = floorplan.room_space.cell(SALLE_DES_ETATS_ROOM)
        assert room.name == "Salle des États"

    def test_geometry_validation_passes(self):
        """Building with strict non-overlap validation succeeds."""
        LouvreFloorplan(validate_geometry=True)


class TestLouvreSpace:
    def test_six_layers(self, louvre_space):
        assert louvre_space.graph.layer_names == (
            "louvre-museum", "wings", "floors", "zones", "rooms",
            "rois")

    def test_mlsm_invariants(self, louvre_space):
        assert louvre_space.graph.validate() == []

    def test_core_hierarchy_valid(self, louvre_space):
        assert louvre_space.core_hierarchy.validate() == []
        assert louvre_space.core_hierarchy.has_core_roles()

    def test_zone_hierarchy_valid(self, louvre_space):
        assert louvre_space.zone_hierarchy.validate() == []
        assert louvre_space.zone_hierarchy.depth == 2

    def test_every_zone_has_floor_parent(self, louvre_space):
        assert louvre_space.zone_hierarchy.orphans("zones") == []

    def test_every_room_has_floor_parent(self, louvre_space):
        assert louvre_space.core_hierarchy.orphans("rooms") == []

    def test_lift_zone_to_floor_and_wing(self, louvre_space):
        floor = louvre_space.zone_hierarchy.lift(ZONE_SALLE_DES_ETATS,
                                                 "floors")
        assert floor == floor_cell_id("denon", 1)
        # The floor lifts further through the core hierarchy.
        wing = louvre_space.core_hierarchy.lift(floor, "wings")
        assert wing == wing_cell_id("denon")

    def test_mona_lisa_full_chain(self, louvre_space):
        chain = louvre_space.core_hierarchy.ancestors(MONA_LISA_ROI)
        assert chain == [SALLE_DES_ETATS_ROOM,
                         floor_cell_id("denon", 1),
                         wing_cell_id("denon"),
                         "louvre"]

    def test_salle_des_etats_one_way_room_door(self, louvre_space):
        rooms = louvre_space.graph.layer("rooms")
        salle_rooms = louvre_space.floorplan.rooms_of_zone(
            ZONE_SALLE_DES_ETATS)
        galerie_rooms = louvre_space.floorplan.rooms_of_zone(
            ZONE_GRANDE_GALERIE)
        exit_ok = rooms.has_transition(salle_rooms[-1],
                                       galerie_rooms[0])
        entry_blocked = not rooms.has_transition(galerie_rooms[0],
                                                 salle_rooms[-1])
        assert exit_ok and entry_blocked

    def test_zone_attractions(self, louvre_space):
        attractions = louvre_space.zone_attractions()
        assert len(attractions) == 52
        assert attractions[ZONE_SALLE_DES_ETATS] \
            == max(attractions.values())

    def test_exit_and_entrance_zones(self, louvre_space):
        assert louvre_space.exit_zones() == ["zone60891"]
        assert "zone60886" in louvre_space.entrance_zones()

    def test_zone_of_room(self, louvre_space):
        assert louvre_space.zone_of_room(SALLE_DES_ETATS_ROOM) \
            == ZONE_SALLE_DES_ETATS

    def test_summary_counts(self, louvre_space):
        summary = louvre_space.summary()
        assert summary["zones:nodes"] == 52
        assert summary["wings:nodes"] == 4
        assert summary["louvre-museum:nodes"] == 1
        assert summary["joint_edges"] > 0

    def test_valid_overall_state(self, louvre_space):
        assert louvre_space.graph.is_valid_overall_state({
            "rooms": SALLE_DES_ETATS_ROOM,
            "zones": ZONE_SALLE_DES_ETATS,
        })
        assert not louvre_space.graph.is_valid_overall_state({
            "rooms": SALLE_DES_ETATS_ROOM,
            "zones": "zone60886",
        })
