"""Tests for the zone table and accessibility topology (Section 4.1)."""

from collections import Counter

from repro.louvre.zones import (
    DATASET_ZONE_IDS,
    GROUND_FLOOR_ZONE_IDS,
    WING_FLOORS,
    WINGS,
    ZONE_C,
    ZONE_E,
    ZONE_ENTRANCE,
    ZONE_P,
    ZONE_S,
    ZONE_SALLE_DES_ETATS,
    ZONES,
    ZONES_BY_ID,
    zone_accessibility_edges,
)


class TestZoneTable:
    def test_exactly_52_zones(self):
        """'raw geometric positions have already been spatially
        aggregated into 52 non-overlapping zones'."""
        assert len(ZONES) == 52
        assert len(ZONES_BY_ID) == 52  # ids unique

    def test_exactly_30_dataset_zones(self):
        """Figure 6 depicts 'the 30 zones present in the dataset'."""
        assert len(DATASET_ZONE_IDS) == 30

    def test_exactly_11_ground_floor_zones(self):
        """Figure 3: 'the Louvre's 11 ground floor polygonal zones'."""
        assert len(GROUND_FLOOR_ZONE_IDS) == 11

    def test_ground_floor_zones_all_in_dataset(self):
        """The choropleth shows detections in every ground-floor zone."""
        assert set(GROUND_FLOOR_ZONE_IDS) <= set(DATASET_ZONE_IDS)

    def test_single_floor_per_zone(self):
        """Zones 'only extend within a single floor'."""
        for zone in ZONES:
            assert zone.floor in WING_FLOORS[zone.wing]

    def test_four_areas(self):
        assert set(WINGS) == {"richelieu", "sully", "denon", "napoleon"}
        assert {z.wing for z in ZONES} == set(WINGS)

    def test_napoleon_lower_levels_only(self):
        assert WING_FLOORS["napoleon"] == (-2, -1, 0)

    def test_paper_named_zones(self):
        assert ZONES_BY_ID[ZONE_E].attributes["letter"] == "E"
        assert ZONES_BY_ID[ZONE_E].attributes[
            "requires_separate_ticket"] is True
        assert ZONES_BY_ID[ZONE_P].attributes["letter"] == "P"
        assert ZONES_BY_ID[ZONE_S].attributes["shops"] is True
        assert ZONES_BY_ID[ZONE_C].attributes["exit"] is True
        assert all(ZONES_BY_ID[z].floor == -2
                   for z in (ZONE_E, ZONE_P, ZONE_S, ZONE_C))

    def test_salle_des_etats_zone(self):
        zone = ZONES_BY_ID[ZONE_SALLE_DES_ETATS]
        assert zone.wing == "denon"
        assert zone.floor == 1
        assert zone.attributes["mona_lisa"] is True

    def test_theme_uniqueness(self):
        themes = [z.theme for z in ZONES]
        assert len(set(themes)) == len(themes)


class TestTopology:
    def test_endpoints_exist(self):
        for src, dst, _, _, _ in zone_accessibility_edges():
            assert src in ZONES_BY_ID
            assert dst in ZONES_BY_ID

    def test_boundary_ids_unique(self):
        ids = [e[4] for e in zone_accessibility_edges()]
        assert len(set(ids)) == len(ids)

    def test_paper_chain_present(self):
        """The E→P→S→C chain of Figures 5/6."""
        pairs = {(e[0], e[1]) for e in zone_accessibility_edges()}
        assert (ZONE_E, ZONE_P) in pairs
        assert (ZONE_P, ZONE_S) in pairs
        assert (ZONE_S, ZONE_C) in pairs

    def test_carrousel_exit_one_way(self):
        edges = {(e[0], e[1]): e[2] for e in zone_accessibility_edges()}
        assert edges[(ZONE_S, ZONE_C)] is False  # no re-entry

    def test_checkpoint002_names_e_to_p(self):
        """The paper's inferred tuple crosses 'checkpoint002'."""
        for src, dst, _, kind, boundary_id in zone_accessibility_edges():
            if boundary_id == "checkpoint002":
                assert {src, dst} == {ZONE_E, ZONE_P}
                assert kind == "checkpoint"
                return
        raise AssertionError("checkpoint002 missing")

    def test_dataset_zones_connected(self, louvre_space):
        nrg = louvre_space.dataset_zone_nrg()
        reachable = nrg.reachable_from(ZONE_ENTRANCE)
        # Every dataset zone is reachable from the pyramid entrance.
        assert reachable == set(DATASET_ZONE_IDS)

    def test_all_52_zones_in_full_nrg(self, louvre_space):
        assert len(louvre_space.zone_nrg) == 52
