"""Tests for sparse-visit restructuring (Section 5 future work)."""

import pytest

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.core.timeutil import from_date
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.louvre.restructure import (
    IndicativeVisit,
    StitchReport,
    indicative_visits,
    stitch_fragments,
)
from repro.louvre.zones import ZONE_E, ZONE_ENTRANCE, ZONE_P, ZONE_S


EPOCH = from_date("19-01-2017")


def fragment(mo_id, states, start, dwell=300.0, gap=60.0):
    entries = []
    t = start
    previous = None
    for state in states:
        transition = None if previous is None \
            else "unobserved:{}->{}".format(previous, state)
        entries.append(TraceEntry(transition, state, t, t + dwell))
        t += dwell + gap
        previous = state
    return SemanticTrajectory(mo_id, Trace(entries),
                              AnnotationSet.goals("visit"))


class TestStitching:
    def test_same_day_fragments_merge(self, louvre_space):
        nrg = louvre_space.dataset_zone_nrg()
        day = EPOCH + 9 * 3600
        fragments = [
            fragment("v1", [ZONE_ENTRANCE, ZONE_E], day),
            fragment("v1", [ZONE_S], day + 4000.0),
        ]
        report = StitchReport()
        stitched = stitch_fragments(fragments, nrg, epoch=EPOCH,
                                    report=report)
        assert len(stitched) == 1
        assert report.fragments_joined == 1
        sequence = stitched[0].distinct_state_sequence()
        # The seam E → S is explained through P (the Figure 6 chain).
        assert sequence == [ZONE_ENTRANCE, ZONE_E, ZONE_P, ZONE_S]

    def test_inferred_seam_annotated(self, louvre_space):
        nrg = louvre_space.dataset_zone_nrg()
        day = EPOCH + 9 * 3600
        stitched = stitch_fragments([
            fragment("v1", [ZONE_E], day),
            fragment("v1", [ZONE_S], day + 2000.0),
        ], nrg, epoch=EPOCH)
        inferred = [e for e in stitched[0].trace
                    if e.annotations.has(AnnotationKind.PROVENANCE,
                                         "inferred")]
        assert [e.state for e in inferred] == [ZONE_P]

    def test_different_days_stay_apart(self, louvre_space):
        nrg = louvre_space.dataset_zone_nrg()
        stitched = stitch_fragments([
            fragment("v1", [ZONE_E], EPOCH + 9 * 3600),
            fragment("v1", [ZONE_S], EPOCH + 86400 + 9 * 3600),
        ], nrg, epoch=EPOCH)
        assert len(stitched) == 2

    def test_different_visitors_stay_apart(self, louvre_space):
        nrg = louvre_space.dataset_zone_nrg()
        day = EPOCH + 9 * 3600
        stitched = stitch_fragments([
            fragment("v1", [ZONE_E], day),
            fragment("v2", [ZONE_S], day + 2000.0),
        ], nrg, epoch=EPOCH)
        assert len(stitched) == 2

    def test_corpus_stitching_increases_density(self, louvre_space,
                                                small_trajectories):
        nrg = louvre_space.dataset_zone_nrg()
        report = StitchReport()
        stitched = stitch_fragments(small_trajectories, nrg,
                                    epoch=EPOCH, report=report)
        assert report.stitched_visits <= report.input_trajectories
        input_entries = sum(len(t.trace) for t in small_trajectories)
        output_entries = sum(len(t.trace) for t in stitched)
        # Inference only ever adds presence tuples.
        assert output_entries >= input_entries
        assert report.inference.tuples_inserted \
            == output_entries - input_entries


class TestIndicativeVisits:
    def _stitched_corpus(self, louvre_space):
        nrg = louvre_space.dataset_zone_nrg()
        day = EPOCH + 9 * 3600
        fragments = []
        # Two families of routes, repeated with small time offsets.
        for i in range(4):
            fragments.append(fragment(
                "a{}".format(i), [ZONE_ENTRANCE, ZONE_E, ZONE_P],
                day + i * 86400))
            fragments.append(fragment(
                "b{}".format(i),
                [ZONE_ENTRANCE, "zone60848", "zone60860"],
                day + i * 86400))
        return stitch_fragments(fragments, nrg, epoch=EPOCH)

    def test_recovers_route_families(self, louvre_space):
        stitched = self._stitched_corpus(louvre_space)
        visits = indicative_visits(stitched, k=2, seed=3)
        assert len(visits) == 2
        assert {v.cluster_size for v in visits} == {4}
        sequences = {v.sequence for v in visits}
        assert (ZONE_ENTRANCE, ZONE_E, ZONE_P) in sequences

    def test_hierarchy_aware_distance(self, louvre_space):
        stitched = self._stitched_corpus(louvre_space)
        visits = indicative_visits(stitched, k=2,
                                   hierarchy=louvre_space.zone_hierarchy,
                                   seed=3)
        assert sum(v.cluster_size for v in visits) == len(stitched)
        assert all(0.0 <= v.mean_similarity <= 1.0 for v in visits)

    def test_too_few_visits_rejected(self, louvre_space):
        stitched = self._stitched_corpus(louvre_space)[:1]
        with pytest.raises(ValueError):
            indicative_visits(stitched, k=5)

    def test_sorted_by_cluster_size(self, louvre_space,
                                    small_trajectories):
        nrg = louvre_space.dataset_zone_nrg()
        stitched = stitch_fragments(small_trajectories, nrg,
                                    epoch=EPOCH)
        visits = indicative_visits(stitched, k=3, seed=1)
        sizes = [v.cluster_size for v in visits]
        assert sizes == sorted(sizes, reverse=True)
