"""Venue grammar: validity, determinism, token revival, duck typing."""

import pytest

from repro.indoor.navigation import RoutePlanner
from repro.synth.venues import (
    ARCHETYPES,
    SyntheticVenue,
    VenueSpec,
    generate_venue,
    venue_from_token,
)


@pytest.fixture(scope="module", params=sorted(ARCHETYPES))
def venue(request) -> SyntheticVenue:
    return generate_venue(VenueSpec(archetype=request.param, seed=7))


class TestValidity:
    def test_validates_clean(self, venue):
        assert venue.validate() == []

    def test_every_room_reachable_by_planner(self, venue):
        assert venue.plan_all_rooms() > 0

    def test_every_room_can_reach_exit(self, venue):
        planner = RoutePlanner(venue.nrg)
        exit_cell = venue.exits[0]
        for node in venue.nrg.nodes:
            if node != exit_cell:
                assert planner.plan(node, exit_cell).hop_count >= 1

    def test_hierarchy_has_three_roles(self, venue):
        assert list(venue.hierarchy.layers) == \
            ["venue", "floors", "rooms"]

    def test_beacon_per_cell(self, venue):
        assert len(venue.beacons) == venue.room_count

    def test_entrance_and_exit_on_ground_floor(self, venue):
        assert venue.entrances and venue.exits
        assert venue.entrances[0].startswith("f0")
        assert venue.exits[0].startswith("f0")

    def test_hotspots_draw_extra_weight(self, venue):
        weights = set(venue.zone_attractions().values())
        assert 1.0 in weights
        assert max(weights) == venue.grammar.hotspot_weight


class TestDeterminism:
    def test_same_seed_same_venue(self, venue):
        again = generate_venue(venue.spec)
        assert again.summary() == venue.summary()
        assert ([(e.source, e.target) for e in again.nrg.edges]
                == [(e.source, e.target) for e in venue.nrg.edges])

    def test_different_seed_different_venue(self, venue):
        other = generate_venue(VenueSpec(
            archetype=venue.spec.archetype, seed=8))
        assert other.summary() != venue.summary()


class TestTokens:
    def test_round_trip(self, venue):
        revived = venue_from_token(venue.persist_token)
        assert revived.summary() == venue.summary()

    def test_overrides_survive_the_token(self):
        venue = generate_venue(VenueSpec(
            archetype="museum", seed=3, floors=2, rooms_per_floor=4))
        assert venue.floors == 2
        revived = venue_from_token(venue.persist_token)
        assert revived.summary() == venue.summary()

    @pytest.mark.parametrize("token", [
        "SyntheticVenue:museum:1",
        "NotAVenue:museum:1:-:-",
        "SyntheticVenue:atlantis:1:-:-",
        "SyntheticVenue:museum:x:-:-",
    ])
    def test_malformed_token_raises(self, token):
        with pytest.raises(ValueError):
            venue_from_token(token)


class TestSpecValidation:
    def test_unknown_archetype(self):
        with pytest.raises(ValueError, match="archetype"):
            VenueSpec(archetype="atlantis")

    def test_bad_overrides(self):
        with pytest.raises(ValueError):
            VenueSpec(archetype="museum", floors=0)
        with pytest.raises(ValueError):
            VenueSpec(archetype="museum", rooms_per_floor=1)


class TestDuckTyping:
    """The surface the walker, builder and server consume."""

    def test_dataset_zone_nrg_is_rooms_layer(self, venue):
        nrg = venue.dataset_zone_nrg()
        assert set(nrg.nodes) == set(venue.graph.layer("rooms").nodes)

    def test_zone_hierarchy_alias(self, venue):
        assert venue.zone_hierarchy is venue.hierarchy

    def test_entrance_exit_zone_lists(self, venue):
        assert venue.entrance_zones() == venue.entrances
        assert venue.exit_zones() == venue.exits

    def test_airport_checkpoint_is_one_way_pair(self):
        venue = generate_venue(VenueSpec(archetype="airport", seed=7,
                                         floors=1,
                                         rooms_per_floor=12))
        # Two corridor rows joined by opposed one-way checkpoints:
        # both directions exist as distinct directed edges, and the
        # overall graph still validates strongly connected.
        assert venue.validate() == []
