"""Crowd synthesis: determinism, ordering, bounded buffering."""

import os
import subprocess
import sys

import pytest

from repro.synth import CrowdSpec, CrowdSynthesizer, VenueSpec, generate_venue
from repro.synth.crowd import event_row, stream_digest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(scope="module")
def venue():
    return generate_venue(VenueSpec(archetype="museum", seed=7))


def digest_of(venue, spec: CrowdSpec) -> str:
    return stream_digest(CrowdSynthesizer(venue, spec).iter_events())


class TestDeterminism:
    def test_same_spec_same_digest(self, venue):
        spec = CrowdSpec(agents=300, seed=42, agents_per_day=100)
        assert digest_of(venue, spec) == digest_of(venue, spec)

    def test_seed_changes_digest(self, venue):
        base = CrowdSpec(agents=120, seed=42, agents_per_day=60)
        other = CrowdSpec(agents=120, seed=43, agents_per_day=60)
        assert digest_of(venue, base) != digest_of(venue, other)

    def test_bucketing_does_not_change_the_stream(self, venue):
        # agents_per_day is a memory knob, not a semantic one: the
        # same agents land in the same order regardless of bucket
        # size, because per-agent seeds depend only on the index and
        # cross-day order is given by the arrival times.
        one_day = CrowdSpec(agents=80, seed=5, agents_per_day=80)
        many_days = CrowdSpec(agents=80, seed=5, agents_per_day=80)
        assert digest_of(venue, one_day) == digest_of(venue, many_days)

    def test_byte_identical_across_processes(self, venue):
        """The digest survives a fresh interpreter with a different
        PYTHONHASHSEED — i.e. nothing in the generation path hashes
        strings for randomness."""
        spec = CrowdSpec(agents=150, seed=42, agents_per_day=50)
        local = digest_of(venue, spec)
        script = (
            "from repro.synth import (CrowdSpec, CrowdSynthesizer, "
            "VenueSpec, generate_venue)\n"
            "from repro.synth.crowd import stream_digest\n"
            "venue = generate_venue(VenueSpec(archetype='museum', "
            "seed=7))\n"
            "spec = CrowdSpec(agents=150, seed=42, "
            "agents_per_day=50)\n"
            "print(stream_digest(CrowdSynthesizer(venue, spec)"
            ".iter_events()))\n")
        env = dict(os.environ, PYTHONHASHSEED="1234",
                   PYTHONPATH=REPO_SRC)
        output = subprocess.run(
            [sys.executable, "-c", script], env=env, check=True,
            capture_output=True, text=True).stdout.strip()
        assert output == local


class TestStreamShape:
    def test_event_time_ordered(self, venue):
        spec = CrowdSpec(agents=200, seed=1, agents_per_day=60)
        events = list(CrowdSynthesizer(venue, spec).iter_events())
        keys = [(e.t_start, e.t_end, e.mo_id) for e in events]
        assert keys == sorted(keys)

    def test_every_agent_appears(self, venue):
        spec = CrowdSpec(agents=120, seed=3, agents_per_day=50)
        events = list(CrowdSynthesizer(venue, spec).iter_events())
        assert len({e.mo_id for e in events}) == 120

    def test_states_are_venue_cells(self, venue):
        spec = CrowdSpec(agents=60, seed=3, agents_per_day=60)
        cells = set(venue.nrg.nodes)
        for event in CrowdSynthesizer(venue, spec).iter_events():
            assert event.state in cells

    def test_profile_attribute_carried(self, venue):
        spec = CrowdSpec(agents=30, seed=3, agents_per_day=30)
        for event in CrowdSynthesizer(venue, spec).iter_events():
            assert event.attributes["profile"]

    def test_peak_buffered_bounded_by_day_bucket(self, venue):
        """The memory gauge: generating 10x more agents with the
        same bucket size must not grow the peak buffer."""
        small = CrowdSynthesizer(venue, CrowdSpec(
            agents=100, seed=9, agents_per_day=100))
        for _ in small.iter_events():
            pass
        large = CrowdSynthesizer(venue, CrowdSpec(
            agents=1000, seed=9, agents_per_day=100))
        for _ in large.iter_events():
            pass
        # Different agent subsets per day, so allow headroom — but
        # the order of magnitude must stay the bucket's, not the
        # crowd's.
        assert large.peak_buffered < 3 * small.peak_buffered

    def test_provenance_names_both_seeds(self, venue):
        crowd = CrowdSynthesizer(venue, CrowdSpec(
            agents=10, seed=6, agents_per_day=10))
        provenance = crowd.provenance()
        assert provenance["venue_seed"] == 7
        assert provenance["crowd_seed"] == 6
        assert provenance["archetype"] == "museum"
        assert provenance["agents"] == 10


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"agents": 0},
        {"agents": 10, "agents_per_day": 0},
        {"agents": 10, "open_hour": 9, "close_hour": 9},
        {"agents": 10, "open_hour": -1},
        {"agents": 10, "close_hour": 25},
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            CrowdSpec(**kwargs)

    def test_days_rounds_up(self):
        assert CrowdSpec(agents=101, agents_per_day=50).days == 3


class TestEventRow:
    def test_row_round_trips_floats_exactly(self, venue):
        spec = CrowdSpec(agents=5, seed=2, agents_per_day=5)
        record = next(iter(
            CrowdSynthesizer(venue, spec).iter_events()))
        row = event_row(record).decode("utf-8")
        mo_id, state, t_start, t_end, visit_id = \
            row.rstrip("\n").split(",")
        assert float(t_start) == record.t_start
        assert float(t_end) == record.t_end
        assert mo_id == record.mo_id
