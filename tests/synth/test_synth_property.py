"""Hypothesis properties of the synthesis subsystem.

The ISSUE-level guarantees, stated as properties over the whole
parameter space rather than example venues:

* every venue the grammar can emit passes the full SITM validation
  stack (CellSpace geometry, layered-graph rules, hierarchy rules)
  and is completely RoutePlanner-reachable from its entrance;
* a (venue seed, crowd seed) pair determines the crowd stream
  byte-identically;
* crowd streams are globally event-time ordered for any bucketing.
"""

from hypothesis import given, settings, strategies as st

from repro.synth import (
    ARCHETYPES,
    CrowdSpec,
    CrowdSynthesizer,
    VenueSpec,
    generate_venue,
)
from repro.synth.crowd import stream_digest

venue_specs = st.builds(
    VenueSpec,
    archetype=st.sampled_from(sorted(ARCHETYPES)),
    seed=st.integers(0, 2**32 - 1),
    floors=st.one_of(st.none(), st.integers(1, 4)),
    rooms_per_floor=st.one_of(st.none(), st.integers(2, 12)),
)


@settings(max_examples=20, deadline=None)
@given(spec=venue_specs)
def test_every_generated_venue_is_valid_and_reachable(spec):
    venue = generate_venue(spec)
    assert venue.validate() == []
    # The planner-level (stronger) form: raises on any unreachable
    # room, and every room needs at least one hop from the entrance.
    assert venue.plan_all_rooms() >= venue.room_count - 1


@settings(max_examples=10, deadline=None)
@given(
    venue_seed=st.integers(0, 2**16),
    crowd_seed=st.integers(0, 2**16),
    agents=st.integers(1, 60),
    agents_per_day=st.integers(1, 60),
)
def test_crowd_stream_is_seed_deterministic(venue_seed, crowd_seed,
                                            agents, agents_per_day):
    venue = generate_venue(VenueSpec(archetype="museum",
                                     seed=venue_seed,
                                     floors=2, rooms_per_floor=4))
    spec = CrowdSpec(agents=agents, seed=crowd_seed,
                     agents_per_day=agents_per_day)
    first = stream_digest(CrowdSynthesizer(venue, spec).iter_events())
    second = stream_digest(
        CrowdSynthesizer(venue, spec).iter_events())
    assert first == second


@settings(max_examples=10, deadline=None)
@given(
    crowd_seed=st.integers(0, 2**16),
    agents=st.integers(2, 80),
    agents_per_day=st.integers(1, 40),
)
def test_crowd_stream_is_event_time_ordered(crowd_seed, agents,
                                            agents_per_day):
    venue = generate_venue(VenueSpec(archetype="airport", seed=1,
                                     floors=1, rooms_per_floor=6))
    spec = CrowdSpec(agents=agents, seed=crowd_seed,
                     agents_per_day=agents_per_day)
    keys = [(e.t_start, e.t_end, e.mo_id)
            for e in CrowdSynthesizer(venue, spec).iter_events()]
    assert keys == sorted(keys)
