"""`repro synth ...` CLI: venue cards, crowd digests, live replay."""

import json

import pytest

from repro.cli import main
from repro.service.aserver import AsyncServiceServer
from repro.service.registry import SessionRegistry


@pytest.fixture(scope="module")
def server_url():
    server = AsyncServiceServer(SessionRegistry(), port=0).start()
    try:
        yield server.url
    finally:
        server.stop()


class TestSynthVenue:
    def test_card(self, capsys):
        assert main(["synth", "venue", "--archetype", "museum",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "floor(s)" in out
        assert "route hops:" in out

    def test_json_is_valid_and_routed(self, capsys):
        assert main(["synth", "venue", "--archetype", "stadium",
                     "--seed", "3", "--json"]) == 0
        card = json.loads(capsys.readouterr().out)
        assert card["valid"] is True
        assert card["problems"] == []
        assert card["route_hops"] > 0

    def test_overrides_reach_the_generator(self, capsys):
        assert main(["synth", "venue", "--archetype", "hospital",
                     "--seed", "1", "--floors", "2",
                     "--rooms-per-floor", "5", "--json"]) == 0
        card = json.loads(capsys.readouterr().out)
        assert card["floors"] == 2

    def test_unknown_archetype_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["synth", "venue", "--archetype", "atlantis"])


class TestSynthCrowd:
    def run_json(self, capsys, *extra):
        code = main(["synth", "crowd", "--archetype", "museum",
                     "--seed", "7", "--agents", "200",
                     "--crowd-seed", "42", "--agents-per-day", "100",
                     "--json", *extra])
        assert code == 0
        return json.loads(capsys.readouterr().out)

    def test_digest_is_reproducible(self, capsys):
        first = self.run_json(capsys)
        second = self.run_json(capsys)
        assert first["digest"] == second["digest"]
        assert first["events"] == second["events"] > 0
        assert first["days"] == 2
        assert first["peak_buffered"] >= 1

    def test_provenance_in_payload(self, capsys):
        card = self.run_json(capsys)
        assert card["generator"] == "synth"
        assert card["archetype"] == "museum"
        assert card["venue_seed"] == 7
        assert card["crowd_seed"] == 42
        assert card["agents"] == 200

    def test_out_writes_csv(self, capsys, tmp_path):
        path = tmp_path / "crowd.csv"
        card = self.run_json(capsys, "--out", str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == card["events"] + 1  # header row

    def test_human_output_names_digest(self, capsys):
        assert main(["synth", "crowd", "--archetype", "airport",
                     "--seed", "2", "--agents", "50",
                     "--agents-per-day", "50"]) == 0
        out = capsys.readouterr().out
        assert "digest: sha256:" in out
        assert "50 agent(s)" in out


class TestSynthReplay:
    def replay(self, capsys, server_url, mode, session, *extra):
        code = main(["synth", "replay", "--url", server_url,
                     "--archetype", "museum", "--seed", "7",
                     "--agents", "80", "--crowd-seed", "42",
                     "--agents-per-day", "40", "--session", session,
                     "--mode", mode, "--json", *extra])
        assert code == 0
        return json.loads(capsys.readouterr().out)

    def test_batch_mode(self, capsys, server_url):
        payload = self.replay(capsys, server_url, "batch",
                              "cli-batch")
        assert payload["errors"] == 0
        assert payload["episodes"] == 80
        assert payload["server"]["delivery_ok"] is True
        assert payload["provenance"]["crowd_seed"] == 42

    def test_stream_mode(self, capsys, server_url):
        payload = self.replay(capsys, server_url, "stream",
                              "cli-stream")
        assert payload["errors"] == 0
        assert payload["server"]["events_acked"] == payload["events"]
        assert payload["server"]["delivery_ok"] is True

    def test_queries_mode(self, capsys, server_url):
        payload = self.replay(capsys, server_url, "queries",
                              "cli-batch", "--queries", "9")
        assert payload["ok"] == 9
        assert payload["errors"] == 0

    def test_unreachable_server_fails_cleanly(self, capsys):
        code = main(["synth", "replay", "--url",
                     "http://127.0.0.1:1", "--agents", "5",
                     "--agents-per-day", "5", "--timeout", "2"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
