"""TrafficReplayer against a real asyncio front-end.

The CI-gating guarantees live here: a synthesized crowd replayed as
batch ingest and as an AppendEvents stream must land *identical*
store content with zero failed requests, and the session health
roster must account for every accepted document.
"""

import time

import pytest

from repro.service import protocol as P
from repro.service.aserver import AsyncServiceServer
from repro.service.client import ServiceClient
from repro.service.registry import SessionRegistry
from repro.synth import (
    CrowdSpec,
    CrowdSynthesizer,
    TrafficReplayer,
    VenueSpec,
    generate_venue,
)

SPEC = CrowdSpec(agents=150, seed=42, agents_per_day=75)


@pytest.fixture(scope="module")
def venue():
    return generate_venue(VenueSpec(archetype="museum", seed=7))


@pytest.fixture(scope="module")
def service():
    registry = SessionRegistry()
    server = AsyncServiceServer(registry, port=0).start()
    client = ServiceClient(server.url)
    try:
        yield client, registry
    finally:
        client.close()
        server.stop()


def canonical_store(registry, session):
    store = registry.get(session).workbench.store
    return sorted(repr(sorted(t.to_dict().items())) for t in store)


class TestEndToEnd:
    def test_batch_and_stream_land_identical_content(self, service,
                                                     venue):
        client, registry = service
        batch = TrafficReplayer(client, "e2e-batch", venue, chunk=64)
        report_b = batch.verify_delivery(batch.replay_batch(
            CrowdSynthesizer(venue, SPEC).iter_events()))
        stream = TrafficReplayer(client, "e2e-stream", venue,
                                 chunk=64)
        report_s = stream.verify_delivery(stream.replay_stream(
            CrowdSynthesizer(venue, SPEC).iter_events()))

        assert report_b.errors == 0 and report_b.shed == 0
        assert report_s.errors == 0 and report_s.shed == 0
        assert report_b.events == report_s.events
        assert report_b.episodes == report_s.episodes == SPEC.agents
        assert report_b.server["delivery_ok"]
        assert report_s.server["delivery_ok"]
        assert canonical_store(registry, "e2e-batch") \
            == canonical_store(registry, "e2e-stream")

    def test_health_counts_batch_ingest(self, service, venue):
        client, _ = service
        health = client.health()
        entry = {item["name"]: item
                 for item in health["sessions"]}["e2e-batch"]
        assert entry["ingest"]["accepted"] == SPEC.agents
        assert entry["ingest"]["rejected"] == 0

    def test_health_counts_rejected_docs(self, service, venue):
        client, _ = service
        with pytest.raises(P.ServiceError):
            client.ingest_documents("e2e-reject",
                                    [{"not": "a trajectory"}])
        health = client.health()
        entry = {item["name"]: item
                 for item in health["sessions"]}["e2e-reject"]
        assert entry["ingest"]["rejected"] == 1
        assert entry["ingest"]["accepted"] == 0

    def test_query_mix_over_loaded_session(self, service, venue):
        client, _ = service
        replayer = TrafficReplayer(client, "e2e-batch", venue,
                                   rate=500.0)
        report = replayer.replay_queries(12)
        assert report.ok == 12
        assert report.errors == 0
        assert report.latencies_ms["p50"] >= 0.0

    def test_paced_batch_respects_rate(self, service, venue):
        client, _ = service
        spec = CrowdSpec(agents=40, seed=2, agents_per_day=40)
        replayer = TrafficReplayer(client, "e2e-paced", venue,
                                   rate=2000.0, chunk=50)
        started = time.perf_counter()
        report = replayer.replay_batch(
            CrowdSynthesizer(venue, spec).iter_events())
        elapsed = time.perf_counter() - started
        # ~200 events at 2000 ev/s in 50-event slots ≈ 0.1s floor.
        assert report.events > 100
        assert elapsed >= (report.events - 50) / 2000.0

    def test_stream_session_revives_venue_space(self, service,
                                                venue):
        """The stream path must segment against the *venue's* NRG —
        a session primed with the venue token gets a revived space
        whose states match the crowd's."""
        _, registry = service
        session = registry.get("e2e-stream")
        assert session.workbench.space is not None
        assert set(session.workbench.space.dataset_zone_nrg().nodes) \
            == set(venue.nrg.nodes)


class TestChunking:
    def test_watermarks_are_next_chunk_first_start(self, venue):
        replayer = TrafficReplayer(object(), "x", venue, chunk=3)
        events = list(CrowdSynthesizer(
            venue, CrowdSpec(agents=4, seed=1,
                             agents_per_day=4)).iter_events())
        chunks = list(replayer._chunks(iter(events)))
        assert sum(len(chunk) for chunk, _ in chunks) == len(events)
        for (chunk, watermark), (following, _) in zip(chunks,
                                                      chunks[1:]):
            assert watermark == following[0].t_start
        assert chunks[-1][1] is None

    def test_chunk_must_be_positive(self, venue):
        with pytest.raises(ValueError):
            TrafficReplayer(object(), "x", venue, chunk=0)


class _SheddingClient:
    """Stub: sheds the first N calls with 503, then succeeds."""

    def __init__(self, shed_first: int):
        self.shed_left = shed_first
        self.calls = 0

    def ingest_documents(self, session, docs, space=None):
        self.calls += 1
        if self.shed_left > 0:
            self.shed_left -= 1
            raise P.ServiceError("overloaded", "busy",
                                 http_status=503)
        return P.Ingested(session=session, count=len(docs),
                          total=len(docs))


class TestShedHandling:
    def test_ingest_retries_shed_chunks(self, venue):
        from repro.synth.replayer import ReplayReport

        client = _SheddingClient(shed_first=2)
        replayer = TrafficReplayer(client, "x", venue)
        report = ReplayReport(mode="batch", session="x")
        replayer._ingest([{"doc": 1}], report,
                         time.perf_counter(), [])
        assert client.calls == 3
        assert report.shed == 2
        assert report.ok == 1
        assert report.errors == 0
        assert report.episodes == 1

    def test_non_shed_errors_propagate(self, venue):
        from repro.synth.replayer import ReplayReport

        class FailingClient:
            def ingest_documents(self, session, docs, space=None):
                raise P.ServiceError("bad_request", "nope",
                                     http_status=400)

        replayer = TrafficReplayer(FailingClient(), "x", venue)
        report = ReplayReport(mode="batch", session="x")
        with pytest.raises(P.ServiceError):
            replayer._ingest([{"doc": 1}], report,
                             time.perf_counter(), [])
        assert report.errors == 1
        assert report.shed == 0
