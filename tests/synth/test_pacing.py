"""ArrivalSchedule: open-loop slots, unpaced mode, splitting."""

import time

import pytest

from repro.synth.pacing import ArrivalSchedule


class TestPaced:
    def test_interval(self):
        assert ArrivalSchedule(rate=200.0).interval == 0.005

    def test_intended_times_are_evenly_spaced(self):
        schedule = ArrivalSchedule(rate=1000.0)
        base = schedule.intended(0)
        assert schedule.intended(10) == pytest.approx(base + 0.010)
        assert schedule.intended(100) == pytest.approx(base + 0.100)

    def test_wait_returns_intended_not_now(self):
        schedule = ArrivalSchedule(rate=100.0)
        schedule.wait(0)
        intended = schedule.wait(2)  # slot 2: 20ms after base
        assert intended == schedule.intended(2)

    def test_wait_actually_paces(self):
        schedule = ArrivalSchedule(rate=100.0)
        started = time.perf_counter()
        for index in range(4):
            schedule.wait(index)
        # Slots 0..3 at 100/s span 30ms of schedule.
        assert time.perf_counter() - started >= 0.025

    def test_behind_counts_overdue_slots(self):
        schedule = ArrivalSchedule(rate=10_000.0)
        schedule.wait(0)
        before = schedule.behind
        time.sleep(0.01)  # ~100 slots pass
        schedule.wait(1)
        assert schedule.behind == before + 1

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            ArrivalSchedule(rate=0.0)
        with pytest.raises(ValueError):
            ArrivalSchedule(rate=-5.0)


class TestUnpaced:
    def test_never_sleeps_and_returns_now(self):
        schedule = ArrivalSchedule(rate=None)
        started = time.perf_counter()
        for index in range(100):
            intended = schedule.wait(index)
            assert intended >= started
        assert time.perf_counter() - started < 0.5
        assert schedule.behind == 0

    def test_interval_is_none(self):
        assert ArrivalSchedule(None).interval is None


class TestSplit:
    def test_split_shares_the_rate(self):
        parts = ArrivalSchedule(rate=100.0).split(4)
        assert len(parts) == 4
        assert all(part.rate == 25.0 for part in parts)

    def test_split_unpaced(self):
        parts = ArrivalSchedule(None).split(3)
        assert all(part.rate is None for part in parts)

    def test_split_validates(self):
        with pytest.raises(ValueError):
            ArrivalSchedule(rate=10.0).split(0)
