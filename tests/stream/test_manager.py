"""Durable stream manager tests: journal, checkpoint, crash recovery.

``kill -9`` is simulated the same way the persistence tests do it:
abandon the live :class:`SessionRegistry`/:class:`StreamManager` pair
without any shutdown and build fresh ones over the same persist
directory — whatever survives is exactly what fsync'd state survives
a real crash (the CI ``stream-smoke`` job does the genuine SIGKILL).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.builder import TrajectoryBuilder
from repro.service.protocol import canonical_json
from repro.service.registry import SessionRegistry
from repro.stream.manager import (
    EventJournal,
    StreamManager,
    StreamOverloadedError,
    UnknownStreamError,
    stream_manager,
)
from repro.stream.segmenter import event_to_dict
from tests.stream.test_segmenter import content_bytes, interleave

# Real dataset-NRG zones (the manager builds from LouvreSpace).
ZONES = ["zone60886", "zone60887", "zone60888"]
GAP = 4 * 3600.0  # the builder's default visit gap

SESSION = "stream-session"
STREAM = "feed"


def ev(mo_id, state, t_start, duration=60.0, visit_id=None):
    event = {"mo_id": mo_id, "state": state, "t_start": t_start,
             "t_end": t_start + duration}
    if visit_id is not None:
        event["visit_id"] = visit_id
    return event


def walk(mo_id, t0, zones=ZONES, dwell=60.0, visit_id=None):
    """One visitor's dwell sequence through ``zones``."""
    return [ev(mo_id, zone, t0 + i * dwell, dwell, visit_id=visit_id)
            for i, zone in enumerate(zones)]


@pytest.fixture
def persist_dir(tmp_path):
    return str(tmp_path / "data")


def make_manager(persist_dir=None):
    registry = SessionRegistry(persist_dir=persist_dir, fsync=False)
    return registry, stream_manager(registry)


class TestLifecycle:
    def test_open_append_close_stores_episodes(self, persist_dir):
        registry, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM)
        result = stream.append(walk("alice", 0.0), watermark=None)
        assert result["appended"] == 3
        assert result["episodes_closed"] == 0
        # the watermark passing the gap closes alice's episode
        stream.append([], watermark=3 * 60.0 + GAP + 1.0)
        store = registry.get(SESSION).workbench.store
        assert len(store) == 1
        summary = manager.close(SESSION, STREAM)
        assert summary["events_acked"] == 3
        assert summary["episodes_total"] == 1

    def test_open_is_idempotent(self, persist_dir):
        _, manager = make_manager(persist_dir)
        first = manager.open(SESSION, STREAM)
        assert manager.open(SESSION, STREAM) is first

    def test_close_flushes_open_episodes(self, persist_dir):
        registry, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM)
        stream.append(walk("alice", 0.0), watermark=None)
        summary = manager.close(SESSION, STREAM)
        assert summary["episodes_closed"] == 1
        assert len(registry.get(SESSION).workbench.store) == 1

    def test_unknown_stream_raises(self, persist_dir):
        _, manager = make_manager(persist_dir)
        with pytest.raises(UnknownStreamError):
            manager.get(SESSION, "nope")
        with pytest.raises(UnknownStreamError):
            manager.close(SESSION, "nope")

    def test_closed_stream_is_gone_for_good(self, persist_dir):
        registry, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM)
        stream.append(walk("alice", 0.0), watermark=None)
        manager.close(SESSION, STREAM)
        with pytest.raises(UnknownStreamError):
            manager.get(SESSION, STREAM)
        # ... including across a restart (the sidecar was retired)
        registry2, manager2 = make_manager(registry.persist_dir)
        with pytest.raises(UnknownStreamError):
            manager2.get(SESSION, STREAM)
        # but the episodes it stored are still there
        assert len(registry2.get(SESSION).workbench.store) == 1

    def test_memory_only_registry_streams_work(self):
        registry, manager = make_manager(None)
        stream = manager.open(SESSION, STREAM)
        stream.append(walk("alice", 0.0), watermark=None)
        assert stream.status()["durable"] is False
        summary = manager.close(SESSION, STREAM)
        assert summary["episodes_closed"] == 1
        assert len(registry.get(SESSION).workbench.store) == 1

    def test_status_shape(self, persist_dir):
        _, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM)
        stream.append(walk("alice", 0.0), watermark=100.0)
        status = stream.status()
        assert status["watermark"] == 100.0
        assert status["open_buffers"] == 1
        assert status["open_events"] == 3
        assert status["events_acked"] == 3
        assert status["durable"] is True

    def test_manager_report_aggregates(self, persist_dir):
        _, manager = make_manager(persist_dir)
        manager.open(SESSION, "a").append(walk("alice", 0.0),
                                          watermark=50.0)
        manager.open(SESSION, "b").append(walk("bob", 10.0),
                                          watermark=90.0)
        report = manager.report()
        assert report["open"] == 2
        assert report["events_acked"] == 6
        assert report["watermark_min"] == 50.0


class TestBackpressure:
    def test_overload_rejects_before_ack(self, persist_dir):
        _, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM, max_open_events=4)
        stream.append(walk("alice", 0.0), watermark=None)
        with pytest.raises(StreamOverloadedError):
            stream.append(walk("bob", 0.0), watermark=None)
        # nothing of the rejected batch was acked or journaled
        assert stream.events_acked == 3
        assert stream.journal.last_seq == 1

    def test_watermark_drains_the_overload(self, persist_dir):
        _, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM, max_open_events=4)
        stream.append(walk("alice", 0.0), watermark=None)
        # the watermark closes alice's episode, freeing the buffer
        stream.append([], watermark=3 * 60.0 + GAP + 1.0)
        assert stream.append(walk("bob", GAP * 2),
                             watermark=None)["appended"] == 3

    def test_malformed_event_acks_nothing(self, persist_dir):
        _, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM)
        with pytest.raises(ValueError):
            stream.append([ev("alice", ZONES[0], 0.0),
                           {"mo_id": "x"}], watermark=None)
        assert stream.events_acked == 0
        assert stream.journal.last_seq == 0


class TestJournal:
    def test_append_scan_roundtrip(self, tmp_path):
        path = str(tmp_path / "events.log")
        journal = EventJournal(path, fsync=False)
        journal.append([ev("a", "z", 0.0)], watermark=None)
        journal.append([ev("a", "z", 5.0)], watermark=9.0)
        journal.close()
        reopened = EventJournal(path, fsync=False)
        records = list(reopened.records())
        assert [seq for seq, _, _ in records] == [1, 2]
        assert records[1][2] == 9.0
        assert reopened.last_seq == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "events.log")
        journal = EventJournal(path, fsync=False)
        journal.append([ev("a", "z", 0.0)], watermark=None)
        journal.close()
        with open(path, "ab") as sink:
            sink.write(b'{"crc": "torn')  # no newline: torn write
        reopened = EventJournal(path, fsync=False)
        assert [seq for seq, _, _ in reopened.records()] == [1]
        # the next append truncates the torn bytes and carries on
        reopened.append([ev("a", "z", 5.0)], watermark=None)
        reopened.close()
        final = EventJournal(path, fsync=False)
        assert [seq for seq, _, _ in final.records()] == [1, 2]

    def test_corrupt_record_stops_replay(self, tmp_path):
        path = str(tmp_path / "events.log")
        journal = EventJournal(path, fsync=False)
        journal.append([ev("a", "z", 0.0)], watermark=None)
        journal.append([ev("a", "z", 5.0)], watermark=None)
        journal.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        flipped = lines[0].replace(b'"seq":1', b'"seq":7')
        with open(path, "wb") as sink:
            sink.writelines([flipped] + lines[1:])
        assert list(EventJournal(path, fsync=False).records()) == []

    def test_reset_keeps_sequences_climbing(self, tmp_path):
        path = str(tmp_path / "events.log")
        journal = EventJournal(path, fsync=False)
        journal.append([ev("a", "z", 0.0)], watermark=None)
        journal.reset()
        assert list(journal.records()) == []
        assert journal.append([ev("a", "z", 5.0)],
                              watermark=None) == 2


class TestRecovery:
    def test_restart_recovers_open_stream(self, persist_dir):
        registry, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM)
        stream.append(walk("alice", 0.0), watermark=None)
        # crash: no close, no checkpoint — only journal + state v0
        registry2, manager2 = make_manager(persist_dir)
        stream2 = manager2.get(SESSION, STREAM)
        assert stream2.events_acked == 3
        assert stream2.segmenter.open_events == 3
        summary = manager2.close(SESSION, STREAM)
        assert summary["episodes_closed"] == 1
        assert len(registry2.get(SESSION).workbench.store) == 1

    def test_restart_before_any_episode_closed(self, persist_dir):
        """Acked events with no session WAL yet still survive —
        the sidecar alone is enough to resurrect the session."""
        registry, manager = make_manager(persist_dir)
        manager.open(SESSION, STREAM).append(walk("alice", 0.0),
                                             watermark=None)
        session_dir = registry.get(SESSION).durable.directory
        assert not os.path.exists(os.path.join(session_dir,
                                               "wal.log"))
        _, manager2 = make_manager(persist_dir)
        assert manager2.get(SESSION, STREAM).events_acked == 3

    def test_no_double_store_when_crash_precedes_checkpoint(
            self, persist_dir):
        """The nasty window: episodes stored (session WAL has them),
        journal not yet folded.  Replay regenerates them; the content
        dedup must skip every one."""
        registry, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM)  # checkpoint_every=64
        stream.append(walk("alice", 0.0), watermark=None)
        stream.append(walk("bob", 100.0), watermark=None)
        stream.append([], watermark=GAP * 2)  # closes both episodes
        assert len(registry.get(SESSION).workbench.store) == 2
        assert stream.journal.last_seq == 3  # journal NOT folded
        registry2, manager2 = make_manager(persist_dir)
        stream2 = manager2.get(SESSION, STREAM)
        store = registry2.get(SESSION).workbench.store
        assert len(store) == 2  # deduped, not doubled
        assert stream2.episodes_stored == 2
        assert stream2.events_acked == 6

    def test_checkpoint_folds_journal(self, persist_dir):
        registry, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM, checkpoint_every=1)
        stream.append(walk("alice", 0.0), watermark=None)
        stream.append([], watermark=GAP * 2)  # close → checkpoint
        assert stream.checkpoints == 1
        assert list(stream.journal.records()) == []  # folded
        state = json.load(open(os.path.join(stream.directory,
                                            "stream-state.json")))
        assert state["events_acked"] == 3
        # restart restores from the snapshot alone
        registry2, manager2 = make_manager(persist_dir)
        stream2 = manager2.get(SESSION, STREAM)
        assert stream2.events_acked == 3
        assert stream2.checkpoints == 1
        assert len(registry2.get(SESSION).workbench.store) == 1

    def test_recovery_replays_only_past_the_checkpoint(
            self, persist_dir):
        registry, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM, checkpoint_every=1)
        stream.append(walk("alice", 0.0), watermark=None)
        stream.append([], watermark=GAP * 2)  # checkpoint here
        stream.append(walk("bob", GAP * 2), watermark=None)  # tail
        registry2, manager2 = make_manager(persist_dir)
        stream2 = manager2.get(SESSION, STREAM)
        assert stream2.events_acked == 6
        assert stream2.segmenter.open_events == 3  # bob's buffer
        manager2.close(SESSION, STREAM)
        assert len(registry2.get(SESSION).workbench.store) == 2

    def test_stream_options_survive_restart(self, persist_dir):
        _, manager = make_manager(persist_dir)
        manager.open(SESSION, STREAM, gap_seconds=120.0,
                     checkpoint_every=7, max_open_events=11)
        _, manager2 = make_manager(persist_dir)
        stream2 = manager2.get(SESSION, STREAM)
        assert stream2.segmenter.gap_seconds == 120.0
        assert stream2.checkpoint_every == 7
        assert stream2.max_open_events == 11


class TestCrashReplayIdentity:
    def test_kill9_midstream_matches_batch(self, persist_dir,
                                           louvre_space,
                                           small_corpus):
        """The acceptance gate at unit level: replay the 2% Louvre
        corpus as an interleaved stream, crash at an arbitrary point,
        recover, finish — the store must be content-identical to the
        batch build and lose zero acked events."""
        _, records = small_corpus
        by_visitor = {}
        for record in sorted(records,
                             key=lambda r: (r.mo_id, r.t_start,
                                            r.t_end)):
            by_visitor.setdefault(record.mo_id, []).append(record)
        events = interleave(list(by_visitor.values()), seed=7)
        batch, _ = TrajectoryBuilder(
            louvre_space.dataset_zone_nrg()).build_all(records)

        registry, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM, checkpoint_every=5)
        cut = len(events) // 2
        consumed = 0
        while consumed < cut:
            batch_events = events[consumed:consumed + 50]
            consumed += len(batch_events)
            rest = events[consumed:]
            watermark = (min(e.t_start for e in rest) if rest
                         else None)
            stream.append([event_to_dict(e) for e in batch_events],
                          watermark=watermark)
        # kill -9: abandon registry + manager mid-stream
        registry2, manager2 = make_manager(persist_dir)
        stream2 = manager2.get(SESSION, STREAM)
        assert stream2.events_acked == consumed  # zero acked loss
        while consumed < len(events):
            batch_events = events[consumed:consumed + 50]
            consumed += len(batch_events)
            rest = events[consumed:]
            watermark = (min(e.t_start for e in rest) if rest
                         else None)
            stream2.append([event_to_dict(e) for e in batch_events],
                           watermark=watermark)
        manager2.close(SESSION, STREAM)
        store = registry2.get(SESSION).workbench.store
        streamed = list(store)
        assert len(streamed) == len(batch)
        assert content_bytes(streamed) == content_bytes(batch)
        assert stream2.segmenter.metrics.dropped_late == 0

    def test_recovered_store_serves_identical_bytes(
            self, persist_dir):
        """Canonical document bytes before and after the crash
        match — what the CI smoke checks over HTTP."""
        registry, manager = make_manager(persist_dir)
        stream = manager.open(SESSION, STREAM)
        stream.append(walk("alice", 0.0)
                      + walk("bob", 50.0, list(reversed(ZONES))),
                      watermark=None)
        stream.append([], watermark=GAP * 2)
        before = sorted(canonical_json(t.to_dict())
                        for t in registry.get(SESSION)
                        .workbench.store)
        registry2, manager2 = make_manager(persist_dir)
        manager2.get(SESSION, STREAM)
        after = sorted(canonical_json(t.to_dict())
                       for t in registry2.get(SESSION)
                       .workbench.store)
        assert before == after
