"""Bounded buffer / back-pressure tests."""

from __future__ import annotations

import threading
import time

import pytest

from repro.stream.backpressure import (
    BoundedBuffer,
    BufferClosed,
    bounded_iter,
)


class TestBoundedBuffer:
    def test_fifo_order(self):
        buffer = BoundedBuffer(capacity=4)
        for i in range(4):
            assert buffer.put(i)
        assert [buffer.get() for _ in range(4)] == [0, 1, 2, 3]

    def test_shed_policy_drops_and_counts(self):
        buffer = BoundedBuffer(capacity=2, policy="shed")
        assert buffer.put(1) and buffer.put(2)
        assert not buffer.put(3)
        assert buffer.sheds == 1
        assert len(buffer) == 2
        assert buffer.get() == 1  # oldest survives, overflow is lost

    def test_block_policy_throttles_producer(self):
        buffer = BoundedBuffer(capacity=1, policy="block")
        assert buffer.put(1)
        done = threading.Event()

        def producer():
            buffer.put(2)  # must wait for the consumer
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not done.is_set()  # back-pressure held it
        assert buffer.get() == 1
        assert done.wait(2.0)
        assert buffer.blocked == 1
        assert buffer.get() == 2

    def test_block_put_timeout(self):
        buffer = BoundedBuffer(capacity=1)
        buffer.put(1)
        assert not buffer.put(2, timeout=0.02)

    def test_get_timeout_returns_none(self):
        buffer = BoundedBuffer(capacity=1)
        assert buffer.get(timeout=0.02) is None

    def test_close_drains_then_ends(self):
        buffer = BoundedBuffer(capacity=4)
        buffer.put(1)
        buffer.put(2)
        buffer.close()
        with pytest.raises(BufferClosed):
            buffer.put(3)
        assert list(buffer) == [1, 2]

    def test_close_unblocks_waiting_producer(self):
        buffer = BoundedBuffer(capacity=1)
        buffer.put(1)
        raised = threading.Event()

        def producer():
            try:
                buffer.put(2)
            except BufferClosed:
                raised.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        buffer.close()
        assert raised.wait(2.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            BoundedBuffer(capacity=0)
        with pytest.raises(ValueError):
            BoundedBuffer(capacity=1, policy="explode")

    def test_report_shape(self):
        buffer = BoundedBuffer(capacity=2, policy="shed")
        buffer.put(1)
        report = buffer.report()
        assert report["capacity"] == 2 and report["depth"] == 1
        assert report["policy"] == "shed"


class TestBoundedIter:
    def test_yields_everything_in_order(self):
        assert list(bounded_iter(range(100), capacity=7)) \
            == list(range(100))

    def test_bounded_lead(self):
        """The producer never runs more than capacity ahead."""
        lead = []
        produced = [0]

        def source():
            for i in range(50):
                produced[0] = i + 1
                yield i

        buffer = BoundedBuffer(capacity=4)
        consumed = 0
        for item in bounded_iter(source(), buffer=buffer):
            consumed += 1
            lead.append(produced[0] - consumed)
        # the producer's lead is bounded by capacity plus the one item
        # it may hold in-hand while blocked on a full buffer.
        assert max(lead) <= 4 + 1
        assert consumed == 50

    def test_source_error_reraises_consumer_side(self):
        def source():
            yield 1
            raise RuntimeError("sensor unplugged")

        iterator = bounded_iter(source(), capacity=2)
        assert next(iterator) == 1
        with pytest.raises(RuntimeError, match="sensor unplugged"):
            list(iterator)

    def test_consumer_abandonment_releases_producer(self):
        buffer = BoundedBuffer(capacity=1)
        iterator = bounded_iter(iter(range(1000)), buffer=buffer)
        assert next(iterator) == 0
        iterator.close()  # generator exit closes the buffer
        deadline = time.time() + 2.0
        while not buffer.closed and time.time() < deadline:
            time.sleep(0.01)
        assert buffer.closed

    def test_shed_policy_loses_but_finishes(self):
        slow = bounded_iter(range(100), capacity=2, policy="shed")
        first = next(slow)
        time.sleep(0.05)  # let the producer race ahead and shed
        rest = list(slow)
        assert first == 0
        assert len(rest) <= 99  # shed items are simply gone
        assert all(a < b for a, b in zip([first] + rest,
                                         rest))  # order kept
