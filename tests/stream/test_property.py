"""Property suite: stream segmentation ≡ batch build, by construction.

Hypothesis drives random per-visitor record sequences (including
zero/negative durations, unknown states, overlaps, shared visit ids
and multi-gap silences), interleaves them arbitrarily across
visitors, and replays them through :class:`WatermarkSegmenter` with
an honest producer watermark — the emitted episodes must be
byte-identical (as a content multiset under canonical JSON) to
:meth:`TrajectoryBuilder.build_all` over the same records.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import DetectionRecord
from tests.stream.test_segmenter import (
    GAP,
    content_bytes,
    interleave,
    make_builder,
    stream_replay,
)

STATES = ["a", "b", "c", "nowhere"]


@st.composite
def visitor_records(draw, mo_id: str):
    """One visitor's in-order record sequence (may contain errors)."""
    count = draw(st.integers(min_value=1, max_value=8))
    t = draw(st.floats(min_value=0.0, max_value=50.0))
    records = []
    for _ in range(count):
        state = draw(st.sampled_from(STATES))
        # silence before this record: within-visit, exactly-gap (the
        # split boundary), or past-gap (a split).
        t += draw(st.sampled_from([0.0, 5.0, 30.0, GAP, GAP + 1.0,
                                   GAP * 2]))
        duration = draw(st.sampled_from([-5.0, 0.0, 8.0, 20.0, 60.0]))
        records.append(DetectionRecord(
            "v{}".format(mo_id), state, t, t + duration))
        # overlapping starts: the next record may begin before this
        # one ended (sensor echo) but never out of per-visitor order.
        t = max(t, t + duration - draw(st.sampled_from([0.0, 5.0,
                                                        15.0])))
    records.sort(key=lambda r: (r.t_start, r.t_end))
    return records


@st.composite
def corpora(draw):
    visitors = draw(st.integers(min_value=1, max_value=4))
    per_visitor = [draw(visitor_records(str(v)))
                   for v in range(visitors)]
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    return per_visitor, seed


@settings(max_examples=120, deadline=None)
@given(corpora())
def test_any_interleaving_matches_batch(corpus):
    per_visitor, seed = corpus
    builder = make_builder()
    records = [r for records in per_visitor for r in records]
    batch, _ = builder.build_all(records)
    events = interleave(per_visitor, seed=seed)
    segmenter, streamed = stream_replay(builder, events, seed=seed)
    assert content_bytes(streamed) == content_bytes(batch)
    assert segmenter.metrics.dropped_late == 0


@settings(max_examples=60, deadline=None)
@given(corpora())
def test_interleaving_without_watermarks_matches_batch(corpus):
    """No watermark at all (close() flushes everything) must match
    batch too — the watermark only accelerates closure."""
    per_visitor, seed = corpus
    builder = make_builder()
    records = [r for records in per_visitor for r in records]
    batch, _ = builder.build_all(records)
    events = interleave(per_visitor, seed=seed)
    _, streamed = stream_replay(builder, events, watermarks=False,
                                seed=seed)
    assert content_bytes(streamed) == content_bytes(batch)


@st.composite
def visit_id_corpora(draw):
    """Corpora where some visitors carry visit ids (never gap-split).

    Visit ids switch when the silence between *kept* records exceeds
    the gap — the streaming liveness contract: a visit that stays
    silent past the gap threshold is complete, so a producer must not
    reuse its id afterwards (``docs/streaming.md``).  Error records
    (zero duration, unknown state) are still injected; being dropped,
    they must not count as activity.
    """
    visitors = draw(st.integers(min_value=1, max_value=3))
    per_visitor = []
    for v in range(visitors):
        count = draw(st.integers(min_value=1, max_value=8))
        t = draw(st.floats(min_value=0.0, max_value=50.0))
        records = []
        run = 0
        last_kept_end = None
        for _ in range(count):
            state = draw(st.sampled_from(STATES))
            t += draw(st.sampled_from([0.0, 5.0, 30.0, GAP,
                                       GAP + 1.0, GAP * 2]))
            duration = draw(st.sampled_from([0.0, 8.0, 20.0, 60.0]))
            kept = duration > 0 and state != "nowhere"
            if kept and last_kept_end is not None \
                    and t - last_kept_end > GAP:
                run += 1
            records.append(DetectionRecord(
                "v{}".format(v), state, t, t + duration,
                visit_id="s{}".format(run)))
            if kept:
                last_kept_end = t + duration
            t += duration
        per_visitor.append(records)
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    return per_visitor, seed


@settings(max_examples=80, deadline=None)
@given(visit_id_corpora())
def test_visit_id_interleaving_matches_batch(corpus):
    per_visitor, seed = corpus
    builder = make_builder()
    records = [r for records in per_visitor for r in records]
    batch, _ = builder.build_all(records)
    events = interleave(per_visitor, seed=seed)
    _, streamed = stream_replay(builder, events, seed=seed)
    assert content_bytes(streamed) == content_bytes(batch)


@settings(max_examples=60, deadline=None)
@given(corpora(), st.integers(min_value=1, max_value=6))
def test_resume_from_any_cut_matches_batch(corpus, cut_step):
    """Snapshot + resume at an arbitrary point changes nothing —
    the durability substrate the stream manager builds on."""
    import json

    from repro.service.protocol import canonical_json
    from repro.stream.segmenter import WatermarkSegmenter

    per_visitor, seed = corpus
    builder = make_builder()
    records = [r for records in per_visitor for r in records]
    batch, _ = builder.build_all(records)
    events = interleave(per_visitor, seed=seed)
    cut = min(len(events), cut_step)

    segmenter = WatermarkSegmenter(builder)
    streamed = []
    for event in events[:cut]:
        streamed.extend(segmenter.feed(event))
    state = json.loads(canonical_json(segmenter.state_dict()))
    resumed = WatermarkSegmenter(builder)
    resumed.load_state(state)
    for event in events[cut:]:
        streamed.extend(resumed.feed(event))
    streamed.extend(resumed.close())
    assert content_bytes(streamed) == content_bytes(batch)
