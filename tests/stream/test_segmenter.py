"""Watermark segmenter unit tests: byte-identity and edge cases.

The load-bearing guarantee is that replaying a batch corpus as an
interleaved event stream yields episodes byte-identical (under
canonical JSON) to :meth:`TrajectoryBuilder.build_all` — closure
order differs, so identity is asserted on the sorted multiset of
episode bytes.  The hypothesis suite in ``test_property.py`` explores
the input space; these tests pin the named edge cases.
"""

from __future__ import annotations

import random

from repro.core.builder import DetectionRecord, TrajectoryBuilder
from repro.indoor.nrg import NodeRelationGraph
from repro.service.protocol import canonical_json
from repro.stream.segmenter import (
    NO_WATERMARK,
    WatermarkSegmenter,
    event_from_dict,
    event_to_dict,
)

GAP = 100.0


def tiny_nrg() -> NodeRelationGraph:
    nrg = NodeRelationGraph("test")
    nrg.connect("a", "b", boundary_id="door-ab", bidirectional=True)
    nrg.connect("b", "c", boundary_id="door-bc", bidirectional=True)
    nrg.connect("a", "c", bidirectional=True)
    return nrg


def make_builder(**kwargs) -> TrajectoryBuilder:
    kwargs.setdefault("visit_gap_seconds", GAP)
    return TrajectoryBuilder(tiny_nrg(), **kwargs)


def interleave(per_visitor, seed: int = 0):
    """Merge per-visitor record lists, preserving per-visitor order."""
    rng = random.Random(seed)
    queues = [list(records) for records in per_visitor if records]
    merged = []
    while queues:
        queue = rng.choice(queues)
        merged.append(queue.pop(0))
        if not queue:
            queues.remove(queue)
    return merged


def content_bytes(trajectories):
    """Order-insensitive content identity of a trajectory set."""
    return sorted(canonical_json(t.to_dict()) for t in trajectories)


def stream_replay(builder, events, watermarks=True, seed: int = 0):
    """Feed interleaved events with an honest producer watermark.

    The producer watermark after each event is the minimum ``t_start``
    still to come — the strongest promise any producer can make for
    this interleaving.
    """
    segmenter = WatermarkSegmenter(builder)
    episodes = []
    for index, event in enumerate(events):
        episodes.extend(segmenter.feed(event))
        if watermarks:
            remaining = events[index + 1:]
            if remaining:
                episodes.extend(segmenter.advance(
                    min(e.t_start for e in remaining)))
    episodes.extend(segmenter.close())
    return segmenter, episodes


class TestByteIdentity:
    def test_single_visitor_gap_split(self):
        builder = make_builder()
        records = [
            DetectionRecord("v1", "a", 0.0, 10.0),
            DetectionRecord("v1", "b", 20.0, 30.0),
            # > GAP of silence: the batch builder splits here.
            DetectionRecord("v1", "c", 30.0 + GAP + 1.0,
                            30.0 + GAP + 50.0),
        ]
        batch, _ = builder.build_all(records)
        _, streamed = stream_replay(builder, records)
        assert len(batch) == 2
        assert content_bytes(streamed) == content_bytes(batch)

    def test_interleaved_visitors_match_batch(self):
        builder = make_builder()
        per_visitor = []
        for v in range(5):
            t = float(v)
            records = []
            for i in range(7):
                records.append(DetectionRecord(
                    "v{}".format(v), "abc"[i % 3], t, t + 10.0))
                t += 12.0 if i != 3 else GAP + 50.0
            per_visitor.append(records)
        events = interleave(per_visitor, seed=7)
        batch, _ = builder.build_all(events)
        _, streamed = stream_replay(builder, events, seed=7)
        assert len(streamed) == len(batch) == 10
        assert content_bytes(streamed) == content_bytes(batch)

    def test_visit_id_records_never_gap_split(self):
        builder = make_builder()
        records = [
            DetectionRecord("v1", "a", 0.0, 10.0, visit_id="x"),
            # Silence > GAP, but the shared visit_id binds them.
            DetectionRecord("v1", "b", GAP + 50.0, GAP + 60.0,
                            visit_id="x"),
        ]
        batch, _ = builder.build_all(records)
        segmenter = WatermarkSegmenter(builder)
        streamed = []
        for record in records:
            streamed.extend(segmenter.feed(record))
        assert streamed == []  # still open despite the silence
        streamed.extend(segmenter.close())
        assert len(batch) == 1
        assert content_bytes(streamed) == content_bytes(batch)

    def test_error_records_dropped_like_batch(self):
        builder = make_builder()
        records = [
            DetectionRecord("v1", "a", 0.0, 10.0),
            DetectionRecord("v1", "b", 20.0, 20.0),      # zero duration
            DetectionRecord("v1", "c", 30.0, 25.0),      # negative
            DetectionRecord("v1", "nowhere", 40.0, 50.0),  # unknown
            DetectionRecord("v1", "b", 60.0, 70.0),
        ]
        batch, report = builder.build_all(records)
        segmenter, streamed = stream_replay(builder, records)
        assert content_bytes(streamed) == content_bytes(batch)
        assert segmenter.metrics.drops == {
            "zero_duration": 1, "negative_duration": 1,
            "unknown_state": 1}

    def test_overlap_repair_matches_batch(self):
        builder = make_builder()
        records = [
            DetectionRecord("v1", "a", 0.0, 50.0),
            # starts 30 s before the previous end (tolerance is 10 s):
            # clipped forward to start at 50.
            DetectionRecord("v1", "b", 20.0, 80.0),
            # fully contained in [0, 80]: dropped.
            DetectionRecord("v1", "c", 30.0, 60.0),
            DetectionRecord("v1", "c", 90.0, 120.0),
        ]
        batch, report = builder.build_all(records)
        segmenter, streamed = stream_replay(builder, records)
        assert report.cleaning.clipped_overlaps == 1
        assert report.cleaning.dropped_contained == 1
        assert segmenter.metrics.overlap_clipped == 1
        assert segmenter.metrics.drops.get("overlap_contained") == 1
        assert content_bytes(streamed) == content_bytes(batch)

    def test_repair_state_carries_across_episodes(self):
        builder = make_builder()
        records = [
            DetectionRecord("v1", "a", 0.0, 10.0),
            DetectionRecord("v1", "b", 20.0, 500.0),
            # next visit starts after the gap, but *overlaps* the
            # previous visit's end beyond the tolerance... impossible
            # in time order; instead check the batch last_end carrying
            # forward: a record contained in the previous episode's
            # span arriving late in order.
            DetectionRecord("v1", "c", 500.0 + GAP + 1.0,
                            500.0 + GAP + 30.0),
        ]
        batch, _ = builder.build_all(records)
        _, streamed = stream_replay(builder, records)
        assert content_bytes(streamed) == content_bytes(batch)


class TestWatermark:
    def test_close_requires_watermark_strictly_past_gap(self):
        builder = make_builder()
        segmenter = WatermarkSegmenter(builder)
        segmenter.feed(DetectionRecord("v1", "a", 0.0, 10.0))
        # watermark exactly at t_end + gap: batch would NOT split for
        # a next record at that instant (split needs > gap), so the
        # episode must stay open.
        assert segmenter.advance(10.0 + GAP) == []
        closed = segmenter.advance(10.0 + GAP + 0.5)
        assert len(closed) == 1
        assert segmenter.open_buffers == 0

    def test_watermark_never_regresses(self):
        segmenter = WatermarkSegmenter(make_builder())
        segmenter.feed(DetectionRecord("v1", "a", 0.0, 10.0))
        assert segmenter.advance(50.0) == []
        assert segmenter.watermark == 50.0
        assert segmenter.advance(40.0) == []
        assert segmenter.watermark == 50.0

    def test_initial_watermark_accepts_everything(self):
        segmenter = WatermarkSegmenter(make_builder())
        assert segmenter.watermark == NO_WATERMARK
        segmenter.feed(DetectionRecord("v1", "a", -1e12, -1e12 + 1))
        assert segmenter.metrics.late_events == 0

    def test_visit_id_buffer_closes_on_silent_watermark(self):
        # A visit_id buffer is never event-split, but the watermark
        # passing its gap closes it — the streaming liveness contract.
        builder = make_builder()
        segmenter = WatermarkSegmenter(builder)
        segmenter.feed(DetectionRecord("v1", "a", 0.0, 10.0,
                                       visit_id="x"))
        closed = segmenter.advance(10.0 + GAP + 1.0)
        assert len(closed) == 1


class TestLateEvents:
    def test_late_event_with_closed_episode_is_dropped(self):
        builder = make_builder()
        segmenter = WatermarkSegmenter(builder)
        segmenter.feed(DetectionRecord("v1", "a", 0.0, 10.0))
        assert len(segmenter.advance(10.0 + GAP + 1.0)) == 1
        # This event "belonged" to the emitted episode — accepting it
        # now would contradict the served bytes.
        assert segmenter.feed(
            DetectionRecord("v1", "b", 15.0, 25.0)) == []
        assert segmenter.metrics.late_events == 1
        assert segmenter.metrics.dropped_late == 1
        assert segmenter.metrics.drops.get("late") == 1

    def test_late_event_extending_open_buffer_is_accepted(self):
        builder = make_builder()
        segmenter = WatermarkSegmenter(builder)
        segmenter.feed(DetectionRecord("v1", "a", 0.0, 10.0))
        segmenter.advance(50.0)  # not yet past the gap: still open
        segmenter.feed(DetectionRecord("v1", "b", 20.0, 30.0))
        assert segmenter.metrics.late_events == 1
        assert segmenter.metrics.dropped_late == 0
        closed = segmenter.close()
        assert len(closed) == 1
        assert len(closed[0].trace) == 2

    def test_out_of_order_event_is_dropped(self):
        builder = make_builder()
        segmenter = WatermarkSegmenter(builder)
        segmenter.feed(DetectionRecord("v1", "a", 100.0, 110.0))
        assert segmenter.feed(
            DetectionRecord("v1", "b", 50.0, 60.0)) == []
        assert segmenter.metrics.drops.get("out_of_order") == 1
        assert segmenter.metrics.dropped_late == 1


class TestStateRoundTrip:
    def test_event_codec_round_trips(self):
        record = DetectionRecord("v1", "a", 1.5, 2.5, visit_id="x",
                                 attributes={"device": "iPhone"})
        assert event_from_dict(event_to_dict(record)) == record
        bare = DetectionRecord("v1", "a", 1.5, 2.5)
        data = event_to_dict(bare)
        assert "visit_id" not in data and "attributes" not in data
        assert event_from_dict(data) == bare

    def test_event_codec_rejects_garbage(self):
        import pytest

        for bad in ({}, {"mo_id": "v", "state": "a"},
                    {"mo_id": 3, "state": "a", "t_start": 0,
                     "t_end": 1},
                    {"mo_id": "v", "state": "a", "t_start": "x",
                     "t_end": 1}):
            with pytest.raises(ValueError):
                event_from_dict(bad)

    def test_state_dict_round_trip_resumes_identically(self):
        builder = make_builder()
        records = [
            DetectionRecord("v{}".format(v), "abc"[i % 3],
                            float(10 * i + v), float(10 * i + v + 8))
            for v in range(3) for i in range(4)
        ]
        events = interleave([
            [r for r in records if r.mo_id == "v{}".format(v)]
            for v in range(3)], seed=3)
        cut = len(events) // 2

        whole = WatermarkSegmenter(builder)
        resumed = WatermarkSegmenter(builder)
        out_whole, out_resumed = [], []
        for event in events[:cut]:
            out_whole.extend(whole.feed(event))
            out_resumed.extend(resumed.feed(event))
        out_whole.extend(whole.advance(25.0))
        out_resumed.extend(resumed.advance(25.0))

        # restart: a fresh segmenter resumes from the snapshot
        state = canonical_json(resumed.state_dict())
        import json

        fresh = WatermarkSegmenter(builder)
        fresh.load_state(json.loads(state))
        assert fresh.watermark == whole.watermark
        assert fresh.metrics.to_dict() == whole.metrics.to_dict()
        for event in events[cut:]:
            out_whole.extend(whole.feed(event))
            out_resumed.extend(fresh.feed(event))
        out_whole.extend(whole.close())
        out_resumed.extend(fresh.close())
        assert content_bytes(out_resumed) == content_bytes(out_whole)

    def test_metrics_to_dict_shape(self):
        segmenter = WatermarkSegmenter(make_builder())
        segmenter.feed(DetectionRecord("v1", "a", 0.0, 10.0))
        data = segmenter.metrics.to_dict()
        assert data["events_in"] == 1 and data["accepted"] == 1
        assert canonical_json(data)  # JSON-native throughout


class TestLouvreReplay:
    def test_small_corpus_stream_matches_batch(self, louvre_space,
                                               small_corpus):
        """The acceptance gate at 2 % scale: replaying the Louvre
        corpus as an interleaved per-visitor stream reproduces the
        batch store content byte-for-byte."""
        _, records = small_corpus
        builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
        batch, _ = builder.build_all(records)

        per_visitor = {}
        for record in sorted(records,
                             key=lambda r: (r.mo_id, r.t_start,
                                            r.t_end)):
            per_visitor.setdefault(record.mo_id, []).append(record)
        events = interleave(list(per_visitor.values()), seed=42)
        segmenter, streamed = stream_replay(builder, events, seed=42)
        assert len(streamed) == len(batch)
        assert content_bytes(streamed) == content_bytes(batch)
        assert segmenter.metrics.dropped_late == 0
