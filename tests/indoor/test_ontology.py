"""Tests for the CIDOC-CRM-flavoured ontology integration."""

import pytest

from repro.core.annotations import AnnotationKind
from repro.indoor.ontology import (
    CellConceptMapping,
    Concept,
    Ontology,
    OntologyError,
    cidoc_core,
)
from tests.conftest import make_trajectory


class TestOntology:
    def test_concept_needs_iri(self):
        with pytest.raises(ValueError):
            Concept("")

    def test_duplicate_rejected(self):
        onto = Ontology()
        onto.define("a")
        with pytest.raises(OntologyError):
            onto.define("a")

    def test_unknown_parent_rejected(self):
        onto = Ontology()
        with pytest.raises(OntologyError):
            onto.define("child", parents=["ghost"])

    def test_ancestors_transitive(self):
        onto = Ontology()
        onto.define("top")
        onto.define("mid", parents=["top"])
        onto.define("leaf", parents=["mid"])
        assert onto.ancestors("leaf") == {"mid", "top"}
        assert onto.ancestors("top") == set()

    def test_multiple_inheritance(self):
        onto = Ontology()
        onto.define("a")
        onto.define("b")
        onto.define("c", parents=["a", "b"])
        assert onto.ancestors("c") == {"a", "b"}

    def test_is_a(self):
        onto = cidoc_core()
        assert onto.is_a("museum:Painting", "museum:Exhibit")
        assert onto.is_a("museum:Painting",
                         "crm:E22_Human-Made_Object")
        assert onto.is_a("museum:Painting", "crm:E1_Entity")
        assert not onto.is_a("museum:Painting", "crm:E53_Place")
        assert onto.is_a("museum:Room", "museum:Room")

    def test_descendants(self):
        onto = cidoc_core()
        assert "museum:Painting" in onto.descendants("museum:Exhibit")
        assert "museum:Room" in onto.descendants("crm:E53_Place")

    def test_least_common_subsumer(self):
        onto = cidoc_core()
        assert onto.least_common_subsumer(
            "museum:Painting", "museum:Sculpture") == "museum:Exhibit"
        assert onto.least_common_subsumer(
            "museum:Painting", "museum:Room") == "crm:E1_Entity"

    def test_cidoc_core_consistency(self):
        onto = cidoc_core()
        assert len(onto) >= 14
        for iri in ("crm:E53_Place", "museum:Exhibit", "museum:Visit"):
            assert iri in onto


class TestCellConceptMapping:
    @pytest.fixture
    def mapping(self):
        return CellConceptMapping(cidoc_core())

    def test_class_based_mapping(self, mapping):
        assert mapping.concept_of("anything",
                                  semantic_class="Room") \
            == "museum:Room"
        assert mapping.concept_of("anything",
                                  semantic_class="Unmapped") is None

    def test_explicit_overrides(self, mapping):
        mapping.assign("roi:mona-lisa", "museum:Painting")
        assert mapping.concept_of("roi:mona-lisa",
                                  semantic_class="ExhibitRoI") \
            == "museum:Painting"

    def test_unknown_concept_rejected(self, mapping):
        with pytest.raises(OntologyError):
            mapping.assign("cell", "museum:Spaceship")

    def test_states_of_concept_subsumption(self, mapping):
        mapping.assign("p1", "museum:Painting")
        mapping.assign("s1", "museum:Sculpture")
        mapping.assign("r1", "museum:Room")
        assert mapping.states_of_concept("museum:Exhibit") \
            == ["p1", "s1"]
        assert mapping.states_of_concept("crm:E1_Entity") \
            == ["p1", "r1", "s1"]

    def test_annotate_trajectory(self, mapping):
        mapping.assign("a", "museum:Painting")
        trajectory = make_trajectory(states=("a", "b"))
        enriched = mapping.annotate_trajectory(trajectory)
        first, second = enriched.trace.entries
        assert first.annotations.has(AnnotationKind.PLACE,
                                     "museum:Painting")
        assert not second.annotations.has(AnnotationKind.PLACE)

    def test_concept_footprint(self, mapping):
        mapping.assign("a", "museum:Painting")
        mapping.assign("b", "museum:Painting")
        trajectory = make_trajectory(states=("a", "b", "c"),
                                     dwell=100.0)
        footprint = mapping.concept_footprint(trajectory)
        assert footprint == {"museum:Painting": 200.0}
