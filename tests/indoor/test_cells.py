"""Tests for cells, boundaries and cell spaces."""

import pytest

from repro.indoor.cells import (
    BoundaryKind,
    Cell,
    CellBoundary,
    CellSpace,
    DuplicateIdError,
    OverlappingCellsError,
)
from repro.spatial.geometry import Point, Polygon
from repro.spatial.topology import TopologicalRelation


def square(x, y, size=10):
    return Polygon.rectangle(x, y, x + size, y + size)


class TestCell:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            Cell(cell_id="")

    def test_attribute_lookup(self):
        cell = Cell("c1", attributes={"theme": "Egypt"})
        assert cell.attribute("theme") == "Egypt"
        assert cell.attribute("missing", 42) == 42

    def test_has_geometry(self):
        assert not Cell("c1").has_geometry()
        assert Cell("c2", geometry=square(0, 0)).has_geometry()

    def test_representative_point(self):
        cell = Cell("c1", geometry=square(0, 0))
        rep = cell.representative_point()
        assert cell.geometry.interior_contains_point(rep)

    def test_representative_point_symbolic_raises(self):
        with pytest.raises(ValueError):
            Cell("c1").representative_point()


class TestCellBoundary:
    def test_requires_distinct_cells(self):
        with pytest.raises(ValueError):
            CellBoundary("b1", "a", "a")

    def test_joins(self):
        boundary = CellBoundary("b1", "a", "b")
        assert boundary.joins("a", "b")
        assert boundary.joins("b", "a")
        assert not boundary.joins("a", "c")

    def test_wall_allows_nothing(self):
        wall = CellBoundary("w", "a", "b", BoundaryKind.WALL)
        assert not wall.allows("a", "b")
        assert not wall.allows("b", "a")

    def test_bidirectional_door(self):
        door = CellBoundary("d", "a", "b", BoundaryKind.DOOR)
        assert door.allows("a", "b")
        assert door.allows("b", "a")

    def test_one_way_door(self):
        door = CellBoundary("d", "a", "b", BoundaryKind.DOOR,
                            bidirectional=False)
        assert door.allows("a", "b")
        assert not door.allows("b", "a")

    def test_kind_openings(self):
        assert not BoundaryKind.WALL.has_opening
        assert BoundaryKind.DOOR.has_opening
        assert BoundaryKind.STAIRCASE.crosses_floors
        assert not BoundaryKind.DOOR.crosses_floors


class TestCellSpace:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            CellSpace("")

    def test_add_and_get(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a", geometry=square(0, 0)))
        assert "a" in space
        assert space.cell("a").cell_id == "a"
        assert len(space) == 1

    def test_duplicate_cell_rejected(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a"))
        with pytest.raises(DuplicateIdError):
            space.add_cell(Cell("a"))

    def test_overlapping_cells_rejected(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a", geometry=square(0, 0)))
        with pytest.raises(OverlappingCellsError):
            space.add_cell(Cell("b", geometry=square(5, 5)))

    def test_adjacent_cells_allowed(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a", geometry=square(0, 0)))
        space.add_cell(Cell("b", geometry=square(10, 0)))
        assert len(space) == 2

    def test_different_floors_may_project_overlap(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a", geometry=square(0, 0), floor=0))
        space.add_cell(Cell("b", geometry=square(0, 0), floor=1))
        assert len(space) == 2

    def test_validation_can_be_disabled(self):
        space = CellSpace("zones", validate_geometry=False)
        space.add_cell(Cell("a", geometry=square(0, 0)))
        space.add_cell(Cell("b", geometry=square(5, 5)))
        assert len(space) == 2

    def test_boundary_requires_known_cells(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a"))
        with pytest.raises(KeyError):
            space.add_boundary(CellBoundary("b1", "a", "ghost"))

    def test_duplicate_boundary_rejected(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a"))
        space.add_cell(Cell("b"))
        space.add_boundary(CellBoundary("b1", "a", "b"))
        with pytest.raises(DuplicateIdError):
            space.add_boundary(CellBoundary("b1", "a", "b"))

    def test_boundaries_between_multigraph(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a"))
        space.add_cell(Cell("b"))
        space.add_boundary(CellBoundary("door1", "a", "b"))
        space.add_boundary(CellBoundary("door2", "b", "a"))
        assert len(space.boundaries_between("a", "b")) == 2

    def test_cells_on_floor_and_class(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a", floor=0, semantic_class="Room"))
        space.add_cell(Cell("b", floor=1, semantic_class="Hall"))
        assert [c.cell_id for c in space.cells_on_floor(0)] == ["a"]
        assert [c.cell_id for c in space.cells_of_class("Hall")] == ["b"]

    def test_locate_point(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a", geometry=square(0, 0), floor=0))
        space.add_cell(Cell("b", geometry=square(10, 0), floor=0))
        assert space.locate_point(Point(5, 5)).cell_id == "a"
        assert space.locate_point(Point(15, 5)).cell_id == "b"
        assert space.locate_point(Point(50, 50)) is None

    def test_locate_point_respects_floor(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a", geometry=square(0, 0), floor=0))
        space.add_cell(Cell("b", geometry=square(0, 0), floor=1))
        assert space.locate_point(Point(5, 5), floor=1).cell_id == "b"

    def test_geometric_relation(self):
        space = CellSpace("rooms", validate_geometry=False)
        space.add_cell(Cell("a", geometry=square(0, 0)))
        space.add_cell(Cell("b", geometry=square(10, 0)))
        assert space.geometric_relation("a", "b") \
            is TopologicalRelation.MEET

    def test_geometric_relation_symbolic_raises(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a"))
        space.add_cell(Cell("b", geometry=square(0, 0)))
        with pytest.raises(ValueError):
            space.geometric_relation("a", "b")

    def test_adjacent_pairs(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a", geometry=square(0, 0), floor=0))
        space.add_cell(Cell("b", geometry=square(10, 0), floor=0))
        space.add_cell(Cell("c", geometry=square(30, 0), floor=0))
        assert space.adjacent_pairs() == [("a", "b")]

    def test_iteration_order(self):
        space = CellSpace("rooms")
        for name in ("z", "a", "m"):
            space.add_cell(Cell(name))
        assert [c.cell_id for c in space] == ["z", "a", "m"]
