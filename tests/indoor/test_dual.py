"""Tests for the Poincaré duality derivations."""

import pytest

from repro.indoor.cells import BoundaryKind, Cell, CellBoundary, CellSpace
from repro.indoor.dual import (
    derive_accessibility_nrg,
    derive_adjacency_nrg,
    derive_connectivity_nrg,
)
from repro.spatial.geometry import Polygon


@pytest.fixture
def three_rooms():
    """a|b|c in a row; a-b share a door, b-c share a wall, plus a
    one-way door c→a declared without geometry backing."""
    space = CellSpace("rooms")
    space.add_cell(Cell("a", geometry=Polygon.rectangle(0, 0, 10, 10),
                        floor=0))
    space.add_cell(Cell("b", geometry=Polygon.rectangle(10, 0, 20, 10),
                        floor=0))
    space.add_cell(Cell("c", geometry=Polygon.rectangle(20, 0, 30, 10),
                        floor=0))
    space.add_boundary(CellBoundary("door-ab", "a", "b",
                                    BoundaryKind.DOOR))
    space.add_boundary(CellBoundary("wall-bc", "b", "c",
                                    BoundaryKind.WALL))
    space.add_boundary(CellBoundary("oneway-ca", "c", "a",
                                    BoundaryKind.DOOR,
                                    bidirectional=False))
    return space


class TestAdjacency:
    def test_all_cells_become_nodes(self, three_rooms):
        graph = derive_adjacency_nrg(three_rooms)
        assert set(graph.nodes) == {"a", "b", "c"}

    def test_walls_witness_adjacency(self, three_rooms):
        graph = derive_adjacency_nrg(three_rooms, use_geometry=False)
        assert graph.has_transition("b", "c")
        assert graph.has_transition("c", "b")

    def test_geometry_detects_undeclared_adjacency(self):
        space = CellSpace("rooms")
        space.add_cell(Cell("a", geometry=Polygon.rectangle(0, 0, 5, 5),
                            floor=0))
        space.add_cell(Cell("b", geometry=Polygon.rectangle(5, 0, 10, 5),
                            floor=0))
        graph = derive_adjacency_nrg(space)
        assert graph.has_transition("a", "b")

    def test_symmetric(self, three_rooms):
        assert derive_adjacency_nrg(three_rooms).is_symmetric()


class TestConnectivity:
    def test_wall_excluded(self, three_rooms):
        graph = derive_connectivity_nrg(three_rooms)
        assert not graph.has_transition("b", "c")

    def test_doors_included_symmetrically(self, three_rooms):
        graph = derive_connectivity_nrg(three_rooms)
        assert graph.has_transition("a", "b")
        assert graph.has_transition("b", "a")
        # One-way doors are still openings: connectivity is symmetric.
        assert graph.has_transition("a", "c")
        assert graph.has_transition("c", "a")


class TestAccessibility:
    def test_directed_one_way(self, three_rooms):
        graph = derive_accessibility_nrg(three_rooms)
        assert graph.has_transition("c", "a")
        assert not graph.has_transition("a", "c")

    def test_bidirectional_door_both_ways(self, three_rooms):
        graph = derive_accessibility_nrg(three_rooms)
        assert graph.has_transition("a", "b")
        assert graph.has_transition("b", "a")

    def test_wall_never_accessible(self, three_rooms):
        graph = derive_accessibility_nrg(three_rooms)
        assert not graph.has_transition("b", "c")
        assert not graph.has_transition("c", "b")

    def test_edges_carry_boundary_id(self, three_rooms):
        graph = derive_accessibility_nrg(three_rooms)
        edges = graph.edges_between("a", "b")
        assert edges[0].boundary_id == "door-ab"

    def test_parallel_doors_stay_parallel(self):
        space = CellSpace("rooms", validate_geometry=False)
        space.add_cell(Cell("a"))
        space.add_cell(Cell("b"))
        space.add_boundary(CellBoundary("door1", "a", "b"))
        space.add_boundary(CellBoundary("door2", "a", "b"))
        graph = derive_accessibility_nrg(space)
        assert len(graph.edges_between("a", "b")) == 2
