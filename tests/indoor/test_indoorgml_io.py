"""Round-trip tests for the IndoorGML-like JSON serialisation."""

import pytest

from repro.indoor import indoorgml_io as io
from repro.indoor.cells import BoundaryKind, Cell, CellBoundary, CellSpace
from repro.indoor.hierarchy import add_hierarchy_edge
from repro.indoor.multilayer import LayeredIndoorGraph
from repro.indoor.nrg import NodeRelationGraph
from repro.spatial.geometry import Polygon


@pytest.fixture
def sample_graph():
    graph = LayeredIndoorGraph("sample")
    space = CellSpace("rooms")
    space.add_cell(Cell("a", name="Room A", semantic_class="Room",
                        geometry=Polygon.rectangle(0, 0, 5, 5), floor=0,
                        attributes={"theme": "Egypt"}))
    space.add_cell(Cell("b", floor=0,
                        geometry=Polygon.rectangle(5, 0, 10, 5)))
    space.add_boundary(CellBoundary("door", "a", "b", BoundaryKind.DOOR,
                                    bidirectional=False,
                                    attributes={"width": 1.2}))
    nrg = NodeRelationGraph("rooms")
    nrg.connect("a", "b", edge_id="door:fwd", boundary_id="door",
                weight=2.0)
    graph.add_layer(nrg, space)
    coarse = NodeRelationGraph("zones")
    coarse.add_node("z")
    graph.add_layer(coarse)
    add_hierarchy_edge(graph, "z", "a")
    add_hierarchy_edge(graph, "z", "b")
    return graph


class TestRoundTrip:
    def test_layers_preserved(self, sample_graph):
        restored = io.loads(io.dumps(sample_graph))
        assert restored.layer_names == sample_graph.layer_names
        assert restored.name == "sample"

    def test_cells_preserved(self, sample_graph):
        restored = io.loads(io.dumps(sample_graph))
        cell = restored.space("rooms").cell("a")
        assert cell.name == "Room A"
        assert cell.semantic_class == "Room"
        assert cell.floor == 0
        assert cell.attribute("theme") == "Egypt"
        assert cell.geometry.area() == 25.0

    def test_boundaries_preserved(self, sample_graph):
        restored = io.loads(io.dumps(sample_graph))
        boundary = restored.space("rooms").boundary("door")
        assert boundary.kind is BoundaryKind.DOOR
        assert not boundary.bidirectional
        assert boundary.attributes["width"] == 1.2

    def test_edges_preserved(self, sample_graph):
        restored = io.loads(io.dumps(sample_graph))
        edges = restored.layer("rooms").edges_between("a", "b")
        assert len(edges) == 1
        assert edges[0].boundary_id == "door"
        assert edges[0].weight == 2.0

    def test_joint_edges_preserved(self, sample_graph):
        restored = io.loads(io.dumps(sample_graph))
        assert restored.joint_edge_count == sample_graph.joint_edge_count
        assert restored.joint_partners("z", layer="rooms") == ["a", "b"]

    def test_double_roundtrip_stable(self, sample_graph):
        once = io.dumps(io.loads(io.dumps(sample_graph)))
        twice = io.dumps(io.loads(once))
        assert once == twice

    def test_symbolic_layer_roundtrip(self, sample_graph):
        restored = io.loads(io.dumps(sample_graph))
        assert not restored.has_space("zones")
        assert "z" in restored.layer("zones")


class TestErrors:
    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            io.graph_from_dict({"schema": "something-else", "layers": []})

    def test_file_roundtrip(self, sample_graph, tmp_path):
        path = str(tmp_path / "graph.json")
        io.save(sample_graph, path)
        restored = io.load(path)
        assert restored.layer_names == sample_graph.layer_names


def test_louvre_space_roundtrip(louvre_space):
    """The full Louvre graph survives serialisation."""
    dumped = io.dumps(louvre_space.graph)
    restored = io.loads(dumped)
    assert restored.layer_names == louvre_space.graph.layer_names
    assert restored.node_count == louvre_space.graph.node_count
    assert restored.intra_edge_count \
        == louvre_space.graph.intra_edge_count
    assert restored.joint_edge_count \
        == louvre_space.graph.joint_edge_count
