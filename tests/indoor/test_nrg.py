"""Tests for the Node-Relation Graph."""

import pytest

from repro.indoor.nrg import EdgeKind, NodeRelationGraph, NRGEdge


@pytest.fixture
def chain():
    """a → b → c → d with a reverse edge b→a only."""
    graph = NodeRelationGraph("chain")
    graph.connect("a", "b", bidirectional=True)
    graph.connect("b", "c")
    graph.connect("c", "d")
    return graph


class TestEdgeBasics:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            NRGEdge("e", "a", "a")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            NRGEdge("e", "a", "b", weight=-1)

    def test_kind_mismatch_rejected(self):
        graph = NodeRelationGraph("g", EdgeKind.ADJACENCY)
        with pytest.raises(ValueError):
            graph.add_edge(NRGEdge("e", "a", "b",
                                   EdgeKind.ACCESSIBILITY))

    def test_duplicate_edge_id_rejected(self):
        graph = NodeRelationGraph("g")
        graph.add_edge(NRGEdge("e", "a", "b", EdgeKind.ACCESSIBILITY))
        with pytest.raises(ValueError):
            graph.add_edge(NRGEdge("e", "b", "c",
                                   EdgeKind.ACCESSIBILITY))


class TestStructure:
    def test_nodes_auto_registered(self, chain):
        assert set(chain.nodes) == {"a", "b", "c", "d"}
        assert len(chain) == 4

    def test_successors_predecessors(self, chain):
        assert chain.successors("b") == ["a", "c"]
        assert chain.predecessors("b") == ["a"]

    def test_has_transition_directed(self, chain):
        assert chain.has_transition("b", "c")
        assert not chain.has_transition("c", "b")

    def test_parallel_edges(self):
        graph = NodeRelationGraph("g")
        graph.connect("a", "b", edge_id="door1")
        graph.connect("a", "b", edge_id="door2")
        assert len(graph.edges_between("a", "b")) == 2
        assert graph.successors("a") == ["b"]  # distinct nodes

    def test_degree(self, chain):
        assert chain.degree("b") == 3  # in: a; out: a, c

    def test_is_symmetric(self, chain):
        assert not chain.is_symmetric()
        symmetric = NodeRelationGraph("s")
        symmetric.connect("x", "y", bidirectional=True)
        assert symmetric.is_symmetric()

    def test_asymmetric_pairs(self, chain):
        assert set(chain.asymmetric_pairs()) == {("b", "c"), ("c", "d")}


class TestTraversal:
    def test_reachable_from(self, chain):
        assert chain.reachable_from("a") == {"a", "b", "c", "d"}
        assert chain.reachable_from("d") == {"d"}

    def test_reachable_unknown_raises(self, chain):
        with pytest.raises(KeyError):
            chain.reachable_from("ghost")

    def test_shortest_path_bfs(self, chain):
        assert chain.shortest_path("a", "d") == ["a", "b", "c", "d"]

    def test_shortest_path_self(self, chain):
        assert chain.shortest_path("b", "b") == ["b"]

    def test_shortest_path_unreachable(self, chain):
        assert chain.shortest_path("d", "a") is None

    def test_shortest_path_weighted(self):
        graph = NodeRelationGraph("w")
        graph.connect("a", "b", weight=1.0)
        graph.connect("b", "c", weight=1.0)
        graph.connect("a", "c", weight=5.0)
        assert graph.shortest_path("a", "c") == ["a", "c"]  # hops
        assert graph.shortest_path("a", "c", weighted=True) \
            == ["a", "b", "c"]

    def test_all_simple_paths(self):
        graph = NodeRelationGraph("p")
        graph.connect("a", "b")
        graph.connect("b", "d")
        graph.connect("a", "c")
        graph.connect("c", "d")
        paths = graph.all_simple_paths("a", "d")
        assert sorted(paths) == [["a", "b", "d"], ["a", "c", "d"]]

    def test_all_simple_paths_respects_max_length(self):
        graph = NodeRelationGraph("p")
        graph.connect("a", "b")
        graph.connect("b", "c")
        graph.connect("c", "d")
        assert graph.all_simple_paths("a", "d", max_length=2) == []


class TestDerivations:
    def test_to_undirected_adds_reverses(self, chain):
        undirected = chain.to_undirected()
        assert undirected.has_transition("c", "b")
        assert undirected.has_transition("d", "c")
        assert undirected.is_symmetric()

    def test_to_undirected_preserves_nodes(self, chain):
        assert set(chain.to_undirected().nodes) == set(chain.nodes)

    def test_subgraph(self, chain):
        sub = chain.subgraph(["a", "b", "c"])
        assert set(sub.nodes) == {"a", "b", "c"}
        assert sub.has_transition("b", "c")
        assert not sub.has_transition("c", "d")

    def test_transition_count(self, chain):
        assert chain.transition_count() == 4

    def test_to_networkx(self, chain):
        nx_graph = chain.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
