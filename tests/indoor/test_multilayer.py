"""Tests for the layered indoor graph (MLSM)."""

import pytest

from repro.indoor.cells import Cell, CellSpace
from repro.indoor.multilayer import (
    JointEdge,
    LayerConsistencyError,
    LayeredIndoorGraph,
)
from repro.indoor.nrg import EdgeKind, NodeRelationGraph
from repro.spatial.geometry import Polygon
from repro.spatial.topology import TopologicalRelation as R


def simple_layer(name, nodes):
    graph = NodeRelationGraph(name)
    for node in nodes:
        graph.add_node(node)
    return graph


@pytest.fixture
def two_layer_graph():
    graph = LayeredIndoorGraph("test")
    graph.add_layer(simple_layer("coarse", ["hall"]))
    graph.add_layer(simple_layer("fine", ["h1", "h2"]))
    graph.add_joint_edge(JointEdge("coarse", "hall", "fine", "h1",
                                   R.CONTAINS))
    graph.add_joint_edge(JointEdge("coarse", "hall", "fine", "h2",
                                   R.CONTAINS))
    return graph


class TestJointEdge:
    def test_same_layer_rejected(self):
        with pytest.raises(ValueError):
            JointEdge("l", "a", "l", "b", R.CONTAINS)

    def test_disjoint_rejected(self):
        with pytest.raises(ValueError):
            JointEdge("l1", "a", "l2", "b", R.DISJOINT)

    def test_meet_rejected(self):
        with pytest.raises(ValueError):
            JointEdge("l1", "a", "l2", "b", R.MEET)

    def test_converse(self):
        edge = JointEdge("l1", "a", "l2", "b", R.CONTAINS)
        conv = edge.converse()
        assert conv.source == "b" and conv.target == "a"
        assert conv.relation is R.INSIDE


class TestLayers:
    def test_duplicate_layer_rejected(self, two_layer_graph):
        with pytest.raises(LayerConsistencyError):
            two_layer_graph.add_layer(simple_layer("coarse", ["x"]))

    def test_node_in_two_layers_rejected(self):
        graph = LayeredIndoorGraph("test")
        graph.add_layer(simple_layer("l1", ["shared"]))
        with pytest.raises(LayerConsistencyError):
            graph.add_layer(simple_layer("l2", ["shared"]))

    def test_layer_of(self, two_layer_graph):
        assert two_layer_graph.layer_of("hall") == "coarse"
        assert two_layer_graph.layer_of("h1") == "fine"

    def test_node_and_edge_counts(self, two_layer_graph):
        assert two_layer_graph.node_count == 3
        assert two_layer_graph.intra_edge_count == 0
        assert two_layer_graph.joint_edge_count == 4  # converses too


class TestJointEdgeOperations:
    def test_unknown_endpoint_rejected(self, two_layer_graph):
        with pytest.raises(LayerConsistencyError):
            two_layer_graph.add_joint_edge(
                JointEdge("coarse", "ghost", "fine", "h1", R.CONTAINS))

    def test_wrong_layer_rejected(self, two_layer_graph):
        with pytest.raises(LayerConsistencyError):
            two_layer_graph.add_joint_edge(
                JointEdge("fine", "hall", "coarse", "h1", R.CONTAINS))

    def test_converse_stored_automatically(self, two_layer_graph):
        partners = two_layer_graph.joint_partners("h1", layer="coarse")
        assert partners == ["hall"]

    def test_joint_partners_filter_relation(self, two_layer_graph):
        assert two_layer_graph.joint_partners(
            "hall", relations=[R.CONTAINS]) == ["h1", "h2"]
        assert two_layer_graph.joint_partners(
            "hall", relations=[R.OVERLAP]) == []

    def test_joint_edges_from_into(self, two_layer_graph):
        assert len(two_layer_graph.joint_edges_from("hall")) == 2
        assert len(two_layer_graph.joint_edges_into("hall")) == 2


class TestOverallStates:
    def test_valid_combination(self, two_layer_graph):
        assert two_layer_graph.is_valid_overall_state(
            {"coarse": "hall", "fine": "h1"})

    def test_invalid_missing_joint(self):
        graph = LayeredIndoorGraph("test")
        graph.add_layer(simple_layer("l1", ["a"]))
        graph.add_layer(simple_layer("l2", ["b"]))
        assert not graph.is_valid_overall_state({"l1": "a", "l2": "b"})

    def test_wrong_layer_in_state(self, two_layer_graph):
        assert not two_layer_graph.is_valid_overall_state(
            {"coarse": "h1"})

    def test_overall_states_enumeration(self, two_layer_graph):
        states = two_layer_graph.overall_states("hall", ["fine"])
        assert states == [
            {"coarse": "hall", "fine": "h1"},
            {"coarse": "hall", "fine": "h2"},
        ]


class TestGeometricDerivation:
    def test_derive_joint_edges(self):
        coarse_space = CellSpace("coarse")
        coarse_space.add_cell(Cell(
            "zone", geometry=Polygon.rectangle(0, 0, 20, 10), floor=0))
        fine_space = CellSpace("fine")
        fine_space.add_cell(Cell(
            "r1", geometry=Polygon.rectangle(0, 0, 10, 10), floor=0))
        fine_space.add_cell(Cell(
            "r2", geometry=Polygon.rectangle(10, 0, 20, 10), floor=0))
        graph = LayeredIndoorGraph("test")
        graph.add_layer(simple_layer("coarse", ["zone"]), coarse_space)
        graph.add_layer(simple_layer("fine", ["r1", "r2"]), fine_space)
        created = graph.derive_joint_edges_from_geometry("coarse", "fine")
        assert len(created) == 2
        assert all(e.relation is R.COVERS for e in created)

    def test_different_floors_not_related(self):
        coarse_space = CellSpace("coarse")
        coarse_space.add_cell(Cell(
            "zone", geometry=Polygon.rectangle(0, 0, 10, 10), floor=0))
        fine_space = CellSpace("fine")
        fine_space.add_cell(Cell(
            "r1", geometry=Polygon.rectangle(2, 2, 4, 4), floor=1))
        graph = LayeredIndoorGraph("test")
        graph.add_layer(simple_layer("coarse", ["zone"]), coarse_space)
        graph.add_layer(simple_layer("fine", ["r1"]), fine_space)
        assert graph.derive_joint_edges_from_geometry("coarse",
                                                      "fine") == []

    def test_requires_spaces(self, two_layer_graph):
        with pytest.raises(LayerConsistencyError):
            two_layer_graph.derive_joint_edges_from_geometry(
                "coarse", "fine")


class TestValidation:
    def test_clean_graph_validates(self, two_layer_graph):
        assert two_layer_graph.validate() == []

    def test_wrong_layer_kind_flagged(self):
        graph = LayeredIndoorGraph("test")
        adjacency = NodeRelationGraph("adj", EdgeKind.ADJACENCY)
        adjacency.add_node("a")
        graph.add_layer(adjacency)
        problems = graph.validate()
        assert any("accessibility" in p for p in problems)

    def test_missing_converse_flagged(self):
        graph = LayeredIndoorGraph("test")
        graph.add_layer(simple_layer("l1", ["a"]))
        graph.add_layer(simple_layer("l2", ["b"]))
        graph.add_joint_edge(JointEdge("l1", "a", "l2", "b", R.CONTAINS),
                             add_converse=False)
        problems = graph.validate()
        assert any("converse" in p for p in problems)

    def test_to_networkx_edge_colours(self, two_layer_graph):
        nx_graph = two_layer_graph.to_networkx()
        colours = {data["color"] for _, _, data
                   in nx_graph.edges(data=True)}
        assert colours == {"joint"}
        assert nx_graph.number_of_nodes() == 3
