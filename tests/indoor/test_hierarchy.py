"""Tests for layer hierarchies and the Section 3.2 rules."""

import pytest

from repro.indoor.hierarchy import (
    CANONICAL_LAYER_ROLES,
    CORE_LAYER_ROLES,
    HierarchyValidationError,
    LayerHierarchy,
    LayerRole,
    add_hierarchy_edge,
)
from repro.indoor.multilayer import JointEdge, LayeredIndoorGraph
from repro.indoor.nrg import NodeRelationGraph
from repro.spatial.topology import TopologicalRelation as R


def layer(name, nodes):
    graph = NodeRelationGraph(name)
    for node in nodes:
        graph.add_node(node)
    return graph


@pytest.fixture
def museum_graph():
    """building → floor → room, fully parented."""
    graph = LayeredIndoorGraph("museum")
    graph.add_layer(layer("building", ["B"]))
    graph.add_layer(layer("floor", ["F0", "F1"]))
    graph.add_layer(layer("room", ["r1", "r2", "r3"]))
    add_hierarchy_edge(graph, "B", "F0")
    add_hierarchy_edge(graph, "B", "F1")
    add_hierarchy_edge(graph, "F0", "r1")
    add_hierarchy_edge(graph, "F0", "r2")
    add_hierarchy_edge(graph, "F1", "r3", R.COVERS)
    return graph


@pytest.fixture
def hierarchy(museum_graph):
    return LayerHierarchy(
        museum_graph, ["building", "floor", "room"],
        roles=[LayerRole.BUILDING, LayerRole.FLOOR, LayerRole.ROOM])


class TestConstruction:
    def test_needs_two_layers(self, museum_graph):
        with pytest.raises(HierarchyValidationError):
            LayerHierarchy(museum_graph, ["building"])

    def test_distinct_layers_required(self, museum_graph):
        with pytest.raises(HierarchyValidationError):
            LayerHierarchy(museum_graph, ["floor", "floor"])

    def test_unknown_layer_rejected(self, museum_graph):
        with pytest.raises(HierarchyValidationError):
            LayerHierarchy(museum_graph, ["building", "ghost"])

    def test_roles_must_parallel(self, museum_graph):
        with pytest.raises(HierarchyValidationError):
            LayerHierarchy(museum_graph, ["building", "floor"],
                           roles=[LayerRole.BUILDING])

    def test_depth_and_levels(self, hierarchy):
        assert hierarchy.depth == 3
        assert hierarchy.level_of_layer("building") == 0
        assert hierarchy.level_of_layer("room") == 2

    def test_roles(self, hierarchy):
        assert hierarchy.role_of_layer("floor") is LayerRole.FLOOR
        assert hierarchy.layer_for_role(LayerRole.ROOM) == "room"
        assert hierarchy.has_core_roles()

    def test_core_roles_constant(self):
        assert CORE_LAYER_ROLES == (LayerRole.BUILDING, LayerRole.FLOOR,
                                    LayerRole.ROOM)
        assert len(CANONICAL_LAYER_ROLES) == 5


class TestNavigation:
    def test_parent_child(self, hierarchy):
        assert hierarchy.parent("r1") == "F0"
        assert hierarchy.parent("B") is None
        assert sorted(hierarchy.children("F0")) == ["r1", "r2"]

    def test_ancestors(self, hierarchy):
        assert hierarchy.ancestors("r3") == ["F1", "B"]

    def test_descendants(self, hierarchy):
        assert set(hierarchy.descendants("B")) \
            == {"F0", "F1", "r1", "r2", "r3"}

    def test_lift(self, hierarchy):
        assert hierarchy.lift("r1", "floor") == "F0"
        assert hierarchy.lift("r1", "building") == "B"
        assert hierarchy.lift("r1", "room") == "r1"

    def test_lift_downward_is_none(self, hierarchy):
        assert hierarchy.lift("F0", "room") is None

    def test_lift_unknown_layer_raises(self, hierarchy):
        with pytest.raises(KeyError):
            hierarchy.lift("r1", "wing")

    def test_lowest_common_ancestor(self, hierarchy):
        assert hierarchy.lowest_common_ancestor("r1", "r2") == "F0"
        assert hierarchy.lowest_common_ancestor("r1", "r3") == "B"
        assert hierarchy.lowest_common_ancestor("r1", "r1") == "r1"

    def test_depth_of_node(self, hierarchy):
        assert hierarchy.depth_of_node("B") == 0
        assert hierarchy.depth_of_node("r2") == 2

    def test_orphans(self, museum_graph):
        museum_graph.add_layer(layer("roi", ["exhibit"]))
        hierarchy = LayerHierarchy(
            museum_graph, ["building", "floor", "room", "roi"])
        assert hierarchy.orphans("roi") == ["exhibit"]
        assert hierarchy.orphans("building") == []
        assert hierarchy.lift("exhibit", "floor") is None


class TestSectionRules:
    def test_layer_skipping_rejected(self, museum_graph):
        museum_graph.add_joint_edge(
            JointEdge("building", "B", "room", "r1", R.CONTAINS))
        with pytest.raises(HierarchyValidationError) as excinfo:
            LayerHierarchy(museum_graph, ["building", "floor", "room"])
        assert "skips" in str(excinfo.value)

    def test_overlap_in_hierarchy_rejected(self, museum_graph):
        museum_graph.add_joint_edge(
            JointEdge("floor", "F0", "room", "r3", R.OVERLAP))
        with pytest.raises(HierarchyValidationError) as excinfo:
            LayerHierarchy(museum_graph, ["building", "floor", "room"])
        assert "contains/covers" in str(excinfo.value)

    def test_equal_in_hierarchy_rejected(self, museum_graph):
        museum_graph.add_joint_edge(
            JointEdge("floor", "F1", "room", "r2", R.EQUAL))
        with pytest.raises(HierarchyValidationError):
            LayerHierarchy(museum_graph, ["building", "floor", "room"])

    def test_two_parents_rejected(self, museum_graph):
        museum_graph.add_joint_edge(
            JointEdge("floor", "F1", "room", "r1", R.CONTAINS))
        with pytest.raises(HierarchyValidationError) as excinfo:
            LayerHierarchy(museum_graph, ["building", "floor", "room"])
        assert "two parents" in str(excinfo.value)

    def test_outside_layers_ignored(self, museum_graph):
        """Joint edges to layers outside the hierarchy are legal."""
        museum_graph.add_layer(layer("zones", ["z"]))
        museum_graph.add_joint_edge(
            JointEdge("zones", "z", "room", "r1", R.OVERLAP))
        hierarchy = LayerHierarchy(museum_graph,
                                   ["building", "floor", "room"])
        assert hierarchy.validate() == []

    def test_add_hierarchy_edge_rejects_overlap(self, museum_graph):
        with pytest.raises(ValueError):
            add_hierarchy_edge(museum_graph, "F0", "r3", R.OVERLAP)


class TestMemoization:
    """LCA/depth lookups are memoized; reindex() refreshes both the
    navigation maps and the memos after graph mutation."""

    def test_cached_results_stable(self, hierarchy):
        first = hierarchy.lowest_common_ancestor("r1", "r2")
        assert first == "F0"
        assert hierarchy.lowest_common_ancestor("r1", "r2") == first
        # symmetric pair is cached too and agrees
        assert hierarchy.lowest_common_ancestor("r2", "r1") == first
        assert hierarchy.depth_of_node("r1") == 2
        assert hierarchy.depth_of_node("r1") == 2

    def test_cached_none_is_remembered(self, museum_graph):
        graph = LayeredIndoorGraph("partial")
        graph.add_layer(layer("building", ["B"]))
        graph.add_layer(layer("floor", ["F0", "F1"]))
        hierarchy = LayerHierarchy(graph, ["building", "floor"])
        assert hierarchy.lowest_common_ancestor("F0", "F1") is None
        assert hierarchy.lowest_common_ancestor("F0", "F1") is None

    def test_reindex_picks_up_new_edges(self):
        graph = LayeredIndoorGraph("growing")
        graph.add_layer(layer("building", ["B"]))
        graph.add_layer(layer("floor", ["F0", "F1"]))
        hierarchy = LayerHierarchy(graph, ["building", "floor"])
        # Prime the memo with the unparented answer.
        assert hierarchy.lowest_common_ancestor("F0", "F1") is None
        add_hierarchy_edge(graph, "B", "F0")
        add_hierarchy_edge(graph, "B", "F1")
        hierarchy.reindex()
        assert hierarchy.parent("F0") == "B"
        assert hierarchy.lowest_common_ancestor("F0", "F1") == "B"

    def test_invalidate_caches_alone_keeps_navigation(self, hierarchy):
        assert hierarchy.lowest_common_ancestor("r1", "r2") == "F0"
        hierarchy.invalidate_caches()
        assert hierarchy.lowest_common_ancestor("r1", "r2") == "F0"
        assert hierarchy.depth_of_node("r3") == 2
