"""Tests for the full-coverage hypothesis analysis."""

import math

import pytest

from repro.indoor.coverage import (
    CoverageReport,
    coverage_ratio,
    coverage_summary,
    layer_coverage_report,
    node_coverage,
)
from repro.indoor.hierarchy import LayerHierarchy, add_hierarchy_edge
from repro.indoor.multilayer import LayeredIndoorGraph
from repro.indoor.cells import Cell, CellSpace
from repro.indoor.nrg import NodeRelationGraph
from repro.spatial.geometry import Polygon


def test_coverage_ratio_full():
    parent = Polygon.rectangle(0, 0, 10, 10)
    children = [Polygon.rectangle(0, 0, 5, 10),
                Polygon.rectangle(5, 0, 10, 10)]
    assert math.isclose(coverage_ratio(parent, children), 1.0)


def test_coverage_ratio_partial():
    parent = Polygon.rectangle(0, 0, 10, 10)
    children = [Polygon.rectangle(0, 0, 5, 5)]
    assert math.isclose(coverage_ratio(parent, children), 0.25)


def test_coverage_ratio_child_outside_clipped():
    parent = Polygon.rectangle(0, 0, 10, 10)
    children = [Polygon.rectangle(5, 0, 15, 10)]  # half outside
    assert math.isclose(coverage_ratio(parent, children), 0.5)


def test_coverage_ratio_no_children():
    assert coverage_ratio(Polygon.rectangle(0, 0, 1, 1), []) == 0.0


def test_coverage_report_flags():
    full = CoverageReport("p", "l", 2, 100.0, 100.0, 1.0)
    partial = CoverageReport("p", "l", 1, 100.0, 30.0, 0.3)
    assert full.fully_covered
    assert not partial.fully_covered


@pytest.fixture
def small_hierarchy():
    graph = LayeredIndoorGraph("cov")
    floor_space = CellSpace("floor")
    floor_space.add_cell(Cell(
        "F", geometry=Polygon.rectangle(0, 0, 20, 10), floor=0))
    room_space = CellSpace("room")
    room_space.add_cell(Cell(
        "r1", geometry=Polygon.rectangle(0, 0, 10, 10), floor=0))
    room_space.add_cell(Cell(
        "r2", geometry=Polygon.rectangle(10, 0, 20, 10), floor=0))
    roi_space = CellSpace("roi")
    roi_space.add_cell(Cell(
        "e1", geometry=Polygon.rectangle(2, 2, 4, 4), floor=0))

    def nrg(space):
        graph_layer = NodeRelationGraph(space.name)
        for cell in space:
            graph_layer.add_node(cell.cell_id)
        return graph_layer

    graph.add_layer(nrg(floor_space), floor_space)
    graph.add_layer(nrg(room_space), room_space)
    graph.add_layer(nrg(roi_space), roi_space)
    add_hierarchy_edge(graph, "F", "r1", relation=_covers())
    add_hierarchy_edge(graph, "F", "r2", relation=_covers())
    add_hierarchy_edge(graph, "r1", "e1")
    return LayerHierarchy(graph, ["floor", "room", "roi"])


def _covers():
    from repro.spatial.topology import TopologicalRelation
    return TopologicalRelation.COVERS


def test_node_coverage_full(small_hierarchy):
    report = node_coverage(small_hierarchy, "F")
    assert report is not None
    assert report.fully_covered
    assert report.child_count == 2


def test_node_coverage_partial(small_hierarchy):
    report = node_coverage(small_hierarchy, "r1")
    assert math.isclose(report.ratio, 0.04)
    assert not report.fully_covered


def test_layer_report_sorted_ascending(small_hierarchy):
    reports = layer_coverage_report(small_hierarchy, "room")
    assert len(reports) == 2
    assert reports[0].ratio <= reports[1].ratio
    assert reports[0].parent == "r2" or reports[0].ratio == 0.0


def test_summary(small_hierarchy):
    reports = layer_coverage_report(small_hierarchy, "room")
    summary = coverage_summary(reports)
    assert summary["count"] == 2
    assert 0.0 <= summary["mean_ratio"] <= 1.0
    assert summary["fully_covered_share"] == 0.0


def test_summary_empty():
    assert coverage_summary([])["count"] == 0
