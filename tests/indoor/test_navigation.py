"""Tests for the navigation layer."""

import pytest

from repro.indoor.cells import BoundaryKind, Cell, CellBoundary, CellSpace
from repro.indoor.dual import derive_accessibility_nrg
from repro.indoor.navigation import (
    Route,
    RoutePlanner,
    UnreachableError,
    plan_hierarchical,
    route_instructions,
)
from repro.indoor.nrg import NodeRelationGraph
from repro.louvre.floorplan import MONA_LISA_ROI, SALLE_DES_ETATS_ROOM
from repro.louvre.zones import ZONE_C, ZONE_E, ZONE_ENTRANCE, ZONE_S


@pytest.fixture
def corridor():
    """a ↔ b ↔ c plus a one-way shortcut a→c with weight 5."""
    graph = NodeRelationGraph("corridor")
    graph.connect("a", "b", edge_id="ab", boundary_id="door-ab",
                  bidirectional=True, weight=1.0)
    graph.connect("b", "c", edge_id="bc", boundary_id="door-bc",
                  bidirectional=True, weight=1.0)
    graph.connect("a", "c", edge_id="ac", boundary_id="shortcut",
                  weight=5.0)
    return graph


class TestRoutePlanner:
    def test_hop_shortest(self, corridor):
        route = RoutePlanner(corridor).plan("a", "c")
        assert route.states == ("a", "c")  # fewest hops wins
        assert route.boundaries() == ["shortcut"]

    def test_weighted_shortest(self, corridor):
        route = RoutePlanner(corridor, weighted=True).plan("a", "c")
        assert route.states == ("a", "b", "c")
        assert route.total_weight() == 2.0

    def test_trivial_route(self, corridor):
        route = RoutePlanner(corridor).plan("b", "b")
        assert route.hop_count == 0
        assert route.states == ("b",)

    def test_one_way_respected(self, corridor):
        # c → a must go via b; the shortcut is one-way a → c.
        route = RoutePlanner(corridor).plan("c", "a")
        assert route.states == ("c", "b", "a")

    def test_unreachable(self):
        graph = NodeRelationGraph("g")
        graph.connect("a", "b")  # one-way
        graph.add_node("island")
        with pytest.raises(UnreachableError):
            RoutePlanner(graph).plan("a", "island")

    def test_plan_via(self, corridor):
        route = RoutePlanner(corridor).plan_via(["c", "a", "c"])
        assert route.states[0] == "c"
        assert route.states[-1] == "c"
        assert route.hop_count >= 3

    def test_plan_via_needs_two_stops(self, corridor):
        with pytest.raises(ValueError):
            RoutePlanner(corridor).plan_via(["a"])

    def test_reachable_within(self, corridor):
        planner = RoutePlanner(corridor)
        assert planner.reachable_within("a", 1) == ["b", "c"]
        assert planner.reachable_within("c", 1) == ["b"]


class TestLouvreRouting:
    def test_zone_route_exists(self, louvre_space):
        planner = RoutePlanner(louvre_space.dataset_zone_nrg())
        route = planner.plan(ZONE_ENTRANCE, ZONE_C)
        assert route.states[0] == ZONE_ENTRANCE
        assert route.states[-1] == ZONE_C

    def test_exit_is_a_trap(self, louvre_space):
        planner = RoutePlanner(louvre_space.dataset_zone_nrg())
        with pytest.raises(UnreachableError):
            planner.plan(ZONE_C, ZONE_ENTRANCE)

    def test_room_level_route(self, louvre_space):
        rooms = louvre_space.graph.layer("rooms")
        planner = RoutePlanner(rooms)
        salle = SALLE_DES_ETATS_ROOM
        neighbour = louvre_space.floorplan.rooms_of_zone(
            "zone60854")[0]
        route = planner.plan(salle, neighbour)
        assert route.hop_count >= 1

    def test_hierarchical_matches_flat_endpoints(self, louvre_space):
        rooms = list(louvre_space.floorplan.rooms_of_zone("zone60868"))
        origin = rooms[0]
        destination = louvre_space.floorplan.rooms_of_zone(
            "zone60854")[-1]
        coarse, fine = plan_hierarchical(
            louvre_space.core_hierarchy, "rooms", origin, destination)
        assert fine.states[0] == origin
        assert fine.states[-1] == destination
        assert coarse  # a corridor was planned
        flat = RoutePlanner(louvre_space.graph.layer("rooms")).plan(
            origin, destination)
        # The corridor-restricted route is never shorter than optimal.
        assert fine.hop_count >= flat.hop_count


class TestInstructions:
    @pytest.fixture
    def space(self):
        space = CellSpace("demo", validate_geometry=False)
        space.add_cell(Cell("a", name="Gallery"))
        space.add_cell(Cell("b", name="Stairwell"))
        space.add_cell(Cell("c", name="Balcony"))
        space.add_boundary(CellBoundary("door-1", "a", "b",
                                        BoundaryKind.DOOR))
        space.add_boundary(CellBoundary("stairs-1", "b", "c",
                                        BoundaryKind.STAIRCASE))
        return space

    def test_instruction_verbs(self, space):
        nrg = derive_accessibility_nrg(space)
        route = RoutePlanner(nrg).plan("a", "c")
        lines = route_instructions(route, space)
        assert lines[0].startswith("start in Gallery")
        assert any("go through door-1" in line for line in lines)
        assert any("take the stairs" in line for line in lines)
        assert lines[-1].startswith("you have arrived")

    def test_trivial_instructions(self, space):
        nrg = derive_accessibility_nrg(space)
        route = RoutePlanner(nrg).plan("a", "a")
        assert route_instructions(route, space) \
            == ["you are already there"]

    def test_instructions_without_space(self, corridor):
        route = RoutePlanner(corridor).plan("a", "c")
        lines = route_instructions(route)
        assert "shortcut" in lines[1]
