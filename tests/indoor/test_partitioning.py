"""Tests for the cell subdivision toolkit."""

import pytest

from repro.indoor.cells import Cell, CellSpace
from repro.indoor.multilayer import LayeredIndoorGraph
from repro.indoor.nrg import NodeRelationGraph
from repro.indoor.partitioning import (
    any_of,
    subdivide,
    too_big,
    too_connected,
    too_many_properties,
)
from repro.spatial.geometry import Polygon
from repro.spatial.topology import TopologicalRelation


@pytest.fixture
def graph():
    """Rooms 1..3 plus a big hall 5, Figure 1 style."""
    space = CellSpace("rooms", validate_geometry=False)
    space.add_cell(Cell("1", geometry=Polygon.rectangle(0, 0, 10, 10),
                        floor=0))
    space.add_cell(Cell("2", geometry=Polygon.rectangle(10, 0, 20, 10),
                        floor=0))
    space.add_cell(Cell("5", name="hall",
                        geometry=Polygon.rectangle(0, 10, 20, 40),
                        floor=0))
    nrg = NodeRelationGraph("rooms")
    nrg.connect("1", "2", edge_id="d12", boundary_id="door12",
                bidirectional=True)
    nrg.connect("1", "5", edge_id="d15", bidirectional=True)
    layered = LayeredIndoorGraph("fig1-style")
    layered.add_layer(nrg, space)
    return layered


class TestCriteria:
    def test_too_big(self, graph):
        criterion = too_big(150.0)
        space = graph.space("rooms")
        nrg = graph.layer("rooms")
        assert criterion(space.cell("5"), nrg)
        assert not criterion(space.cell("1"), nrg)

    def test_too_many_properties(self):
        criterion = too_many_properties(1)
        nrg = NodeRelationGraph("x")
        rich = Cell("r", attributes={"a": 1, "b": 2})
        poor = Cell("p", attributes={"a": 1})
        assert criterion(rich, nrg)
        assert not criterion(poor, nrg)

    def test_too_connected(self, graph):
        criterion = too_connected(3)
        space = graph.space("rooms")
        nrg = graph.layer("rooms")
        assert criterion(space.cell("1"), nrg)  # degree 4
        assert not criterion(space.cell("2"), nrg)

    def test_any_of(self, graph):
        criterion = any_of(too_big(150.0), too_connected(3))
        space = graph.space("rooms")
        nrg = graph.layer("rooms")
        assert criterion(space.cell("5"), nrg)
        assert criterion(space.cell("1"), nrg)
        assert not criterion(space.cell("2"), nrg)


class TestSubdivide:
    def test_figure1_layout(self, graph):
        result = subdivide(graph, "rooms", too_big(150.0), parts=3)
        assert result.split_cells == {"5": ["5a", "5b", "5c"]}
        assert set(result.replicated_cells) == {"1", "2"}

        # Split cell links to parts with covers/contains...
        partners = graph.joint_partners(
            "5", layer=result.fine_layer,
            relations=[TopologicalRelation.COVERS,
                       TopologicalRelation.CONTAINS])
        assert sorted(partners) == ["5a", "5b", "5c"]
        # ...replicas link with equal (the MLSM replication rule).
        assert graph.joint_partners(
            "1", layer=result.fine_layer,
            relations=[TopologicalRelation.EQUAL]) == ["1.r"]

    def test_parts_cover_parent(self, graph):
        result = subdivide(graph, "rooms", too_big(150.0), parts=3)
        fine_space = graph.space(result.fine_layer)
        parent_area = graph.space("rooms").cell("5").geometry.area()
        parts_area = sum(fine_space.cell(p).geometry.area()
                         for p in result.split_cells["5"])
        assert parts_area == pytest.approx(parent_area)

    def test_fine_nrg_wiring(self, graph):
        result = subdivide(graph, "rooms", too_big(150.0), parts=3)
        fine = graph.layer(result.fine_layer)
        # Parts chain together.
        assert fine.has_transition("5a", "5b")
        assert fine.has_transition("5b", "5c")
        # Original edges re-created between replicas/parts.
        assert fine.has_transition("1.r", "2.r")
        assert fine.has_transition("1.r", "5a")
        # Boundary ids preserved.
        edges = fine.edges_between("1.r", "2.r")
        assert edges[0].boundary_id == "door12"

    def test_validates_as_mlsm(self, graph):
        subdivide(graph, "rooms", too_big(150.0))
        assert graph.validate() == []

    def test_no_space_rejected(self):
        layered = LayeredIndoorGraph("bare")
        nrg = NodeRelationGraph("l")
        nrg.add_node("x")
        layered.add_layer(nrg)
        with pytest.raises(ValueError):
            subdivide(layered, "l", too_big(1.0))

    def test_symbolic_cell_rejected(self):
        layered = LayeredIndoorGraph("sym")
        space = CellSpace("l", validate_geometry=False)
        space.add_cell(Cell("x", attributes={"a": 1, "b": 2}))
        nrg = NodeRelationGraph("l")
        nrg.add_node("x")
        layered.add_layer(nrg, space)
        with pytest.raises(ValueError):
            subdivide(layered, "l", too_many_properties(1))
