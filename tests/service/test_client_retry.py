"""Client transport resilience: budgeted retries for idempotent
commands.

A flaky-transport double runs in front of a real served registry: it
accepts a TCP connection and slams it shut (simulating a proxy reset
or server restart mid-request), then hands subsequent connections to
the real server.  Idempotent commands survive up to
``retry_attempts - 1`` such resets with capped-exponential backoff;
mutating commands surface the error instead of risking a double
apply.
"""

import socket
import threading

import pytest

from repro.service import protocol as P
from repro.service.client import ServiceClient, _is_retryable
from repro.service.registry import SessionRegistry
from repro.service.server import ServiceServer

SESSION = "retry"


@pytest.fixture(scope="module")
def backend():
    registry = SessionRegistry()
    registry.build(SESSION, scale=0.01, wait=True)
    server = ServiceServer(registry, port=0).start()
    try:
        yield server
    finally:
        server.stop()


class FlakyProxy:
    """A TCP front that resets the first N connections, then pipes
    the rest byte-for-byte to the backend."""

    def __init__(self, backend_address, resets=1):
        self.backend_address = backend_address
        self.resets = resets
        self.connections = 0
        self._listener = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._alive = True
        self._thread = threading.Thread(target=self._serve,
                                        daemon=True)
        self._thread.start()

    @property
    def url(self):
        host, port = self._listener.getsockname()
        return "http://{}:{}".format(host, port)

    def _serve(self):
        while self._alive:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.resets:
                # RST instead of FIN: the client sees a reset
                client.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00")
                client.close()
                continue
            threading.Thread(target=self._pipe, args=(client,),
                             daemon=True).start()

    def _pipe(self, client):
        upstream = socket.create_connection(self.backend_address)

        def pump(source, sink):
            try:
                while True:
                    chunk = source.recv(65536)
                    if not chunk:
                        break
                    sink.sendall(chunk)
            except OSError:
                pass
            finally:
                try:
                    sink.shutdown(socket.SHUT_WR)
                except OSError:
                    pass

        threading.Thread(target=pump, args=(client, upstream),
                         daemon=True).start()
        pump(upstream, client)
        client.close()
        upstream.close()

    def stop(self):
        self._alive = False
        self._listener.close()


class TestRetry:
    def test_idempotent_command_survives_one_reset(self, backend):
        proxy = FlakyProxy(backend.address, resets=1)
        try:
            client = ServiceClient(proxy.url, retry_backoff=0.01)
            page = client.run_query(SESSION, limit=3)
            assert page.hits
            assert proxy.connections >= 2  # reset + successful retry
        finally:
            proxy.stop()

    def test_resets_within_the_attempt_budget_are_absorbed(
            self, backend):
        proxy = FlakyProxy(backend.address, resets=2)
        try:
            client = ServiceClient(proxy.url, retry_backoff=0.01,
                                   retry_attempts=3)
            page = client.run_query(SESSION, limit=3)
            assert page.hits
            assert proxy.connections >= 3  # two resets + success
        finally:
            proxy.stop()

    def test_resets_past_the_budget_exhaust_with_attempt_count(
            self, backend):
        proxy = FlakyProxy(backend.address, resets=5)
        try:
            client = ServiceClient(proxy.url, retry_backoff=0.01,
                                   retry_attempts=2)
            with pytest.raises(P.ServiceUnavailable) as excinfo:
                client.run_query(SESSION, limit=3)
            assert excinfo.value.attempts == 2
            assert excinfo.value.code == "unavailable"
            assert isinstance(excinfo.value, OSError)  # legacy shape
            assert proxy.connections == 2
        finally:
            proxy.stop()

    def test_mutating_command_is_not_retried(self, backend):
        proxy = FlakyProxy(backend.address, resets=1)
        try:
            client = ServiceClient(proxy.url, retry_backoff=0.01)
            with pytest.raises(OSError):
                client.call(P.BuildDataset(session="other",
                                           scale=0.01))
            assert proxy.connections == 1  # exactly one attempt
        finally:
            proxy.stop()

    def test_zero_backoff_disables_retry(self, backend):
        proxy = FlakyProxy(backend.address, resets=1)
        try:
            client = ServiceClient(proxy.url, retry_backoff=0)
            with pytest.raises(OSError):
                client.run_query(SESSION, limit=3)
        finally:
            proxy.stop()


class TestRetryClassification:
    def test_retryable_shapes(self):
        import http.client
        import urllib.error

        assert _is_retryable(ConnectionResetError())
        assert _is_retryable(
            http.client.RemoteDisconnected("gone"))
        assert _is_retryable(
            urllib.error.URLError(ConnectionResetError()))
        assert not _is_retryable(ConnectionRefusedError())
        assert not _is_retryable(
            urllib.error.URLError(TimeoutError()))

    def test_error_message_carries_http_status(self, backend):
        client = ServiceClient(backend.url)
        with pytest.raises(P.ServiceError) as excinfo:
            client.run_query("no-such-session", limit=1)
        assert excinfo.value.code == "unknown_session"
        assert excinfo.value.http_status == 404
        assert "[HTTP 404]" in str(excinfo.value)
