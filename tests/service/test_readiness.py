"""The readiness drain signal: ``GET /v1/ready`` answers 503 while
sessions restore from disk or while the shard layer can no longer
mask failures, and 200 otherwise — on both HTTP front-ends."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service.aserver import AsyncServiceServer
from repro.service.registry import SessionRegistry
from repro.service.server import ServiceServer
from repro.service.wire import ready_payload


def fetch_ready(url):
    try:
        with urllib.request.urlopen(url + "/v1/ready",
                                    timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class BreakerStub:
    """Duck-types the coordinator surface ``ready_payload`` reads."""

    restoring = False

    def __init__(self, states):
        self._states = states

    def breaker_report(self):
        return [{"shard": 0, "replica": index, "state": state,
                 "failures": 0, "trips": 0}
                for index, state in enumerate(self._states)]


class TestReadyPayload:
    def test_plain_registry_is_ready(self):
        status, payload = ready_payload(SessionRegistry())
        assert status == 200
        assert payload == {"ready": True, "reasons": []}

    def test_deferred_restore_reports_not_ready(self, tmp_path):
        registry = SessionRegistry(persist_dir=str(tmp_path),
                                   defer_restore=True)
        status, payload = ready_payload(registry)
        assert status == 503
        assert not payload["ready"]
        assert payload["reasons"] == ["sessions restoring from disk"]
        registry.finish_restore()
        status, payload = ready_payload(registry)
        assert status == 200
        assert payload["ready"]

    def test_majority_open_breakers_drain_the_instance(self):
        healthy = BreakerStub(["closed", "open", "closed", "closed"])
        status, payload = ready_payload(healthy)
        assert status == 200
        assert payload["ready"]
        assert len(payload["breakers"]) == 4

        draining = BreakerStub(["open", "open", "closed", "open"])
        status, payload = ready_payload(draining)
        assert status == 503
        assert payload["reasons"] == [
            "3 of 4 shard targets have open circuit breakers"]

    def test_half_open_probes_do_not_drain(self):
        probing = BreakerStub(["half_open", "half_open", "closed"])
        status, payload = ready_payload(probing)
        assert status == 200


@pytest.mark.parametrize("server_cls",
                         [ServiceServer, AsyncServiceServer])
class TestReadyEndpoint:
    def test_ready_then_draining(self, server_cls, tmp_path):
        registry = SessionRegistry(persist_dir=str(tmp_path),
                                   defer_restore=True)
        server = server_cls(registry, port=0).start()
        try:
            status, payload = fetch_ready(server.url)
            assert status == 503
            assert not payload["ready"]
            registry.finish_restore()
            status, payload = fetch_ready(server.url)
            assert status == 200
            assert payload == {"ready": True, "reasons": []}
        finally:
            server.stop()

    def test_breaker_drain_over_http(self, server_cls):
        engine = BreakerStub(["open", "open"])
        server = server_cls(engine, port=0).start()
        try:
            status, payload = fetch_ready(server.url)
            assert status == 503
            assert "open circuit breakers" in payload["reasons"][0]
        finally:
            server.stop()
