"""Shared service fixtures.

The ``service`` fixture is parameterized over both HTTP front-ends —
the legacy threaded :class:`ServiceServer` and the asyncio
:class:`AsyncServiceServer` — so every end-to-end test in this
package (lifecycle, pagination, byte-identity, error mapping) runs
against each of them.  A front-end is only a transport: the whole
suite passing unchanged under both *is* the byte-identity guarantee.
"""

import pytest

from repro.service.aserver import AsyncServiceServer
from repro.service.client import ServiceClient
from repro.service.registry import SessionRegistry
from repro.service.server import ServiceServer

#: The session every e2e test queries (built once per front-end).
SESSION = "louvre@0.02"


def make_server(backend, registry, **kwargs):
    """One stopped server of the requested front-end flavor."""
    if backend == "asyncio":
        return AsyncServiceServer(registry, port=0, **kwargs)
    return ServiceServer(registry, port=0, **kwargs)


@pytest.fixture(scope="module", params=["threading", "asyncio"])
def service(request):
    """``(server, client, registry)`` with one built session,
    module-scoped, once per front-end."""
    registry = SessionRegistry()
    registry.build(SESSION, scale=0.02, wait=True)
    server = make_server(request.param, registry)
    server.start()
    client = ServiceClient(server.url)
    try:
        yield server, client, registry
    finally:
        client.close()
        server.stop()
