"""Property tests: every protocol message round-trips through JSON.

The wire contract is bytes → object → bytes identity: parsing a
message's canonical JSON and re-serializing it must reproduce the
exact bytes, for every command and every response type, under
arbitrary field values.  Cursors get the same treatment.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.annotations import AnnotationSet
from repro.mining.flow import FlowBalance
from repro.mining.prefixspan import SequentialPattern
from repro.service import protocol as P
from tests.conftest import make_trajectory

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
names = st.text(
    st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                  whitelist_characters="-_@."),
    min_size=1, max_size=20)
floats = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)
counts = st.integers(0, 10_000)

query_dicts = st.one_of(
    st.none(),
    st.builds(lambda s: {"expr": {"op": "state", "state": s}}, names),
    st.builds(lambda k: {"expr": {"op": "annotation", "kind": "goal",
                                  "value": k}}, names),
)
cursors = st.one_of(
    st.none(),
    st.builds(P.encode_cursor,
              st.fixed_dictionaries({"f": names, "k": counts})))


def trajectories():
    return st.builds(
        lambda states, start, dwell: make_trajectory(
            mo_id="mo-x", states=tuple(states), start=float(start),
            dwell=float(dwell),
            annotations=AnnotationSet.goals("visit")),
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1,
                 max_size=4, unique=True),
        st.integers(0, 10_000), st.integers(1, 500))


def hits():
    return st.builds(P.Hit, doc_id=counts, trajectory=trajectories())


COMMAND_STRATEGIES = {
    P.BuildDataset: st.builds(
        P.BuildDataset, session=names,
        source=st.sampled_from(["louvre", "csv"]),
        scale=st.floats(0.01, 1.0), path=st.none() | names,
        workers=st.integers(0, 8),
        executor=st.sampled_from(["thread", "process"]),
        batch_size=st.integers(1, 2048), streaming=st.booleans(),
        cache=st.booleans(), wait=st.booleans()),
    P.JobStatus: st.builds(P.JobStatus, job_id=names),
    P.ListSessions: st.just(P.ListSessions()),
    P.DropSession: st.builds(P.DropSession, session=names),
    P.RunQuery: st.builds(
        P.RunQuery, session=names, query=query_dicts,
        limit=st.integers(1, 1000), cursor=cursors,
        offset=counts,
        order_by=st.none() | st.sampled_from(["doc_id", "duration"]),
        descending=st.booleans(), include_total=st.booleans()),
    P.Explain: st.builds(P.Explain, session=names, query=query_dicts),
    P.MinePatterns: st.builds(
        P.MinePatterns, session=names, query=query_dicts,
        min_support=st.floats(0.01, 100.0),
        max_length=st.integers(1, 8)),
    P.Similarity: st.builds(P.Similarity, session=names,
                            query=query_dicts),
    P.Flow: st.builds(P.Flow, session=names, query=query_dicts),
    P.Sequences: st.builds(P.Sequences, session=names,
                           query=query_dicts),
    P.Summary: st.builds(P.Summary, session=names, query=query_dicts),
    P.SaveSession: st.builds(P.SaveSession, session=names),
    P.RestoreSession: st.builds(P.RestoreSession, session=names),
    P.IngestDocuments: st.builds(
        P.IngestDocuments, session=names,
        docs=st.lists(trajectories().map(
            lambda t: t.to_dict()), max_size=3),
        space=st.none() | names),
    P.CountPatterns: st.builds(
        P.CountPatterns, session=names, query=query_dicts,
        patterns=st.lists(st.lists(names, min_size=1, max_size=3),
                          max_size=3)),
    P.SimilarityBlock: st.builds(
        P.SimilarityBlock, session=names,
        sequences=st.lists(st.lists(names, max_size=3), max_size=3),
        row_start=counts, row_end=counts),
    P.SummaryParts: st.builds(P.SummaryParts, session=names,
                              query=query_dicts),
    P.StoreStats: st.builds(P.StoreStats, session=names),
    P.OpenStream: st.builds(
        P.OpenStream, session=names, stream=names,
        gap_seconds=st.none() | st.floats(1.0, 1e6),
        checkpoint_every=st.integers(1, 1000),
        max_open_events=st.integers(1, 10 ** 6),
        relay=st.booleans()),
    P.AppendEvents: st.builds(
        P.AppendEvents, session=names, stream=names,
        events=st.lists(st.fixed_dictionaries(
            {"mo_id": names, "state": names,
             "t_start": floats, "t_end": floats}), max_size=3),
        watermark=st.none() | floats),
    P.StreamStatus: st.builds(P.StreamStatus, session=names,
                              stream=names),
    P.CloseStream: st.builds(P.CloseStream, session=names,
                             stream=names),
}

RESPONSE_STRATEGIES = {
    P.ErrorInfo: st.builds(P.ErrorInfo, code=names, message=names),
    P.JobInfo: st.builds(
        P.JobInfo, job_id=names, session=names,
        state=st.sampled_from(["pending", "running", "done",
                               "failed"]),
        error=st.none() | names,
        metrics=st.none() | st.fixed_dictionaries(
            {"total_seconds": floats, "stages": st.just([])})),
    P.SessionInfo: st.builds(
        P.SessionInfo, name=names, trajectories=counts,
        state=st.sampled_from(["empty", "building", "ready",
                               "failed"]),
        space=st.none() | names),
    P.SessionList: st.builds(
        P.SessionList,
        sessions=st.lists(st.builds(
            P.SessionInfo, name=names, trajectories=counts,
            state=st.just("ready"), space=st.none()), max_size=3)),
    P.Dropped: st.builds(P.Dropped, session=names),
    P.SessionSaved: st.builds(
        P.SessionSaved, session=names,
        snapshot=st.sampled_from(["snapshot-000001",
                                  "snapshot-000042"]),
        trajectories=counts, total_bytes=counts),
    P.Hit: hits(),
    P.QueryPage: st.builds(
        P.QueryPage, hits=st.lists(hits(), max_size=3),
        total=st.none() | counts, next_cursor=cursors),
    P.Explanation: st.builds(P.Explanation, plan=names),
    P.PatternList: st.builds(
        P.PatternList,
        patterns=st.lists(st.builds(
            lambda seq, sup: SequentialPattern(tuple(seq), sup),
            st.lists(names, min_size=1, max_size=4),
            st.integers(1, 1000)), max_size=4)),
    P.SimilarityMatrix: st.builds(
        P.SimilarityMatrix,
        matrix=st.lists(st.lists(st.floats(0, 1), min_size=2,
                                 max_size=2), max_size=2)),
    P.FlowList: st.builds(
        P.FlowList,
        balances=st.lists(st.builds(
            FlowBalance, state=names, inflow=counts, outflow=counts,
            started_here=counts, ended_here=counts), max_size=4)),
    P.SequenceList: st.builds(
        P.SequenceList,
        sequences=st.lists(st.lists(names, max_size=4), max_size=4)),
    P.SummaryStats: st.builds(
        P.SummaryStats,
        stats=st.dictionaries(names, floats, max_size=4)),
    P.Ingested: st.builds(P.Ingested, session=names, count=counts,
                          total=counts),
    P.PatternSupports: st.builds(
        P.PatternSupports, supports=st.lists(counts, max_size=4),
        sequences=counts),
    P.SimilarityRows: st.builds(
        P.SimilarityRows,
        rows=st.lists(st.lists(st.floats(0, 1), min_size=2,
                               max_size=2), max_size=2)),
    P.SummaryPartsInfo: st.builds(
        P.SummaryPartsInfo, visits=counts,
        mo_ids=st.lists(names, max_size=3), detections=counts,
        transitions=counts,
        max_visit_duration=st.none() | floats,
        min_visit_duration=st.none() | floats),
    P.StreamInfo: st.builds(
        P.StreamInfo, session=names, stream=names,
        status=st.fixed_dictionaries(
            {"watermark": st.none() | floats,
             "open_events": counts, "events_acked": counts})),
    P.EventsAppended: st.builds(
        P.EventsAppended, session=names, stream=names,
        appended=counts, episodes_closed=counts,
        watermark=st.none() | floats, open_events=counts,
        seq=counts,
        episodes=st.lists(st.fixed_dictionaries(
            {"mo_id": names}), max_size=2)),
    P.StreamClosed: st.builds(
        P.StreamClosed, session=names, stream=names,
        episodes_closed=counts, episodes_total=counts,
        events_acked=counts,
        episodes=st.lists(st.fixed_dictionaries(
            {"mo_id": names}), max_size=2)),
    P.StoreStatsInfo: st.builds(
        P.StoreStatsInfo, doc_count=counts,
        states=st.dictionaries(names, counts, max_size=3),
        annotations=st.lists(
            st.tuples(st.sampled_from(["goal", "means", "weather"]),
                      names, counts).map(list), max_size=3),
        mos=st.dictionaries(names, counts, max_size=3),
        time_span=st.none() | st.tuples(floats, floats).map(list)),
}


def test_every_registered_command_has_a_strategy():
    assert set(COMMAND_STRATEGIES) == set(P.COMMANDS.values())


def test_every_registered_response_has_a_strategy():
    assert set(RESPONSE_STRATEGIES) == set(P.RESPONSES.values())


@settings(max_examples=25, deadline=None)
@given(st.data())
@pytest.mark.parametrize("command_type",
                         sorted(COMMAND_STRATEGIES,
                                key=lambda t: t.kind))
def test_property_command_roundtrip(command_type, data):
    command = data.draw(COMMAND_STRATEGIES[command_type])
    raw = command.to_json()
    parsed = P.command_from_json(raw)
    assert type(parsed) is command_type
    assert parsed == command
    assert parsed.to_json() == raw  # bytes → object → bytes


@settings(max_examples=25, deadline=None)
@given(st.data())
@pytest.mark.parametrize("response_type",
                         sorted(RESPONSE_STRATEGIES,
                                key=lambda t: t.kind))
def test_property_response_roundtrip(response_type, data):
    response = data.draw(RESPONSE_STRATEGIES[response_type])
    raw = response.to_json()
    parsed = P.response_from_json(raw)
    assert type(parsed) is response_type
    assert parsed.to_json() == raw  # bytes → object → bytes


@settings(max_examples=50, deadline=None)
@given(st.fixed_dictionaries(
    {"f": names},
    optional={"k": counts, "o": counts}))
def test_property_cursor_roundtrip(payload):
    token = P.encode_cursor(payload)
    assert token.isascii() and "=" not in token
    assert P.decode_cursor(token) == payload


# ----------------------------------------------------------------------
# adversarial parsing
# ----------------------------------------------------------------------
def test_rejects_wrong_version():
    data = P.ListSessions().to_dict()
    data["v"] = 99
    with pytest.raises(P.ProtocolError):
        P.command_from_dict(data)


def test_rejects_unknown_command():
    with pytest.raises(P.ProtocolError):
        P.command_from_dict({"v": 1, "command": "LaunchMissiles"})


def test_rejects_command_as_response():
    with pytest.raises(P.ProtocolError):
        P.response_from_dict({"v": 1, "response": "RunQuery",
                              "session": "s"})


def test_rejects_missing_required_field():
    with pytest.raises(P.ProtocolError):
        P.command_from_dict({"v": 1, "command": "RunQuery"})


def test_rejects_non_json_bytes():
    with pytest.raises(P.ProtocolError):
        P.command_from_json(b"\xff\xfe not json")


def test_rejects_malformed_cursor():
    import base64

    with pytest.raises(P.ProtocolError):
        P.decode_cursor("!!not-base64!!")
    # valid base64/JSON but no fingerprint field
    foreign = base64.urlsafe_b64encode(b'{"x":1}').decode().rstrip("=")
    with pytest.raises(P.ProtocolError):
        P.decode_cursor(foreign)


def test_ignores_unknown_extra_fields():
    data = json.loads(P.ListSessions().to_json())
    data["future_field"] = "ignored"
    assert isinstance(P.command_from_dict(data), P.ListSessions)


def test_all_messages_are_frozen():
    for cls in list(P.COMMANDS.values()) + list(P.RESPONSES.values()):
        assert dataclasses.is_dataclass(cls)
        params = getattr(cls, "__dataclass_params__")
        assert params.frozen, "{} must be frozen".format(cls.__name__)
