"""End-to-end: the embedded servers over a real socket.

Drives the whole lifecycle — build, query with ``explain``, cursor
pagination, mining — through :class:`ServiceClient` against an
ephemeral-port server, asserting the acceptance bar: pure-JSON
payloads whose bytes are identical to the in-process
``Workbench``/:class:`LocalBinding` path.  The ``service`` fixture
(``tests/service/conftest.py``) parameterizes every test here over
both the threaded and the asyncio front-end.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from tests.service.conftest import SESSION

from repro.service import protocol as P
from repro.service.client import ServiceError
from repro.service.executor import LocalBinding
from repro.service.registry import SessionRegistry
from repro.service.server import ServiceServer

QUERY = {"expr": {"op": "state", "state": "zone60853"}}


class TestLifecycle:
    def test_health(self, service):
        _, client, _ = service
        health = client.health()
        assert health["ok"] is True
        assert health["protocol"] == P.PROTOCOL_VERSION
        assert health["sessions"][0]["name"] == SESSION

    def test_build_query_mine_over_http(self, service):
        _, client, _ = service
        info = client.build("second", scale=0.01, wait=True)
        assert info.state == "done"
        page = client.run_query("second", limit=10)
        assert page.total > 0
        assert page.hits
        patterns = client.mine_patterns("second", min_support=0.5)
        assert patterns.patterns
        client.drop_session("second")
        names = [s.name for s in client.sessions().sessions]
        assert "second" not in names

    def test_background_build_with_polling(self, service):
        _, client, _ = service
        info = client.build("bg", scale=0.01)
        assert info.state in ("pending", "running", "done")
        final = client.wait_for_job(info.job_id)
        assert final.state == "done"
        assert final.metrics["stages"][0]["name"] == "clean"
        client.drop_session("bg")

    def test_explain_over_http(self, service):
        _, client, _ = service
        explanation = client.explain(SESSION, QUERY)
        assert "zone60853" in explanation.plan

    def test_analytics_commands(self, service):
        _, client, _ = service
        sequences = client.sequences(SESSION, QUERY).sequences
        assert sequences
        matrix = client.similarity(SESSION, QUERY).matrix
        assert len(matrix) == len(sequences)
        balances = client.flow(SESSION, QUERY).balances
        assert balances
        stats = client.summary(SESSION).stats
        assert stats["visits"] == page_total(client)


def page_total(client):
    return client.run_query(SESSION, limit=1).total


class TestByteIdentical:
    """The acceptance criterion: wire bytes == in-process bytes."""

    def test_query_page(self, service):
        _, client, registry = service
        wire = client.run_query(SESSION, QUERY, limit=5)
        local = LocalBinding(registry).call(
            P.RunQuery(session=SESSION, query=QUERY, limit=5))
        assert wire.to_json() == local.to_json()

    def test_patterns(self, service):
        _, client, registry = service
        wire = client.mine_patterns(SESSION, QUERY, min_support=0.2)
        local = LocalBinding(registry).call(P.MinePatterns(
            session=SESSION, query=QUERY, min_support=0.2))
        assert wire.to_json() == local.to_json()

    def test_wire_matches_workbench_objects(self, service):
        """The HTTP results deserialize to exactly what the library
        facade computes in process."""
        _, client, registry = service
        workbench = registry.get(SESSION).workbench
        query = workbench.load_query(QUERY)

        wire_hits = [h for page in client.iter_pages(SESSION, QUERY,
                                                     limit=3)
                     for h in page.hits]
        direct = query.execute().to_list()
        assert [h.doc_id for h in wire_hits] \
            == [h.doc_id for h in direct]
        assert [h.trajectory.to_dict() for h in wire_hits] \
            == [h.trajectory.to_dict() for h in direct]

        wire_patterns = client.mine_patterns(
            SESSION, QUERY, min_support=0.2).patterns
        assert wire_patterns == workbench.patterns(query,
                                                   min_support=0.2)

    def test_raw_payload_is_pure_json(self, service):
        server, _, _ = service
        body = P.RunQuery(session=SESSION, query=QUERY,
                          limit=2).to_json()
        request = urllib.request.Request(
            server.url + "/v1/call", data=body,
            headers={"Content-Type": "application/json"},
            method="POST")
        with urllib.request.urlopen(request, timeout=30) as reply:
            assert reply.headers["Content-Type"] == "application/json"
            payload = json.loads(reply.read().decode("utf-8"))
        assert payload["response"] == "QueryPage"
        assert all(isinstance(h["doc_id"], int)
                   for h in payload["hits"])


class TestPagination:
    def test_cursor_walk_is_complete_and_disjoint(self, service):
        _, client, registry = service
        seen = []
        for page in client.iter_pages(SESSION, QUERY, limit=2):
            seen.extend(h.doc_id for h in page.hits)
        store = registry.get(SESSION).workbench.store
        from repro.storage.query import Query

        expected = [h.doc_id for h in
                    Query.from_dict(store, QUERY).execute()]
        assert seen == expected
        assert len(set(seen)) == len(seen)

    def test_cursor_stable_under_concurrent_ingestion(self, service):
        """A cursor taken before an ingest resumes exactly after the
        hits it saw — appended documents surface at the tail, never
        shifted into or out of earlier pages."""
        _, client, _ = service
        binding = LocalBinding(SessionRegistry())
        binding.call(P.BuildDataset(session="grow", scale=0.01,
                                    wait=True))
        first = binding.call(P.RunQuery(session="grow", limit=3,
                                        include_total=False))
        boundary = [h.doc_id for h in first.hits]
        # ingest more matching documents mid-pagination
        binding.call(P.BuildDataset(session="grow", scale=0.01,
                                    wait=True))
        rest = []
        cursor = first.next_cursor
        while cursor is not None:
            page = binding.call(P.RunQuery(session="grow", limit=3,
                                           cursor=cursor,
                                           include_total=False))
            rest.extend(h.doc_id for h in page.hits)
            cursor = page.next_cursor
        total = binding.call(P.RunQuery(
            session="grow", limit=1)).total
        assert boundary + rest == list(range(total))

    def test_order_by_pagination(self, service):
        _, client, _ = service
        seen = []
        for page in client.iter_pages(SESSION, QUERY, limit=2,
                                      order_by="duration",
                                      descending=True):
            seen.extend(h.trajectory.duration for h in page.hits)
        assert seen == sorted(seen, reverse=True)

    def test_offset_first_page(self, service):
        _, client, _ = service
        full = client.run_query(SESSION, QUERY, limit=100)
        shifted = client.run_query(SESSION, QUERY, limit=100,
                                   offset=2)
        assert [h.doc_id for h in shifted.hits] \
            == [h.doc_id for h in full.hits][2:]

    def test_cursor_rejected_on_different_query(self, service):
        _, client, _ = service
        page = client.run_query(SESSION, QUERY, limit=1)
        if page.next_cursor is None:
            pytest.skip("corpus too small for a second page")
        with pytest.raises(ServiceError) as excinfo:
            client.run_query(SESSION, None, limit=1,
                             cursor=page.next_cursor)
        assert excinfo.value.code == "bad_cursor"


class TestHttpErrors:
    def test_unknown_session_is_404(self, service):
        server, _, _ = service
        body = P.RunQuery(session="ghost").to_json()
        request = urllib.request.Request(
            server.url + "/v1/call", data=body, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 404

    def test_bad_json_is_400(self, service):
        server, _, _ = service
        request = urllib.request.Request(
            server.url + "/v1/call", data=b"{nope", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, service):
        server, client, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/v2/nope",
                                   timeout=30)
        assert excinfo.value.code == 404

    def test_client_raises_typed_errors(self, service):
        _, client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.run_query("ghost")
        assert excinfo.value.code == "unknown_session"
        with pytest.raises(ServiceError) as excinfo:
            client.run_query(SESSION, limit=0)
        assert excinfo.value.code == "bad_request"

    def test_concurrent_requests(self, service):
        """Thread-pooled handler: parallel calls all succeed."""
        _, client, _ = service
        errors = []

        def hammer():
            try:
                for _ in range(5):
                    assert client.run_query(SESSION, QUERY,
                                            limit=3).hits
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestReviewRegressions:
    """Pinned fixes from the PR 4 code review."""

    def test_total_only_on_first_page(self, service):
        _, client, _ = service
        first = client.run_query(SESSION, QUERY, limit=2)
        assert first.total is not None
        if first.next_cursor is not None:
            follow = client.run_query(SESSION, QUERY, limit=2,
                                      cursor=first.next_cursor)
            assert follow.total is None

    def test_non_integer_cursor_position_is_bad_cursor(self, service):
        _, client, _ = service
        fingerprint = P.page_fingerprint(QUERY, None, False)
        forged = P.encode_cursor({"f": fingerprint, "k": "abc"})
        with pytest.raises(ServiceError) as excinfo:
            client.run_query(SESSION, QUERY, cursor=forged)
        assert excinfo.value.code == "bad_cursor"

    def test_descending_natural_order_is_honored(self, service):
        _, client, _ = service
        ascending = client.run_query(SESSION, QUERY, limit=100)
        descending = client.run_query(SESSION, QUERY, limit=100,
                                      descending=True)
        assert [h.doc_id for h in descending.hits] \
            == [h.doc_id for h in ascending.hits][::-1]

    def test_unknown_path_code_is_not_found(self, service):
        server, _, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/v2/nope",
                                   timeout=30)
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["code"] == "not_found"

    def test_forged_negative_cursor_is_bad_cursor(self, service):
        _, client, _ = service
        fp = P.page_fingerprint(QUERY, "doc_id", False)
        forged = P.encode_cursor({"f": fp, "o": -3})
        with pytest.raises(ServiceError) as excinfo:
            client.run_query(SESSION, QUERY, order_by="doc_id",
                             cursor=forged)
        assert excinfo.value.code == "bad_cursor"

    def test_stop_without_start_does_not_hang(self):
        server = ServiceServer(SessionRegistry(), port=0)
        server.stop()  # must return, not deadlock

    def test_hit_hash_consistent_with_eq(self, service):
        _, client, _ = service
        page_a = client.run_query(SESSION, QUERY, limit=2)
        page_b = client.run_query(SESSION, QUERY, limit=2)
        assert set(page_a.hits) == set(page_b.hits)
        assert len({*page_a.hits, *page_b.hits}) == len(page_a.hits)
