"""End-to-end durability: a restarted registry serves the same
sessions, byte-for-byte, over HTTP.

The ISSUE acceptance bar: build a session through the service, kill
the server, start a fresh registry over the same ``persist_dir``, and
get a byte-identical ``RunQuery`` (and mining output) from the
restored corpus — plus the new ``SaveSession``/``RestoreSession``
protocol commands on both transports.
"""

import os

import pytest

from repro.service import protocol as P
from repro.service.client import ServiceClient, ServiceError
from repro.service.executor import LocalBinding
from repro.service.registry import SessionRegistry
from repro.service.server import ServiceServer

SESSION = "louvre@persist"
QUERY = {"expr": {"op": "annotation", "kind": "goal",
                  "value": "visit"}}


@pytest.fixture(scope="module")
def persist_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("registry"))


@pytest.fixture(scope="module")
def first_run(persist_dir):
    """Server #1: durable registry, one built session, then killed.

    Yields the wire bytes captured before the shutdown.
    """
    registry = SessionRegistry(persist_dir=persist_dir)
    server = ServiceServer(registry, port=0).start()
    client = ServiceClient(server.url)
    info = client.build(SESSION, scale=0.02, wait=True)
    assert info.state == "done"
    captured = {
        "query": client.run_query(SESSION, QUERY,
                                  limit=10).to_json(),
        "patterns": client.mine_patterns(
            SESSION, min_support=0.3).to_json(),
        "summary": client.summary(SESSION).to_json(),
        "saved": client.save_session(SESSION),
    }
    server.stop()
    return captured


class TestRestartByteIdentity:
    @pytest.fixture(scope="class")
    def second_run(self, persist_dir, first_run):
        registry = SessionRegistry(persist_dir=persist_dir)
        server = ServiceServer(registry, port=0).start()
        try:
            yield server, ServiceClient(server.url), registry
        finally:
            server.stop()

    def test_sessions_restored(self, second_run, first_run):
        _, client, registry = second_run
        assert SESSION in registry.names()
        roster = client.sessions().sessions
        assert [s.name for s in roster] == [SESSION]
        assert roster[0].state == "ready"
        assert roster[0].space == "LouvreSpace"

    def test_run_query_byte_identical(self, second_run, first_run):
        _, client, _ = second_run
        again = client.run_query(SESSION, QUERY, limit=10)
        assert again.to_json() == first_run["query"]

    def test_mining_byte_identical(self, second_run, first_run):
        _, client, _ = second_run
        assert client.mine_patterns(
            SESSION, min_support=0.3).to_json() \
            == first_run["patterns"]
        assert client.summary(SESSION).to_json() \
            == first_run["summary"]

    def test_save_over_http_reports_snapshot(self, second_run,
                                             first_run):
        _, client, _ = second_run
        saved = client.save_session(SESSION)
        assert saved.session == SESSION
        assert saved.trajectories \
            == first_run["saved"].trajectories
        assert saved.snapshot > first_run["saved"].snapshot

    def test_restore_over_http(self, second_run, first_run):
        _, client, _ = second_run
        info = client.restore_session(SESSION)
        assert info.trajectories == first_run["saved"].trajectories
        again = client.run_query(SESSION, QUERY, limit=10)
        assert again.to_json() == first_run["query"]


class TestAutosaveRecoversUnsavedSessions:
    def test_build_alone_is_durable(self, tmp_path):
        """No explicit SaveSession: the auto-checkpoint after the
        build already made the session durable."""
        directory = str(tmp_path / "auto")
        registry = SessionRegistry(persist_dir=directory)
        registry.build("auto@1", scale=0.01, wait=True)
        count = len(registry.get("auto@1").workbench.store)
        assert count > 0

        reborn = SessionRegistry(persist_dir=directory)
        assert "auto@1" in reborn.names()
        assert len(reborn.get("auto@1").workbench.store) == count

    def test_wal_covers_crash_before_checkpoint(self, tmp_path):
        """Ingestion that never checkpointed still recovers: the
        store journals batches as they stream."""
        from tests.conftest import make_trajectory

        directory = str(tmp_path / "crash")
        registry = SessionRegistry(persist_dir=directory)
        session = registry.create("crashy")
        session.workbench.store.extend(
            [make_trajectory(mo_id="m{}".format(i))
             for i in range(7)])
        # no checkpoint, no clean shutdown — just a new registry
        reborn = SessionRegistry(persist_dir=directory)
        assert len(reborn.get("crashy").workbench.store) == 7


class TestDropAndCorruption:
    def test_drop_purges_disk_so_rebuild_starts_fresh(self,
                                                      tmp_path):
        """DropSession + BuildDataset must yield one corpus, not the
        restored-plus-rebuilt double."""
        directory = str(tmp_path / "reg")
        registry = SessionRegistry(persist_dir=directory)
        binding = LocalBinding(registry)
        binding.call(P.BuildDataset(session="louvre", scale=0.01,
                                    wait=True))
        count = len(registry.get("louvre").workbench.store)
        binding.call(P.DropSession(session="louvre"))
        assert not os.listdir(directory)  # disk home removed too
        binding.call(P.BuildDataset(session="louvre", scale=0.01,
                                    wait=True))
        assert len(registry.get("louvre").workbench.store) == count

    def test_dropped_session_stays_dropped_after_restart(self,
                                                         tmp_path):
        directory = str(tmp_path / "reg")
        registry = SessionRegistry(persist_dir=directory)
        registry.build("gone", scale=0.01, wait=True)
        registry.drop("gone")
        assert "gone" not in SessionRegistry(
            persist_dir=directory).names()

    def test_one_corrupt_session_does_not_break_construction(
            self, tmp_path):
        directory = str(tmp_path / "reg")
        registry = SessionRegistry(persist_dir=directory)
        registry.build("healthy", scale=0.01, wait=True)
        registry.build("rotten", scale=0.01, wait=True)
        current = open(os.path.join(directory, "rotten",
                                    "CURRENT")).read().strip()
        manifest = os.path.join(directory, "rotten", current,
                                "MANIFEST.json")
        raw = bytearray(open(manifest, "rb").read())
        raw[len(raw) // 2] ^= 0x01
        open(manifest, "wb").write(bytes(raw))

        reborn = SessionRegistry(persist_dir=directory)
        assert "healthy" in reborn.names()
        assert "rotten" not in reborn.names()
        assert "rotten" in reborn.restore_errors


class TestPersistenceErrors:
    def test_save_without_persist_dir_is_persistence_error(self):
        binding = LocalBinding(SessionRegistry())
        binding.call(P.BuildDataset(session="ephemeral", scale=0.01,
                                    wait=True))
        with pytest.raises(ServiceError) as excinfo:
            binding.call(P.SaveSession(session="ephemeral"))
        assert excinfo.value.code == "persistence"

    def test_save_unknown_session_is_unknown_session(self):
        binding = LocalBinding(SessionRegistry())
        with pytest.raises(ServiceError) as excinfo:
            binding.call(P.SaveSession(session="nope"))
        assert excinfo.value.code == "unknown_session"

    def test_restore_unknown_name_is_404_not_500(self, tmp_path):
        binding = LocalBinding(
            SessionRegistry(persist_dir=str(tmp_path / "empty")))
        with pytest.raises(ServiceError) as excinfo:
            binding.call(P.RestoreSession(session="ghost"))
        assert excinfo.value.code == "unknown_session"

    def test_restore_in_memory_session_never_persisted(self,
                                                       tmp_path):
        registry = SessionRegistry(persist_dir=str(tmp_path / "p"),
                                   autosave=False)
        registry.create("fresh")  # exists in memory, empty on disk
        # remove its (empty) durable home to simulate nothing written
        import shutil as shutil_module

        shutil_module.rmtree(str(tmp_path / "p"), ignore_errors=True)
        binding = LocalBinding(registry)
        with pytest.raises(ServiceError) as excinfo:
            binding.call(P.RestoreSession(session="fresh"))
        assert excinfo.value.code == "persistence"

    def test_persistence_error_is_http_500(self, tmp_path):
        registry = SessionRegistry()  # no persist_dir
        registry.build("x", scale=0.01, wait=True)
        server = ServiceServer(registry, port=0).start()
        try:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError) as excinfo:
                client.save_session("x")
            assert excinfo.value.code == "persistence"
            assert excinfo.value.http_status == 500
            assert "[HTTP 500]" in str(excinfo.value)
        finally:
            server.stop()

    def test_corrupt_snapshot_surfaces_on_restore(self, tmp_path):
        directory = str(tmp_path / "corrupt")
        registry = SessionRegistry(persist_dir=directory)
        registry.build("fragile", scale=0.01, wait=True)
        # flip one byte in the current snapshot's manifest
        session_dir = os.path.join(directory, "fragile")
        current = open(os.path.join(session_dir, "CURRENT")).read()
        manifest = os.path.join(session_dir, current.strip(),
                                "MANIFEST.json")
        raw = bytearray(open(manifest, "rb").read())
        raw[len(raw) // 2] ^= 0x01
        open(manifest, "wb").write(bytes(raw))

        binding = LocalBinding(registry)
        with pytest.raises(ServiceError) as excinfo:
            binding.call(P.RestoreSession(session="fragile"))
        assert excinfo.value.code == "persistence"
