"""The versioned response cache: validity, bounds, and what may
never be cached.

The invariant under test: a cache hit returns exactly the bytes that
re-executing the command would produce.  Staleness is impossible by
construction — entries are stamped with the store's
``(serial, version)`` captured before execution and validated against
the live session on every hit — so these tests attack the stamp
logic: ingestion, session drop/rebuild, space swaps, and the error
paths that must bypass the cache entirely.
"""

import json

from repro.service import protocol as P
from repro.service.registry import SessionRegistry
from repro.service.wire import (
    CACHEABLE_KINDS,
    ResponseCache,
    execute_json,
)


def build_registry(name="s", scale=0.01):
    registry = SessionRegistry()
    registry.build(name, scale=scale, wait=True)
    return registry


def raw_query(session="s", **kwargs):
    return P.RunQuery(session=session, **kwargs).to_json()


class TestHitSemantics:
    def test_second_call_is_a_hit_with_identical_bytes(self):
        registry = build_registry()
        cache = ResponseCache()
        raw = raw_query(limit=5)
        first = execute_json(registry, raw, cache=cache)
        second = execute_json(registry, raw, cache=cache)
        assert first == second
        assert cache.hits == 1
        assert len(cache) == 1

    def test_ingest_invalidates(self):
        registry = build_registry()
        cache = ResponseCache()
        raw = raw_query(limit=500)
        status, before = execute_json(registry, raw, cache=cache)
        assert status == 200
        registry.build("s", scale=0.01, wait=True)  # more documents
        status, after = execute_json(registry, raw, cache=cache)
        assert status == 200
        assert cache.hits == 0
        assert len(json.loads(after)["hits"]) \
            > len(json.loads(before)["hits"])

    def test_rebuilt_session_does_not_serve_old_bytes(self):
        registry = build_registry()
        cache = ResponseCache()
        raw = raw_query(limit=5)
        execute_json(registry, raw, cache=cache)
        registry.drop("s")
        registry.build("s", scale=0.01, wait=True)
        execute_json(registry, raw, cache=cache)
        # the rebuilt store has a different serial: never a hit
        assert cache.hits == 0

    def test_unknown_session_errors_are_not_cached(self):
        registry = SessionRegistry()
        cache = ResponseCache()
        status, body = execute_json(registry, raw_query("ghost"),
                                    cache=cache)
        assert status == 404
        assert len(cache) == 0

    def test_bad_request_errors_are_not_cached(self):
        registry = build_registry()
        cache = ResponseCache()
        status, _ = execute_json(registry, raw_query(limit=0),
                                 cache=cache)
        assert status == 400
        assert len(cache) == 0

    def test_mutating_and_lifecycle_kinds_are_not_cached(self):
        registry = build_registry()
        cache = ResponseCache()
        assert "ListSessions" not in CACHEABLE_KINDS
        assert "BuildDataset" not in CACHEABLE_KINDS
        status, _ = execute_json(registry,
                                 P.ListSessions().to_json(),
                                 cache=cache)
        assert status == 200
        assert len(cache) == 0


class TestBounds:
    def test_entry_count_eviction_is_lru(self):
        registry = build_registry()
        cache = ResponseCache(max_entries=2)
        first = raw_query(limit=1)
        second = raw_query(limit=2)
        third = raw_query(limit=3)
        execute_json(registry, first, cache=cache)
        execute_json(registry, second, cache=cache)
        execute_json(registry, first, cache=cache)   # refresh first
        execute_json(registry, third, cache=cache)   # evicts second
        assert len(cache) == 2
        execute_json(registry, first, cache=cache)
        assert cache.hits == 2  # first survived both evictions
        execute_json(registry, second, cache=cache)
        assert cache.hits == 2  # second was the LRU victim

    def test_byte_bound_eviction(self):
        registry = build_registry()
        cache = ResponseCache(max_bytes=1)  # nothing fits
        execute_json(registry, raw_query(limit=5), cache=cache)
        assert len(cache) == 0

    def test_clear_drops_entries(self):
        registry = build_registry()
        cache = ResponseCache()
        execute_json(registry, raw_query(limit=5), cache=cache)
        cache.clear()
        assert len(cache) == 0
        execute_json(registry, raw_query(limit=5), cache=cache)
        assert cache.hits == 0

    def test_stats_shape(self):
        cache = ResponseCache()
        stats = cache.stats()
        assert set(stats) == {"entries", "bytes", "hits", "misses"}


class TestStoreVersioning:
    def test_version_bumps_only_on_growth(self):
        registry = build_registry()
        store = registry.get("s").workbench.store
        before = store.version
        store.extend([])
        assert store.version == before
        registry.build("s", scale=0.01, wait=True)
        assert store.version > before

    def test_serials_are_unique_across_stores(self):
        from repro.storage.store import TrajectoryStore

        assert TrajectoryStore().serial != TrajectoryStore().serial

class TestSpaceGeneration:
    """The stamp's space component: a monotonic generation counter,
    not ``id(space)`` (ids are reused after garbage collection)."""

    def test_space_reassignment_bumps_generation(self):
        registry = build_registry()
        workbench = registry.get("s").workbench
        before = workbench.space_generation
        workbench.space = workbench.space
        assert workbench.space_generation > before

    def test_generations_are_unique_across_workbenches(self):
        from repro.api import Workbench

        a = Workbench()
        b = Workbench()
        a.space = None
        b.space = None
        assert a.space_generation != b.space_generation

    def test_space_swap_invalidates_cached_reads(self):
        registry = build_registry()
        cache = ResponseCache()
        raw = raw_query(limit=5)
        first = execute_json(registry, raw, cache=cache)
        workbench = registry.get("s").workbench
        workbench.space = workbench.space  # same object, new epoch
        second = execute_json(registry, raw, cache=cache)
        assert first == second  # recomputed, not served stale
        assert cache.hits == 0


class TestCoordinatorStamp:
    """The duck-typed ``cache_stamp`` hook: a shard coordinator's
    responses cache and invalidate like a registry's."""

    def test_coordinator_reads_hit_until_ingest(self):
        from repro.shard import ShardCoordinator

        coordinator = ShardCoordinator.local(2)
        doc_source = build_registry()
        docs = [t.to_dict()
                for t in doc_source.get("s").workbench.store]
        coordinator.execute_command(
            P.IngestDocuments(session="s", docs=docs[:5]))
        cache = ResponseCache()
        raw = raw_query(limit=50)
        first = execute_json(coordinator, raw, cache=cache)
        again = execute_json(coordinator, raw, cache=cache)
        assert first == again
        assert cache.hits == 1
        coordinator.execute_command(
            P.IngestDocuments(session="s", docs=docs[5:]))
        status, after = execute_json(coordinator, raw, cache=cache)
        assert cache.hits == 1  # stamp changed: recomputed
        assert len(json.loads(after)["hits"]) \
            > len(json.loads(first[1])["hits"])

    def test_unknown_session_stamp_is_none(self):
        from repro.shard import ShardCoordinator

        coordinator = ShardCoordinator.local(1)
        assert coordinator.cache_stamp("ghost") is None
