"""End-to-end stream tests: the ``StreamDataset`` command family
over both HTTP front-ends, durability across a server restart, and
the Louvre replay content-identity gate over the wire.
"""

from __future__ import annotations

import pytest

from repro.core.builder import TrajectoryBuilder
from repro.service import protocol as P
from repro.service.client import ServiceClient
from repro.service.protocol import canonical_json
from repro.service.registry import SessionRegistry
from repro.stream.segmenter import event_to_dict
from tests.service.conftest import make_server
from tests.stream.test_segmenter import interleave

ZONES = ["zone60886", "zone60887", "zone60888"]
GAP = 4 * 3600.0


def ev(mo_id, state, t_start, duration=60.0):
    return {"mo_id": mo_id, "state": state, "t_start": t_start,
            "t_end": t_start + duration}


def walk(mo_id, t0, zones=ZONES, dwell=60.0):
    return [ev(mo_id, zone, t0 + i * dwell, dwell)
            for i, zone in enumerate(zones)]


class TestStreamCommands:
    """Open → append → status → close over each front-end."""

    def test_stream_lifecycle(self, service):
        _, client, registry = service
        info = client.open_stream("live", "feed")
        assert info.status["durable"] is False  # in-memory registry
        assert info.status["watermark"] is None

        ack = client.append_events("live", "feed", walk("alice", 0.0))
        assert ack.appended == 3
        assert ack.episodes_closed == 0
        assert ack.open_events == 3

        # heartbeat: empty batch, watermark past the gap → episode
        ack = client.append_events("live", "feed",
                                   watermark=3 * 60.0 + GAP + 1.0)
        assert ack.appended == 0
        assert ack.episodes_closed == 1
        assert ack.open_events == 0

        status = client.stream_status("live", "feed")
        assert status.status["events_acked"] == 3
        assert status.status["episodes_stored"] == 1

        closed = client.close_stream("live", "feed")
        assert closed.events_acked == 3
        assert closed.episodes_total == 1
        assert len(registry.get("live").workbench.store) == 1
        client.call(P.DropSession(session="live"))

    def test_streamed_episodes_are_queryable(self, service):
        _, client, _ = service
        client.open_stream("live-q", "feed")
        client.append_events("live-q", "feed", walk("alice", 0.0))
        client.close_stream("live-q", "feed")  # flush
        page = client.run_query("live-q")
        assert page.total == 1
        assert page.hits[0].trajectory.mo_id == "alice"
        client.call(P.DropSession(session="live-q"))

    def test_unknown_stream_is_404(self, service):
        _, client, _ = service
        with pytest.raises(P.ServiceError) as info:
            client.append_events("nowhere", "feed", [])
        assert info.value.code == "unknown_stream"
        assert info.value.http_status == 404

    def test_overload_is_typed_503(self, service):
        _, client, _ = service
        client.open_stream("live-o", "feed", max_open_events=2)
        with pytest.raises(P.ServiceError) as info:
            client.append_events("live-o", "feed", walk("alice", 0.0))
        assert info.value.code == "overloaded"
        assert info.value.http_status == 503
        client.close_stream("live-o", "feed")
        client.call(P.DropSession(session="live-o"))

    def test_bad_event_is_400(self, service):
        _, client, _ = service
        client.open_stream("live-b", "feed")
        with pytest.raises(P.ServiceError) as info:
            client.append_events("live-b", "feed", [{"mo_id": "x"}])
        assert info.value.code == "bad_request"
        assert info.value.http_status == 400
        client.close_stream("live-b", "feed")
        client.call(P.DropSession(session="live-b"))

    def test_reopen_returns_existing_stream(self, service):
        _, client, _ = service
        client.open_stream("live-r", "feed")
        client.append_events("live-r", "feed", walk("alice", 0.0))
        info = client.open_stream("live-r", "feed")  # idempotent
        assert info.status["events_acked"] == 3
        client.close_stream("live-r", "feed")
        client.call(P.DropSession(session="live-r"))

    def test_health_reports_stream_counters(self, service):
        _, client, _ = service
        client.open_stream("live-h", "feed")
        client.append_events("live-h", "feed", walk("alice", 0.0),
                             watermark=30.0)
        health = client.health()
        streams = health["streams"]
        assert streams["open"] >= 1
        assert streams["events_acked"] >= 3
        assert streams["watermark_min"] is not None
        client.close_stream("live-h", "feed")
        client.call(P.DropSession(session="live-h"))


class TestDurableStreams:
    """Restart the server process state (fresh registry over the same
    persist dir) mid-stream: zero acked-event loss, identical bytes."""

    @pytest.fixture(params=["threading", "asyncio"])
    def backend(self, request):
        return request.param

    def test_restart_midstream_loses_nothing(self, backend, tmp_path):
        persist = str(tmp_path / "data")
        registry = SessionRegistry(persist_dir=persist, fsync=False)
        server = make_server(backend, registry).start()
        client = ServiceClient(server.url)
        try:
            client.open_stream("museum", "gates")
            ack = client.append_events("museum", "gates",
                                       walk("alice", 0.0))
            assert ack.seq == 1  # journaled before the ack
        finally:
            client.close()
            server.stop()
        # "kill -9": nothing flushed beyond what the ack promised
        registry2 = SessionRegistry(persist_dir=persist, fsync=False)
        server2 = make_server(backend, registry2).start()
        client2 = ServiceClient(server2.url)
        try:
            status = client2.stream_status("museum", "gates")
            assert status.status["events_acked"] == 3  # zero loss
            client2.append_events("museum", "gates",
                                  walk("bob", GAP * 2))
            closed = client2.close_stream("museum", "gates")
            assert closed.events_acked == 6
            page = client2.run_query("museum")
            assert page.total == 2
            mo_ids = sorted(h.trajectory.mo_id for h in page.hits)
            assert mo_ids == ["alice", "bob"]
        finally:
            client2.close()
            server2.stop()


class TestLouvreReplayOverWire:
    """The acceptance gate over HTTP: the 2% corpus replayed as an
    interleaved stream yields a store content-identical to the batch
    build."""

    def test_streamed_corpus_matches_batch(self, louvre_space,
                                           small_corpus, tmp_path):
        _, records = small_corpus
        batch, _ = TrajectoryBuilder(
            louvre_space.dataset_zone_nrg()).build_all(records)
        by_visitor = {}
        for record in sorted(records,
                             key=lambda r: (r.mo_id, r.t_start,
                                            r.t_end)):
            by_visitor.setdefault(record.mo_id, []).append(record)
        events = interleave(list(by_visitor.values()), seed=11)

        registry = SessionRegistry(
            persist_dir=str(tmp_path / "data"), fsync=False)
        server = make_server("asyncio", registry).start()
        client = ServiceClient(server.url)
        try:
            client.open_stream("replay", "gates",
                               checkpoint_every=10)
            consumed = 0
            while consumed < len(events):
                chunk = events[consumed:consumed + 100]
                consumed += len(chunk)
                rest = events[consumed:]
                client.append_events(
                    "replay", "gates",
                    [event_to_dict(e) for e in chunk],
                    watermark=(min(e.t_start for e in rest)
                               if rest else None))
            closed = client.close_stream("replay", "gates")
            assert closed.events_acked == len(events)
            streamed = list(registry.get("replay").workbench.store)
            assert len(streamed) == len(batch)
            assert (sorted(canonical_json(t.to_dict())
                           for t in streamed)
                    == sorted(canonical_json(t.to_dict())
                              for t in batch))
        finally:
            client.close()
            server.stop()
