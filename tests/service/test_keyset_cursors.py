"""Ordered pagination: keyset cursors under concurrent ingestion.

Offset cursors were only stable for quiescent sessions (documented in
``docs/service.md`` before this change): an ingest between two pages
shifted the sorted view under the walker, repeating or skipping hits.
Keyset cursors encode the last hit's ``(order-key value, doc id)``
and resume strictly past that boundary, so every document present at
walk start is served exactly once regardless of concurrent appends.
"""

import pytest

from repro.service import protocol as P
from repro.service.client import ServiceError
from repro.service.executor import LocalBinding
from repro.service.registry import SessionRegistry

SESSION = "keyset"


@pytest.fixture()
def binding():
    binding = LocalBinding(SessionRegistry())
    binding.call(P.BuildDataset(session=SESSION, scale=0.02,
                                wait=True))
    return binding


def walk(binding, order_by, descending=False, limit=3,
         session=SESSION, grow_after=None):
    """Full cursor walk; optionally ingest after the first page."""
    pages = 0
    seen = []
    cursor = None
    while True:
        page = binding.call(P.RunQuery(
            session=session, limit=limit, cursor=cursor,
            order_by=order_by, descending=descending,
            include_total=False))
        seen.extend(page.hits)
        pages += 1
        if pages == 1 and grow_after is not None:
            grow_after()
        if page.next_cursor is None:
            return seen
        cursor = page.next_cursor


def store_of(binding, session=SESSION):
    return binding.registry.get(session).workbench.store


class TestQuiescentOrderings:
    @pytest.mark.parametrize("order_by", ["duration", "mo_id",
                                          "t_start", "entries",
                                          "doc_id"])
    def test_walk_matches_full_sort(self, binding, order_by):
        from repro.storage.results import ORDER_KEYS
        from repro.storage.store import StoredTrajectory

        hits = walk(binding, order_by)
        store = store_of(binding)
        expected = sorted(
            (StoredTrajectory(i, store.get(i))
             for i in range(len(store))),
            key=lambda h: (ORDER_KEYS[order_by](h), h.doc_id))
        assert [h.doc_id for h in hits] \
            == [h.doc_id for h in expected]

    def test_descending_walk(self, binding):
        hits = walk(binding, "duration", descending=True)
        durations = [h.trajectory.duration for h in hits]
        assert durations == sorted(durations, reverse=True)
        assert len({h.doc_id for h in hits}) == len(hits)

    def test_ties_break_on_doc_id(self, binding):
        # every document matches; entries has heavy ties
        hits = walk(binding, "entries", limit=2)
        composite = [(len(h.trajectory.trace), h.doc_id)
                     for h in hits]
        assert composite == sorted(composite)


class TestConcurrentIngestion:
    def test_no_repeat_no_skip_of_initial_documents(self, binding):
        """Every document present at walk start appears exactly once,
        even though an ingest doubled the corpus after page one."""
        initial = len(store_of(binding))

        def grow():
            binding.call(P.BuildDataset(session=SESSION, scale=0.02,
                                        wait=True))

        hits = walk(binding, "duration", limit=2, grow_after=grow)
        doc_ids = [h.doc_id for h in hits]
        assert len(set(doc_ids)) == len(doc_ids), "repeated a hit"
        missing = set(range(initial)) - set(doc_ids)
        assert not missing, "skipped pre-existing documents"

    def test_late_documents_follow_global_order(self, binding):
        """Whatever the walk serves is ordered — newly ingested
        documents may join, but only in their sorted place past the
        boundary."""
        def grow():
            binding.call(P.BuildDataset(session=SESSION, scale=0.01,
                                        wait=True))

        hits = walk(binding, "duration", limit=2, grow_after=grow)
        composite = [(h.trajectory.duration, h.doc_id) for h in hits]
        assert composite == sorted(composite)


class TestCursorValidation:
    def first_cursor(self, binding, **kwargs):
        page = binding.call(P.RunQuery(session=SESSION, limit=2,
                                       include_total=False, **kwargs))
        assert page.next_cursor is not None
        return page.next_cursor

    def test_cursor_carries_keyset_boundary(self, binding):
        token = P.decode_cursor(
            self.first_cursor(binding, order_by="duration"))
        assert "okv" in token and "k" in token

    def test_legacy_offset_cursor_rejected(self, binding):
        fingerprint = P.page_fingerprint(None, "duration", False)
        legacy = P.encode_cursor({"f": fingerprint, "o": 2, "k": 1})
        with pytest.raises(ServiceError) as excinfo:
            binding.call(P.RunQuery(session=SESSION, limit=2,
                                    order_by="duration",
                                    cursor=legacy))
        assert excinfo.value.code == "bad_cursor"

    def test_unorderable_boundary_rejected(self, binding):
        fingerprint = P.page_fingerprint(None, "duration", False)
        forged = P.encode_cursor({"f": fingerprint,
                                  "okv": [1, 2], "k": 1})
        with pytest.raises(ServiceError) as excinfo:
            binding.call(P.RunQuery(session=SESSION, limit=2,
                                    order_by="duration",
                                    cursor=forged))
        assert excinfo.value.code == "bad_cursor"

    def test_type_mismatched_boundary_rejected(self, binding):
        # a str boundary against a float key must be bad_cursor, not
        # an internal TypeError
        fingerprint = P.page_fingerprint(None, "duration", False)
        forged = P.encode_cursor({"f": fingerprint,
                                  "okv": "not-a-duration", "k": 1})
        with pytest.raises(ServiceError) as excinfo:
            binding.call(P.RunQuery(session=SESSION, limit=2,
                                    order_by="duration",
                                    cursor=forged))
        assert excinfo.value.code == "bad_cursor"

    def test_cursor_bound_to_ordering(self, binding):
        cursor = self.first_cursor(binding, order_by="duration")
        with pytest.raises(ServiceError) as excinfo:
            binding.call(P.RunQuery(session=SESSION, limit=2,
                                    order_by="mo_id", cursor=cursor))
        assert excinfo.value.code == "bad_cursor"
