"""Health-document reporting: WAL group-commit counters and the
per-shard saturation section."""

from repro.service import protocol as P
from repro.service.registry import SessionRegistry
from repro.service.wire import health_payload, wal_report


class _FakeWal:
    def __init__(self, appends, group_flushes):
        self.appends = appends
        self.group_flushes = group_flushes


class TestWalReport:
    def test_coalescing_is_appends_per_flush(self):
        report = wal_report(_FakeWal(appends=12, group_flushes=4))
        assert report == {"appends": 12, "group_flushes": 4,
                          "coalescing": 3.0}

    def test_no_flush_yet_reports_none(self):
        report = wal_report(_FakeWal(appends=0, group_flushes=0))
        assert report["coalescing"] is None


class TestHealthPayload:
    def test_durable_sessions_carry_wal_counters(self, tmp_path):
        registry = SessionRegistry(persist_dir=str(tmp_path),
                                   fsync=False)
        registry.build("s", scale=0.01, wait=True)
        payload = health_payload(registry)
        entry = payload["sessions"][0]
        assert entry["name"] == "s"
        assert entry["wal"]["appends"] > 0
        assert entry["wal"]["group_flushes"] > 0
        assert entry["wal"]["coalescing"] >= 1.0

    def test_memory_sessions_have_no_wal_section(self):
        registry = SessionRegistry()
        registry.build("s", scale=0.01, wait=True)
        payload = health_payload(registry)
        assert "wal" not in payload["sessions"][0]
        assert "shards" not in payload

    def test_coordinator_reports_per_shard_saturation(self):
        from repro.shard import ShardCoordinator

        coordinator = ShardCoordinator.local(2)
        coordinator.execute_command(P.BuildDataset(
            session="s", scale=0.01, wait=True))
        payload = health_payload(coordinator)
        assert payload["sessions"][0]["name"] == "s"
        assert payload["sessions"][0]["trajectories"] > 0
        shards = payload["shards"]
        assert [entry["shard"] for entry in shards] == [0, 1]
        assert all(entry["requests"] > 0 for entry in shards)
        assert all(entry["inflight"] == 0 for entry in shards)
