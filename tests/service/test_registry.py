"""SessionRegistry: named sessions, background jobs, job handles."""

import pytest

from repro.api import Workbench
from repro.service import protocol as P
from repro.service.executor import LocalBinding
from repro.service.registry import (
    JobState,
    SessionRegistry,
    UnknownJobError,
    UnknownSessionError,
)
from tests.conftest import make_trajectory


class TestSessions:
    def test_create_is_idempotent(self):
        registry = SessionRegistry()
        a = registry.create("one")
        assert registry.create("one") is a
        assert registry.names() == ["one"]

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownSessionError):
            SessionRegistry().get("nope")

    def test_drop(self):
        registry = SessionRegistry()
        registry.create("one")
        registry.drop("one")
        assert registry.names() == []
        with pytest.raises(UnknownSessionError):
            registry.drop("one")

    def test_adopt_existing_workbench(self):
        registry = SessionRegistry()
        workbench = Workbench.from_trajectories(
            [make_trajectory(states=("a", "b"))])
        session = registry.adopt("mine", workbench)
        assert session.workbench is workbench
        assert session.state == "ready"

    def test_empty_session_state(self):
        assert SessionRegistry().create("x").state == "empty"


class TestBuildJobs:
    def test_background_build_completes(self):
        registry = SessionRegistry()
        job = registry.build("louvre", scale=0.02)
        assert job.wait(timeout=120)
        assert job.state is JobState.DONE
        assert job.error is None
        session = registry.get("louvre")
        assert session.state == "ready"
        assert len(session.workbench.store) > 0
        # the handle exposes the finished pipeline's metrics
        assert job.metrics is not None
        assert job.metrics["store"].items_in \
            == len(session.workbench.store)

    def test_wait_flag_blocks(self):
        registry = SessionRegistry()
        job = registry.build("louvre", scale=0.02, wait=True)
        assert job.state is JobState.DONE

    def test_two_sessions_are_independent(self):
        registry = SessionRegistry()
        job_a = registry.build("a", scale=0.02, wait=True)
        job_b = registry.build("b", scale=0.01, wait=True)
        assert job_a.state is JobState.DONE
        assert job_b.state is JobState.DONE
        size_a = len(registry.get("a").workbench.store)
        size_b = len(registry.get("b").workbench.store)
        assert size_a > size_b > 0

    def test_failed_build_surfaces_error(self, tmp_path):
        registry = SessionRegistry()
        job = registry.build("bad", source="csv",
                             path=str(tmp_path / "missing.csv"),
                             wait=True)
        assert job.state is JobState.FAILED
        assert job.error
        assert registry.get("bad").state == "failed"

    def test_bad_source_rejected_synchronously(self):
        registry = SessionRegistry()
        with pytest.raises(ValueError):
            registry.build("x", source="oracle")
        with pytest.raises(ValueError):
            registry.build("x", source="csv")  # no path

    def test_unknown_job_raises(self):
        with pytest.raises(UnknownJobError):
            SessionRegistry().job("job-999")


class TestLocalBindingLifecycle:
    """The command protocol drives the same lifecycle."""

    def test_build_then_query_then_mine(self):
        binding = LocalBinding()
        info = binding.call(P.BuildDataset(session="s", scale=0.02,
                                           wait=True))
        assert info.state == "done"
        page = binding.call(P.RunQuery(session="s", limit=5))
        assert page.total == len(
            binding.registry.get("s").workbench.store)
        patterns = binding.call(P.MinePatterns(session="s",
                                               min_support=0.5))
        assert patterns.patterns
        sessions = binding.call(P.ListSessions()).sessions
        assert [s.name for s in sessions] == ["s"]
        assert sessions[0].state == "ready"

    def test_job_status_command(self):
        binding = LocalBinding()
        info = binding.call(P.BuildDataset(session="s", scale=0.02))
        final = binding.call(P.JobStatus(job_id=info.job_id))
        binding.registry.job(info.job_id).wait(timeout=120)
        final = binding.call(P.JobStatus(job_id=info.job_id))
        assert final.state == "done"
        assert final.metrics is not None

    def test_errors_raise_service_error(self):
        binding = LocalBinding()
        with pytest.raises(P.ServiceError) as excinfo:
            binding.call(P.RunQuery(session="ghost"))
        assert excinfo.value.code == "unknown_session"

    def test_call_json_is_the_wire_path(self):
        binding = LocalBinding()
        raw = P.ListSessions().to_json()
        reply = P.response_from_json(binding.call_json(raw))
        assert isinstance(reply, P.SessionList)
        garbage = binding.call_json(b"not json")
        assert isinstance(P.response_from_json(garbage), P.ErrorInfo)


class TestJobRetention:
    def test_finished_jobs_are_pruned(self, monkeypatch):
        from repro.service import registry as R

        monkeypatch.setattr(R, "MAX_FINISHED_JOBS", 3)
        registry = SessionRegistry()
        jobs = [registry.build("s", scale=0.01, wait=True)
                for _ in range(6)]
        # the most recent finished handles survive; the oldest are gone
        assert registry.job(jobs[-1].job_id) is jobs[-1]
        with pytest.raises(UnknownJobError):
            registry.job(jobs[0].job_id)


class TestErrorPropagation:
    def test_library_path_does_not_swallow_bugs(self):
        """A genuine bug propagates through LocalBinding.call with
        its traceback; only the wire boundary converts to Error."""
        binding = LocalBinding()
        binding.call(P.BuildDataset(session="s", scale=0.01,
                                    wait=True))
        session = binding.registry.get("s")
        original_space = session.workbench.space

        class Broken:
            @property
            def zone_hierarchy(self):
                raise RuntimeError("boom")

        session.workbench.space = Broken()
        try:
            with pytest.raises(RuntimeError, match="boom"):
                binding.call(P.Similarity(session="s"))
            # the wire path answers instead of crashing
            reply = P.response_from_json(
                binding.call_json(P.Similarity(session="s").to_json()))
            assert isinstance(reply, P.ErrorInfo)
            assert reply.code == "internal"
        finally:
            session.workbench.space = original_space
