"""The asyncio front-end's own behaviors.

Everything the parameterized e2e suite (``test_server.py``) cannot
see from the outside: keep-alive reuse, pipelined in-order responses,
503 load shedding with ``Retry-After``, the graceful drain, the
health load report, and response-cache validity across ingestion.
The e2e suite already proves byte-identity with the threaded server;
these tests pin the transport semantics.
"""

import json
import socket
import threading
import time

import pytest

from repro.service import aserver as A
from repro.service import protocol as P
from repro.service.aserver import AsyncServiceServer
from repro.service.client import ServiceClient
from repro.service.registry import SessionRegistry

# ----------------------------------------------------------------------
# raw-socket helpers (the point is to control the wire exactly)
# ----------------------------------------------------------------------


def post_bytes(body, target=b"/v1/call", close=False):
    head = b"POST " + target + b" HTTP/1.1\r\n" \
           b"Host: t\r\nContent-Type: application/json\r\n" \
           b"Content-Length: " + str(len(body)).encode() + b"\r\n"
    if close:
        head += b"Connection: close\r\n"
    return head + b"\r\n" + body


def get_bytes(target=b"/v1/health"):
    return b"GET " + target + b" HTTP/1.1\r\nHost: t\r\n\r\n"


def read_response(sock, buffer=b""):
    """One ``(status, headers, body, leftover)`` off the socket."""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed mid-response")
        buffer += chunk
    head, _, buffer = buffer.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    status = int(lines[0].split(b" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(b":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers[b"content-length"])
    while len(buffer) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed mid-body")
        buffer += chunk
    return status, headers, buffer[:length], buffer[length:]


def connect(server):
    sock = socket.create_connection(server.address, timeout=10)
    sock.settimeout(10)
    return sock


LIST_SESSIONS = P.ListSessions().to_json()


# ----------------------------------------------------------------------
# transport semantics
# ----------------------------------------------------------------------
class TestKeepAliveAndPipelining:
    def test_many_requests_one_connection(self):
        with AsyncServiceServer(SessionRegistry(), port=0) as server:
            sock = connect(server)
            try:
                leftover = b""
                for _ in range(5):
                    sock.sendall(post_bytes(LIST_SESSIONS))
                    status, _, body, leftover = read_response(
                        sock, leftover)
                    assert status == 200
                    assert json.loads(body)["response"] \
                        == "SessionList"
                # mixed GET on the same still-open connection
                sock.sendall(get_bytes())
                status, _, body, leftover = read_response(
                    sock, leftover)
                assert status == 200
                served = json.loads(body)["load"]["served"]
                assert served >= 5
            finally:
                sock.close()

    def test_pipelined_responses_come_back_in_order(self, monkeypatch):
        """Two requests written in one burst, the *first* slower than
        the second: responses must still arrive in request order."""
        release_first = threading.Event()

        def staged_execute(registry, raw, cache=None):
            tag = json.loads(raw)["tag"]
            if tag == "first":
                release_first.wait(10)
            return 200, json.dumps({"tag": tag}).encode()

        monkeypatch.setattr(A, "execute_json", staged_execute)
        server = AsyncServiceServer(SessionRegistry(), port=0,
                                    sync_workers=2,
                                    response_cache=False)
        with server:
            sock = connect(server)
            try:
                burst = post_bytes(b'{"tag": "first"}') \
                    + post_bytes(b'{"tag": "second"}')
                sock.sendall(burst)
                # give the fast second request time to finish first
                time.sleep(0.2)
                release_first.set()
                _, _, body, leftover = read_response(sock)
                assert json.loads(body)["tag"] == "first"
                _, _, body, _ = read_response(sock, leftover)
                assert json.loads(body)["tag"] == "second"
            finally:
                sock.close()

    def test_connection_close_is_honored(self):
        with AsyncServiceServer(SessionRegistry(), port=0) as server:
            sock = connect(server)
            try:
                sock.sendall(post_bytes(LIST_SESSIONS, close=True))
                status, _, _, leftover = read_response(sock)
                assert status == 200
                assert leftover == b""
                assert sock.recv(1024) == b""  # server closed it
            finally:
                sock.close()

    def test_post_to_unknown_path_keeps_stream_aligned(self):
        with AsyncServiceServer(SessionRegistry(), port=0) as server:
            sock = connect(server)
            try:
                sock.sendall(post_bytes(b'{"x": 1}',
                                        target=b"/v2/nope"))
                status, _, body, leftover = read_response(sock)
                assert status == 404
                assert json.loads(body)["code"] == "not_found"
                # next request on the same connection still parses
                sock.sendall(post_bytes(LIST_SESSIONS))
                status, _, _, _ = read_response(sock, leftover)
                assert status == 200
            finally:
                sock.close()


class TestBackPressure:
    def test_saturated_requests_get_503_with_retry_after(
            self, monkeypatch):
        entered = threading.Semaphore(0)
        release = threading.Event()

        def blocking_execute(registry, raw, cache=None):
            entered.release()
            release.wait(10)
            return 200, b'{"done": true}'

        monkeypatch.setattr(A, "execute_json", blocking_execute)
        server = AsyncServiceServer(SessionRegistry(), port=0,
                                    sync_workers=1, max_inflight=2,
                                    response_cache=False)
        with server:
            slow_socks = [connect(server) for _ in range(2)]
            extra = connect(server)
            try:
                for sock in slow_socks:
                    sock.sendall(post_bytes(b'{"n": 1}'))
                # one is executing on the single worker; the other is
                # queued — both count against max_inflight
                assert entered.acquire(timeout=5)
                deadline = time.monotonic() + 5
                while server._inflight < 2:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                extra.sendall(post_bytes(b'{"n": 2}'))
                status, headers, body, _ = read_response(extra)
                assert status == 503
                assert headers[b"retry-after"] == b"1"
                assert json.loads(body)["code"] == "saturated"
                release.set()
                for sock in slow_socks:
                    status, _, body, _ = read_response(sock)
                    assert status == 200
                    assert json.loads(body) == {"done": True}
                # rejected is reported by health
                extra2 = connect(server)
                extra2.sendall(get_bytes())
                _, _, body, _ = read_response(extra2)
                extra2.close()
                assert json.loads(body)["load"]["rejected"] == 1
            finally:
                release.set()
                for sock in slow_socks + [extra]:
                    sock.close()


class TestDeadlineShedding:
    def test_expired_deadline_is_shed_with_504(self, monkeypatch):
        """A request whose ``deadline_ms`` budget was consumed while
        it waited behind a slow one gets a typed 504 instead of
        burning a bridge worker."""
        entered = threading.Semaphore(0)
        release = threading.Event()
        real_execute = A.execute_json

        def gated_execute(registry, raw, cache=None):
            if b'"slow"' in raw:
                entered.release()
                release.wait(10)
                return 200, b'{"done": true}'
            return real_execute(registry, raw, cache)

        monkeypatch.setattr(A, "execute_json", gated_execute)
        server = AsyncServiceServer(SessionRegistry(), port=0,
                                    sync_workers=1,
                                    response_cache=False)
        with server:
            slow = connect(server)
            deadlined = connect(server)
            try:
                slow.sendall(post_bytes(b'{"tag": "slow"}'))
                assert entered.acquire(timeout=5)
                # 50 ms budget, but the single worker is busy — by
                # the time a worker frees up, the budget is gone.
                command = P.ListSessions().with_deadline(50)
                deadlined.sendall(post_bytes(command.to_json()))
                time.sleep(0.3)
                release.set()
                status, _, body, _ = read_response(deadlined)
                assert status == 504
                assert json.loads(body)["code"] == "deadline_exceeded"
                status, _, _, _ = read_response(slow)
                assert status == 200
                # the shed is counted in the health load report
                probe = connect(server)
                probe.sendall(get_bytes())
                _, _, body, _ = read_response(probe)
                probe.close()
                assert json.loads(body)["load"][
                    "deadline_rejected"] == 1
            finally:
                release.set()
                slow.close()
                deadlined.close()

    def test_live_deadline_executes_normally(self):
        with AsyncServiceServer(SessionRegistry(), port=0) as server:
            sock = connect(server)
            try:
                command = P.ListSessions().with_deadline(30_000)
                sock.sendall(post_bytes(command.to_json()))
                status, _, body, _ = read_response(sock)
                assert status == 200
                assert json.loads(body)["response"] == "SessionList"
            finally:
                sock.close()


class TestGracefulDrain:
    def test_stop_flushes_inflight_responses(self, monkeypatch):
        def slow_execute(registry, raw, cache=None):
            time.sleep(0.3)
            return 200, b'{"late": true}'

        monkeypatch.setattr(A, "execute_json", slow_execute)
        server = AsyncServiceServer(SessionRegistry(), port=0,
                                    response_cache=False).start()
        sock = connect(server)
        try:
            sock.sendall(post_bytes(b'{"n": 1}'))
            time.sleep(0.05)  # let the loop dispatch it
            stopper = threading.Thread(target=server.stop)
            stopper.start()
            status, _, body, _ = read_response(sock)
            stopper.join(timeout=10)
            assert not stopper.is_alive()
            assert status == 200
            assert json.loads(body) == {"late": True}
        finally:
            sock.close()

    def test_stop_without_start_does_not_hang(self):
        server = AsyncServiceServer(SessionRegistry(), port=0)
        server.stop()  # must return, not deadlock

    def test_start_fails_fast_on_taken_port(self):
        first = AsyncServiceServer(SessionRegistry(), port=0)
        with pytest.raises(OSError):
            AsyncServiceServer(SessionRegistry(),
                               port=first.address[1])
        first.stop()


class TestMalformedRequests:
    def test_malformed_head_is_400(self):
        with AsyncServiceServer(SessionRegistry(), port=0) as server:
            sock = connect(server)
            try:
                sock.sendall(b"NONSENSE\r\n\r\n")
                status, _, body, _ = read_response(sock)
                assert status == 400
                assert json.loads(body)["code"] == "bad_request"
            finally:
                sock.close()

    def test_oversized_body_is_400(self):
        with AsyncServiceServer(SessionRegistry(), port=0) as server:
            sock = connect(server)
            try:
                head = b"POST /v1/call HTTP/1.1\r\nHost: t\r\n" \
                    b"Content-Length: " \
                    + str(A.MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n"
                sock.sendall(head)
                status, _, body, _ = read_response(sock)
                assert status == 400
            finally:
                sock.close()

    def test_unknown_method_answers_then_closes(self):
        with AsyncServiceServer(SessionRegistry(), port=0) as server:
            sock = connect(server)
            try:
                sock.sendall(b"PUT /v1/call HTTP/1.1\r\n"
                             b"Host: t\r\n\r\n")
                status, _, _, leftover = read_response(sock)
                assert status == 405
                assert leftover == b""
                assert sock.recv(1024) == b""
            finally:
                sock.close()


class TestResponseCacheOverHttp:
    def test_repeat_reads_hit_and_ingest_invalidates(self):
        registry = SessionRegistry()
        registry.build("louvre", scale=0.01, wait=True)
        with AsyncServiceServer(registry, port=0) as server:
            client = ServiceClient(server.url)
            before = client.summary("louvre").stats
            again = client.summary("louvre").stats
            assert again == before
            stats = client.health()["load"]["cache"]
            assert stats["hits"] >= 1
            # ingest more: the same command must see the new corpus
            client.build("louvre", scale=0.01, wait=True)
            after = client.summary("louvre").stats
            assert after["visits"] > before["visits"]
            client.close()
