"""Unit behavior of the resilience primitives: deadlines, backoff,
circuit breakers, and the worker supervisor's restart loop."""

import pytest

from repro.resilience import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    WorkerSupervisor,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.service import protocol as P


class TestDeadline:
    def test_of_reads_the_command_envelope(self):
        command = P.ListSessions().with_deadline(250)
        deadline = Deadline.of(command)
        assert deadline is not None
        assert 0.0 < deadline.remaining() <= 0.25
        assert Deadline.of(P.ListSessions()) is None

    def test_remaining_ms_floors_at_zero(self):
        expired = Deadline.after_ms(-100)
        assert expired.expired
        assert expired.remaining_ms() == 0
        assert expired.remaining() < 0

    def test_clamp_shrinks_but_keeps_the_floor(self):
        deadline = Deadline.after_ms(10_000)
        assert deadline.clamp(2.0) == 2.0
        tight = Deadline.after_ms(1)
        assert tight.clamp(30.0) == pytest.approx(0.05, abs=0.01)
        assert Deadline.after_ms(500).clamp(None) <= 0.5


class TestRetryPolicy:
    def test_backoff_is_capped_exponential_with_full_jitter(self):
        policy = RetryPolicy(attempts=5, base=0.1, cap=0.3, seed=42)
        for attempt in range(1, 20):
            ceiling = min(0.3, 0.1 * 2 ** (attempt - 1))
            for _ in range(50):
                delay = policy.backoff(attempt)
                assert 0.0 <= delay <= ceiling

    def test_jitter_is_deterministic_under_a_seed(self):
        a = [RetryPolicy(seed=7).backoff(n) for n in range(1, 6)]
        b = [RetryPolicy(seed=7).backoff(n) for n in range(1, 6)]
        assert a == b

    def test_zero_base_disables_sleeping(self):
        policy = RetryPolicy(base=0.0)
        assert policy.backoff(3) == 0.0
        assert policy.sleep(3) == 0.0

    def test_sleep_never_overshoots_the_deadline(self):
        policy = RetryPolicy(base=10.0, cap=10.0, seed=1)
        slept = policy.sleep(1, Deadline.after_ms(20))
        assert slept <= 0.025

    def test_attempt_budget_is_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_open_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0,
                                 clock=clock)
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_recovers_or_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 5.0
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == CLOSED
        # Round two: a failing probe re-opens for a fresh cooldown.
        breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.now = 14.9
        assert not breaker.allow()

    def test_vanished_probe_is_replaced_after_a_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()  # probe that will never report back
        clock.now = 9.0
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()  # replacement probe admitted

    def test_snapshot_counts_trips(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == OPEN
        assert snapshot["trips"] == 1


class FakeWorker:
    def __init__(self, fail_restarts=0):
        self._alive = True
        self.fail_restarts = fail_restarts
        self.restarts = 0

    def alive(self):
        return self._alive

    def die(self):
        self._alive = False

    def restart(self):
        if self.fail_restarts > 0:
            self.fail_restarts -= 1
            raise RuntimeError("spawn failed")
        self.restarts += 1
        self._alive = True


class TestWorkerSupervisor:
    def test_sweep_restarts_only_the_dead(self):
        workers = [FakeWorker(), FakeWorker(), FakeWorker()]
        healed = []
        supervisor = WorkerSupervisor(
            workers, on_restart=lambda w: healed.append(w))
        workers[1].die()
        assert supervisor.sweep() == 1
        assert workers[1].alive() and workers[1].restarts == 1
        assert healed == [workers[1]]
        assert supervisor.sweep() == 0

    def test_failed_restart_backs_off_then_retries(self):
        worker = FakeWorker(fail_restarts=1)
        supervisor = WorkerSupervisor([worker], restart_backoff=30.0)
        worker.die()
        assert supervisor.sweep() == 0  # spawn failed
        assert supervisor.sweep() == 0  # still inside the backoff
        assert not worker.alive()
        supervisor._next_attempt[0] = 0.0  # backoff elapsed
        assert supervisor.sweep() == 1
        assert worker.alive()

    def test_on_restart_exceptions_are_advisory(self):
        worker = FakeWorker()
        supervisor = WorkerSupervisor(
            [worker], on_restart=lambda w: 1 / 0)
        worker.die()
        assert supervisor.sweep() == 1  # heal failure is swallowed
        assert supervisor.report()["restarts"] == {0: 1}

    def test_thread_lifecycle(self):
        worker = FakeWorker()
        with WorkerSupervisor([worker],
                              poll_interval=0.01) as supervisor:
            assert supervisor.report()["running"]
        assert not supervisor.report()["running"]
