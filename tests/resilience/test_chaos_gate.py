"""The chaos acceptance gate.

A replicated sharded engine runs a 1 000-request read workload while
the wire layer misbehaves on a deterministic schedule:

* one replica drops 5 % of its calls,
* one replica is permanently hung (every call stalls until its
  deadline budget expires),
* one replica is killed outright a quarter of the way in and never
  revived.

Every response must be byte-identical to the unsharded reference
executor, explicitly degraded (``degraded.missing_shards``), or an
explicitly typed failure (``deadline_exceeded`` / ``unavailable``).
Zero silently-wrong answers are tolerated, and the p99 latency must
stay bounded by the propagated deadline plus the coordinator's grace
window.
"""

import time

from repro.resilience import CircuitBreaker, FaultSchedule, RetryPolicy
from repro.service import protocol as P

from tests.resilience.conftest import SESSION

REQUESTS = 1000
KILL_AT = REQUESTS // 4
DEADLINE_MS = 1000
LIMITS = (1, 2, 3, 5, 8, 13)


def test_chaos_gate(cluster_factory, single):
    cluster = cluster_factory(
        shard_count=2,
        replicas=2,
        schedules={
            # shard 0, replica 1: lossy wire
            (0, 1): FaultSchedule(seed=101, drop_rate=0.05),
            # shard 1, replica 1: permanently hung
            (1, 1): FaultSchedule(seed=102, hang_rate=1.0,
                                  hang_seconds=5.0),
        },
        retry=RetryPolicy(attempts=4, seed=7, base=0.001, cap=0.01),
        # Threshold high enough that the 5 % lossy-but-alive replica
        # is never ejected (its drops are absorbed by retries, which
        # reset the streak), while the dead and hung replicas fail
        # every single call and trip quickly.  The long cooldown
        # keeps them ejected for the whole run.
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=5, cooldown=120.0),
    )

    expected = {
        limit: single.call(
            P.RunQuery(session=SESSION, limit=limit)).to_dict()
        for limit in LIMITS
    }

    exact = degraded = typed = incorrect = 0
    latencies = []
    for n in range(REQUESTS):
        if n == KILL_AT:
            # shard 0's primary dies mid-run; reads must fail over
            # to the lossy replica without a wrong answer.
            cluster.wires[0][0].kill()
        limit = LIMITS[n % len(LIMITS)]
        command = P.RunQuery(
            session=SESSION, limit=limit,
            allow_partial=True).with_deadline(DEADLINE_MS)
        start = time.monotonic()
        response = cluster.coordinator.execute_command(command)
        latencies.append(time.monotonic() - start)

        if isinstance(response, P.ErrorInfo):
            assert response.code in ("deadline_exceeded",
                                     "unavailable"), response
            typed += 1
            continue
        payload = response.to_dict()
        if payload == expected[limit]:
            exact += 1
        elif payload.get("degraded"):
            # A degraded page must declare what it is missing and
            # must never invent hits the reference engine lacks.
            assert payload["degraded"]["missing_shards"], payload
            reference_ids = {hit["doc_id"]
                             for hit in expected[limit]["hits"]}
            full = {
                hit["doc_id"] for hit in single.call(P.RunQuery(
                    session=SESSION, limit=10_000))
                .to_dict()["hits"]}
            assert all(hit["doc_id"] in full
                       for hit in payload["hits"]), payload
            degraded += 1
            del reference_ids
        else:
            incorrect += 1

    assert incorrect == 0
    assert exact + degraded + typed == REQUESTS
    # The lossy failover path must actually absorb the chaos: the
    # overwhelming majority of answers stay byte-exact.
    assert exact >= REQUESTS * 0.95, (exact, degraded, typed)
    assert typed <= REQUESTS * 0.05

    # The injected faults really fired.
    assert cluster.wires[0][1].injected["drop"] > 0
    assert cluster.wires[1][1].injected["hang"] > 0
    assert cluster.wires[0][0].injected["dead"] > 0

    latencies.sort()
    p99 = latencies[int(0.99 * len(latencies))]
    # Deadline (1s) + scatter grace (0.5s) + scheduling slack.
    assert p99 < (DEADLINE_MS / 1000.0) + 1.0, p99

    # The hung replica was ejected by its breaker, not retried
    # forever: at most a handful of calls ever reached it.
    assert cluster.wires[1][1].injected["hang"] <= 10
    report = {(entry["shard"], entry["replica"]): entry["state"]
              for entry in cluster.coordinator.breaker_report()}
    assert report[(1, 1)] == "open"
    assert report[(0, 0)] == "open"  # the killed primary
