"""The fault-injection wire layer: seeded schedules, scripted plans,
and how each fault kind surfaces through a FaultyBinding."""

import pytest

from repro.resilience import FaultSchedule, FaultyBinding
from repro.service import protocol as P
from repro.service.executor import LocalBinding
from repro.service.registry import SessionRegistry

from tests.resilience.conftest import SESSION


def make_wire(schedule, corpus_docs):
    inner = LocalBinding(SessionRegistry())
    inner.call(P.IngestDocuments(session=SESSION, docs=corpus_docs))
    return FaultyBinding(inner, schedule, name="wire")


QUERY = P.RunQuery(session=SESSION, limit=3)


class TestFaultSchedule:
    def test_same_seed_draws_the_same_sequence(self):
        kwargs = dict(drop_rate=0.2, error_rate=0.2, hang_rate=0.1,
                      corrupt_rate=0.1, delay_rate=0.1)
        a = FaultSchedule(seed=11, **kwargs)
        b = FaultSchedule(seed=11, **kwargs)
        assert [a.draw() for _ in range(200)] == \
            [b.draw() for _ in range(200)]

    def test_zero_rates_never_fault(self):
        schedule = FaultSchedule(seed=3)
        assert all(schedule.draw() is None for _ in range(100))

    def test_scripted_plan_plays_then_passes_through(self):
        schedule = FaultSchedule.scripted(["drop", None, "error"])
        assert [schedule.draw() for _ in range(5)] == \
            ["drop", None, "error", None, None]

    def test_scripted_rejects_unknown_kinds(self):
        with pytest.raises(ValueError):
            FaultSchedule.scripted(["explode"])


class TestFaultyBinding:
    def test_pass_through_is_byte_identical(self, corpus_docs,
                                            single):
        wire = make_wire(FaultSchedule(seed=0), corpus_docs)
        assert wire.call(QUERY).to_dict() == \
            single.call(QUERY).to_dict()

    def test_drop_surfaces_as_connection_reset(self, corpus_docs):
        wire = make_wire(FaultSchedule.scripted(["drop"]),
                         corpus_docs)
        with pytest.raises(ConnectionResetError):
            wire.call(QUERY)
        assert wire.injected["drop"] == 1
        assert wire.call(QUERY).hits  # plan exhausted, healthy again

    def test_error_surfaces_as_internal_service_error(
            self, corpus_docs):
        wire = make_wire(FaultSchedule.scripted(["error"]),
                         corpus_docs)
        with pytest.raises(P.ServiceError) as excinfo:
            wire.call(QUERY)
        assert excinfo.value.code == "internal"
        assert "injected" in str(excinfo.value)

    def test_hang_blocks_until_released(self, corpus_docs):
        import threading
        import time

        wire = make_wire(
            FaultSchedule.scripted(["hang"], hang_seconds=30.0),
            corpus_docs)
        outcome = {}

        def call():
            start = time.monotonic()
            try:
                wire.call(QUERY)
            except ConnectionResetError:
                outcome["elapsed"] = time.monotonic() - start

        thread = threading.Thread(target=call, daemon=True)
        thread.start()
        time.sleep(0.1)
        assert thread.is_alive()  # still hung
        wire.release()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert outcome["elapsed"] < 5  # released early, not 30s

    def test_corrupt_surfaces_as_protocol_error(self, corpus_docs):
        wire = make_wire(FaultSchedule.scripted(["corrupt"]),
                         corpus_docs)
        with pytest.raises(P.ProtocolError):
            wire.call(QUERY)
        assert wire.injected["corrupt"] == 1

    def test_delay_still_returns_the_real_response(self, corpus_docs,
                                                   single):
        wire = make_wire(
            FaultSchedule.scripted(["delay"], delay_seconds=0.01),
            corpus_docs)
        assert wire.call(QUERY).to_dict() == \
            single.call(QUERY).to_dict()
        assert wire.injected["delay"] == 1

    def test_kill_and_revive(self, corpus_docs):
        wire = make_wire(FaultSchedule(seed=0), corpus_docs)
        wire.kill()
        assert wire.dead
        with pytest.raises(ConnectionRefusedError):
            wire.call(QUERY)
        assert wire.injected["dead"] == 1
        wire.revive()
        assert not wire.dead
        assert wire.call(QUERY).hits
