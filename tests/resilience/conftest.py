"""Shared resilience fixtures: a small reference corpus plus a
faulty replicated cluster factory.

Everything here compares a degraded/replicated engine against the
single-process executor, so the corpus is built once per run (the
louvre source is seeded — identical documents every time).
"""

import pytest

from repro.resilience import FaultSchedule, FaultyBinding, RetryPolicy
from repro.service import protocol as P
from repro.service.executor import LocalBinding
from repro.service.registry import SessionRegistry
from repro.shard.coordinator import ShardCoordinator

SESSION = "s"


@pytest.fixture(scope="session")
def corpus_docs():
    """The reference corpus as wire documents, built once."""
    registry = SessionRegistry()
    registry.build(SESSION, source="louvre", scale=0.03, wait=True)
    store = registry.get(SESSION).workbench.store
    return [trajectory.to_dict() for trajectory in store]


@pytest.fixture()
def single(corpus_docs):
    """The unsharded reference engine, pre-ingested."""
    binding = LocalBinding(SessionRegistry())
    binding.call(P.IngestDocuments(session=SESSION,
                                   docs=corpus_docs))
    return binding


class FaultyCluster:
    """A replicated local coordinator with every wire wrapped in a
    :class:`FaultyBinding`, addressable as ``wires[shard][replica]``.

    Fault schedules are swapped in *after* the corpus ingest: the
    chaos targets the read workload, not the write fan-out (a fault
    during ingest would legitimately mark the secondary stale and
    pull it out of rotation before the experiment starts).
    """

    def __init__(self, corpus_docs, shard_count=2, replicas=2,
                 schedules=None, retry=None, breaker_factory=None):
        self.wires = []
        groups = []
        for shard in range(shard_count):
            row = []
            for replica in range(replicas):
                registry = SessionRegistry(standby=replica > 0)
                row.append(FaultyBinding(
                    LocalBinding(registry),
                    FaultSchedule(),
                    name="s{}r{}".format(shard, replica)))
            self.wires.append(row)
            groups.append(row)
        self.coordinator = ShardCoordinator(
            groups,
            retry=retry or RetryPolicy(seed=7, base=0.001, cap=0.01),
            breaker_factory=breaker_factory)
        response = self.coordinator.execute_command(P.IngestDocuments(
            session=SESSION, docs=corpus_docs))
        assert isinstance(response, P.Ingested), response
        for (shard, replica), schedule in (schedules or {}).items():
            self.wires[shard][replica].schedule = schedule

    def release_all(self):
        """Free every injected hang so teardown never blocks on one."""
        for row in self.wires:
            for wire in row:
                wire.release()

    def close(self):
        self.release_all()
        self.coordinator.close()


@pytest.fixture()
def cluster_factory(corpus_docs):
    """Build :class:`FaultyCluster` instances, closed at teardown."""
    built = []

    def build(**kwargs):
        cluster = FaultyCluster(corpus_docs, **kwargs)
        built.append(cluster)
        return cluster

    yield build
    for cluster in built:
        cluster.close()
