"""DurableSession and the Workbench save/open sugar."""

from __future__ import annotations

import os

import pytest

from repro.api import Workbench
from repro.persist import (
    DurableSession,
    PersistError,
    open_workbench,
    register_space,
)
from repro.persist.session import revive_space
from repro.persist.wal import WriteAheadLog
from repro.service.protocol import canonical_json
from repro.storage.store import TrajectoryStore
from tests.conftest import make_trajectory


def docs(count, offset=0):
    return [make_trajectory(mo_id="mo-{}".format(offset + i),
                            start=1000.0 + 13.0 * (offset + i))
            for i in range(count)]


def store_bytes(store):
    return canonical_json([t.to_dict() for t in store])


class TestDurableSession:
    def test_checkpoint_open_round_trip(self, tmp_path):
        store = TrajectoryStore()
        store.extend(docs(5))
        session = DurableSession(str(tmp_path / "s"))
        session.checkpoint(store, space="LouvreSpace")
        session.close()

        reopened, space = DurableSession(str(tmp_path / "s")).open()
        assert space == "LouvreSpace"
        assert store_bytes(reopened) == store_bytes(store)
        assert reopened.wal is not None  # journaled from here on

    def test_open_replays_log_past_snapshot(self, tmp_path):
        session = DurableSession(str(tmp_path / "s"))
        store = TrajectoryStore()
        store.attach_wal(session.log())
        store.extend(docs(3))
        session.checkpoint(store)
        store.extend(docs(2, offset=3))  # journaled, not snapshotted
        session.close()

        recovered, _ = DurableSession(str(tmp_path / "s")).open()
        assert store_bytes(recovered) == store_bytes(store)

    def test_open_without_snapshot_recovers_from_log_alone(
            self, tmp_path):
        # a session that crashed before its first checkpoint
        session = DurableSession(str(tmp_path / "s"))
        store = TrajectoryStore()
        store.attach_wal(session.log())
        store.extend(docs(4))
        session.close()

        recovered, space = DurableSession(str(tmp_path / "s")).open()
        assert space is None
        assert store_bytes(recovered) == store_bytes(store)

    def test_crash_between_current_flip_and_log_reset(self, tmp_path):
        """Replay filters on the watermark, so records the snapshot
        already folded in are never applied twice."""
        directory = str(tmp_path / "s")
        session = DurableSession(directory)
        store = TrajectoryStore()
        store.attach_wal(session.log())
        store.extend(docs(3))
        session.checkpoint(store)
        store.extend(docs(2, offset=3))
        session.close()

        # simulate the crash: re-append the pre-checkpoint records to
        # the log as if reset() had never truncated them
        log_path = os.path.join(directory, "wal.log")
        live = open(log_path, "rb").read()
        stale = WriteAheadLog(os.path.join(str(tmp_path), "ghost.log"))
        stale.append(docs(3))  # seq 1, same as the folded record
        stale.close()
        ghost = open(stale.path, "rb").read()
        with open(log_path, "wb") as sink:
            sink.write(ghost + live)

        recovered, _ = DurableSession(directory).open()
        assert len(recovered) == 5  # not 8: seq 1 is below watermark

    def test_checkpoint_prunes_old_generations(self, tmp_path):
        store = TrajectoryStore()
        store.extend(docs(2))
        session = DurableSession(str(tmp_path / "s"),
                                 keep_snapshots=2)
        for _ in range(4):
            session.checkpoint(store)
        names = [name for name in os.listdir(str(tmp_path / "s"))
                 if name.startswith("snapshot-")]
        assert sorted(names) == ["snapshot-000003",
                                 "snapshot-000004"]

    def test_exists(self, tmp_path):
        session = DurableSession(str(tmp_path / "s"))
        assert not session.exists()
        session.checkpoint(TrajectoryStore())
        assert session.exists()


class TestWorkbenchSugar:
    def test_save_open_round_trip(self, tmp_path,
                                  small_trajectories):
        workbench = Workbench.from_trajectories(small_trajectories)
        info = workbench.save(str(tmp_path / "wb"))
        assert info.doc_count == len(workbench.store)

        reopened = Workbench.open(str(tmp_path / "wb"))
        assert store_bytes(reopened.store) \
            == store_bytes(workbench.store)
        # mining outputs byte-identical too
        assert canonical_json(reopened.summary()) \
            == canonical_json(workbench.summary())
        assert canonical_json([p.to_dict() for p in
                               reopened.patterns(min_support=0.2)]) \
            == canonical_json([p.to_dict() for p in
                               workbench.patterns(min_support=0.2)])

    def test_saved_workbench_journals_afterwards(self, tmp_path):
        workbench = Workbench.from_trajectories(docs(3))
        workbench.save(str(tmp_path / "wb"))
        workbench.store.extend(docs(2, offset=3))  # post-save ingest

        reopened = Workbench.open(str(tmp_path / "wb"))
        assert len(reopened.store) == 5

    def test_open_missing_dir_raises(self, tmp_path):
        with pytest.raises(PersistError, match="no persisted"):
            Workbench.open(str(tmp_path / "nothing"))

    def test_space_revival(self, tmp_path):
        workbench = Workbench.louvre(scale=0.01)
        workbench.save(str(tmp_path / "wb"))
        reopened = Workbench.open(str(tmp_path / "wb"))
        assert type(reopened.space).__name__ == "LouvreSpace"


class TestSpaceRegistry:
    def test_registered_factory_wins(self):
        class FakeSpace:
            pass

        register_space("FakeSpace", FakeSpace)
        assert isinstance(revive_space("FakeSpace"), FakeSpace)

    def test_unknown_space_is_none(self):
        assert revive_space("NoSuchSpace") is None
        assert revive_space(None) is None
