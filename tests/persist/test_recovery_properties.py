"""Crash-recovery property: any valid log prefix recovers exactly.

The ISSUE-level guarantee: for a session persisted as *snapshot +
write-ahead log*, replaying **any prefix** of the log's records over
the last snapshot yields a store whose ``Summary`` (and full byte
image) matches the in-memory store as it was at that point in the
ingestion — crashes can only lose un-acknowledged suffixes, never
corrupt the prefix.
"""

from __future__ import annotations

import os

from hypothesis import given, settings, strategies as st

from repro.mining.sequences import corpus_summary
from repro.persist.format import save_store
from repro.persist.wal import WriteAheadLog
from repro.service.protocol import canonical_json
from repro.storage.store import TrajectoryStore
from tests.conftest import make_trajectory

STATES = ["a", "b", "c", "d", "e"]


def trajectory_strategy(tag):
    return st.builds(
        lambda i, states, start, dwell: make_trajectory(
            mo_id="mo-{}-{}".format(tag, i), states=tuple(states),
            start=float(start), dwell=float(dwell)),
        st.integers(0, 9),
        st.lists(st.sampled_from(STATES), min_size=1, max_size=4,
                 unique=True),
        st.integers(0, 100_000), st.integers(1, 900))


#: A scenario: the batches already snapshotted, then the batches
#: appended to the log afterwards.
scenarios = st.tuples(
    st.lists(trajectory_strategy("snap"), max_size=6),
    st.lists(st.lists(trajectory_strategy("log"), min_size=1,
                      max_size=3), max_size=5))


def store_of(trajectories):
    store = TrajectoryStore()
    store.extend(trajectories)
    return store


def image(store):
    return canonical_json([t.to_dict() for t in store])


@settings(max_examples=25, deadline=None)
@given(scenarios, st.data())
def test_any_record_prefix_recovers_summary(tmp_path_factory,
                                            scenario, data):
    snapshotted, batches = scenario
    base = str(tmp_path_factory.mktemp("wal-prefix"))
    snapshot_dir = os.path.join(base, "snap")
    log_path = os.path.join(base, "wal.log")

    save_store(store_of(snapshotted), snapshot_dir)
    log = WriteAheadLog(log_path, fsync=False)
    for batch in batches:
        log.append(batch)
    log.close()

    # recover from an arbitrary record prefix of the log
    prefix_len = data.draw(st.integers(0, len(batches)),
                           label="prefix_len")
    in_memory = store_of(
        snapshotted + [t for batch in batches[:prefix_len]
                       for t in batch])

    recovered = TrajectoryStore.load(snapshot_dir)
    for seq, batch in WriteAheadLog(log_path).records():
        if seq > prefix_len:
            break
        recovered.extend(batch)

    assert len(recovered) == len(in_memory)
    assert canonical_json(corpus_summary(recovered)) \
        == canonical_json(corpus_summary(in_memory))
    assert image(recovered) == image(in_memory)


@settings(max_examples=25, deadline=None)
@given(scenarios, st.data())
def test_arbitrary_byte_truncation_recovers_a_record_prefix(
        tmp_path_factory, scenario, data):
    """Cutting the log at ANY byte — not just record boundaries —
    recovers the store to some exact record prefix."""
    snapshotted, batches = scenario
    base = str(tmp_path_factory.mktemp("wal-torn"))
    snapshot_dir = os.path.join(base, "snap")
    log_path = os.path.join(base, "wal.log")

    save_store(store_of(snapshotted), snapshot_dir)
    log = WriteAheadLog(log_path, fsync=False)
    for batch in batches:
        log.append(batch)
    log.close()

    # the log file is created lazily; zero appended batches leave none
    raw = open(log_path, "rb").read() if os.path.exists(log_path) \
        else b""
    cut = data.draw(st.integers(0, len(raw)), label="cut")
    with open(log_path, "wb") as sink:
        sink.write(raw[:cut])

    recovered = TrajectoryStore.load(snapshot_dir)
    surviving = WriteAheadLog(log_path).replay_into(recovered)
    assert 0 <= surviving <= len(batches)

    expected = store_of(
        snapshotted + [t for batch in batches[:surviving]
                       for t in batch])
    assert image(recovered) == image(expected)
