"""Group commit under concurrency: the durability contract holds.

The write-ahead log's promise — an acknowledged ``append`` survives
``kill -9`` — must not weaken now that concurrent appenders share
write+fsync groups.  These tests attack exactly that seam: many
threads appending at once (every ack recoverable, batches intact),
fsync failures (exactly the in-flight group dies, the log heals), and
the real thing — a subprocess SIGKILLed mid-stream whose every
*observed* ack must be in the recovered log, torn tail tolerated.
"""

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from tests.conftest import make_trajectory

from repro.persist.format import PersistError
from repro.persist.wal import WriteAheadLog

REPO_ROOT = Path(__file__).resolve().parents[2]


def recovered_ids(path):
    """``{seq: [mo ids]}`` of every valid record on disk."""
    return {seq: [t.mo_id for t in batch]
            for seq, batch in WriteAheadLog(str(path)).records()}


class TestConcurrentAppends:
    def test_every_ack_is_recovered_and_fsyncs_coalesce(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"), fsync=True)
        acked = []
        lock = threading.Lock()

        def worker(tid):
            for i in range(30):
                mo = "t{}-{}".format(tid, i)
                seq = wal.append([make_trajectory(mo_id=mo)])
                with lock:
                    acked.append((seq, mo))

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wal.close()

        assert len(acked) == 240
        assert len({seq for seq, _ in acked}) == 240  # unique seqs
        on_disk = recovered_ids(tmp_path / "wal.log")
        for seq, mo in acked:
            assert on_disk[seq] == [mo]
        assert wal.appends == 240
        # the whole point: appenders shared flushes
        assert wal.group_flushes < wal.appends

    def test_multi_document_batches_stay_intact(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        batches = {}
        lock = threading.Lock()

        def worker(tid):
            for i in range(10):
                ids = ["t{}-{}-{}".format(tid, i, k)
                       for k in range(3)]
                seq = wal.append([make_trajectory(mo_id=mo)
                                  for mo in ids])
                with lock:
                    batches[seq] = ids

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wal.close()
        assert recovered_ids(tmp_path / "wal.log") == batches

    def test_sequences_on_disk_strictly_increase(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        threads = [threading.Thread(
            target=lambda tid=tid: [
                wal.append([make_trajectory(
                    mo_id="t{}-{}".format(tid, i))])
                for i in range(20)])
            for tid in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wal.close()
        seqs = [seq for seq, _, _ in
                WriteAheadLog(str(tmp_path / "wal.log"))._iter_raw()]
        assert len(seqs) == 120
        assert seqs == sorted(seqs)


class TestFlushFailure:
    def test_failed_group_dies_log_heals(self, tmp_path, monkeypatch):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=True)
        wal.append([make_trajectory(mo_id="before")])

        real_fsync = os.fsync

        def exploding_fsync(fd):
            raise OSError("injected")

        monkeypatch.setattr("repro.persist.wal.os.fsync",
                            exploding_fsync)
        outcomes = []
        lock = threading.Lock()

        def worker(tid):
            try:
                wal.append([make_trajectory(
                    mo_id="doomed-{}".format(tid))])
            except PersistError:
                with lock:
                    outcomes.append(tid)

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(outcomes) == [0, 1, 2, 3]  # all four failed

        monkeypatch.setattr("repro.persist.wal.os.fsync", real_fsync)
        seq = wal.append([make_trajectory(mo_id="after")])
        wal.close()
        on_disk = recovered_ids(tmp_path / "wal.log")
        assert on_disk[1] == ["before"]
        assert on_disk[seq] == ["after"]
        # no doomed record survived to shadow anything
        assert {mo for ids in on_disk.values()
                for mo in ids} == {"before", "after"}


_CHILD = r"""
import sys, threading
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from repro.persist.wal import WriteAheadLog
from tests.conftest import make_trajectory

wal = WriteAheadLog(sys.argv[1], fsync=True)
lock = threading.Lock()

def worker(tid):
    for i in range(100000):
        mo = "t%d-%d" % (tid, i)
        seq = wal.append([make_trajectory(mo_id=mo)])
        with lock:
            # printed strictly AFTER the ack: a line the parent
            # reads proves this exact record was acknowledged
            sys.stdout.write("%d %s\n" % (seq, mo))
            sys.stdout.flush()

threads = [threading.Thread(target=worker, args=(tid,))
           for tid in range(4)]
print("READY", flush=True)  # before any worker shares stdout
for t in threads:
    t.start()
for t in threads:
    t.join()
"""


class TestKillNine:
    def test_every_observed_ack_survives_sigkill(self, tmp_path):
        """4 appender threads, SIGKILL at an arbitrary moment: the
        recovered log must contain every append whose ack the parent
        saw (a torn unacknowledged tail is fine)."""
        wal_path = str(tmp_path / "wal.log")
        script = tmp_path / "appender.py"
        script.write_text(_CHILD.format(
            src=str(REPO_ROOT / "src"), root=str(REPO_ROOT)))
        child = subprocess.Popen(
            [sys.executable, str(script), wal_path],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        acked = []
        try:
            for line in child.stdout:
                if line == "READY\n" or not line.endswith("\n"):
                    continue
                seq_text, mo = line.split()
                acked.append((int(seq_text), mo))
                if len(acked) >= 120:
                    break
        finally:
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        if not acked:  # pragma: no cover
            pytest.fail("child produced no acks: {}".format(
                child.stderr.read()))

        on_disk = recovered_ids(wal_path)
        for seq, mo in acked:
            assert on_disk.get(seq) == [mo], \
                "acked record seq={} {} lost".format(seq, mo)
