"""Snapshot format: round-trip identity and corruption rejection."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.annotations import AnnotationSet, SemanticAnnotation
from repro.persist.format import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    SEGMENT_ANNOTATIONS,
    SEGMENT_INDEXES,
    SEGMENT_INTERVALS,
    CorruptSnapshotError,
    load_store,
    read_manifest,
    save_store,
)
from repro.service.protocol import canonical_json
from repro.storage.store import TrajectoryStore
from tests.conftest import make_trajectory


def corpus_store(count: int = 8) -> TrajectoryStore:
    store = TrajectoryStore()
    for i in range(count):
        store.insert(make_trajectory(
            mo_id="mo-{}".format(i),
            states=("a", "b", "c")[: 1 + i % 3],
            start=1000.0 + 37.0 * i,
            annotations=AnnotationSet.of(
                SemanticAnnotation.goal("visit"),
                SemanticAnnotation.activity(
                    "walk", confidence=0.5 + (i % 3) / 10.0))))
    return store


def store_bytes(store) -> bytes:
    return canonical_json([t.to_dict() for t in store])


class TestRoundTrip:
    def test_byte_identical(self, tmp_path):
        store = corpus_store()
        save_store(store, str(tmp_path / "snap"))
        loaded, info = load_store(str(tmp_path / "snap"))
        assert store_bytes(loaded) == store_bytes(store)
        assert info.doc_count == len(store) == len(loaded)

    def test_indexes_installed_match_rebuilt(self, tmp_path):
        store = corpus_store()
        save_store(store, str(tmp_path / "snap"))
        with_idx, _ = load_store(str(tmp_path / "snap"),
                                 use_indexes=True)
        rebuilt, _ = load_store(str(tmp_path / "snap"),
                                use_indexes=False)
        assert with_idx.state_cardinalities() \
            == rebuilt.state_cardinalities() \
            == store.state_cardinalities()
        assert with_idx.annotation_cardinalities() \
            == store.annotation_cardinalities()
        assert with_idx.moving_objects() == store.moving_objects()

    def test_snapshot_without_indexes_loads(self, tmp_path):
        store = corpus_store()
        save_store(store, str(tmp_path / "snap"),
                   include_indexes=False)
        assert not (tmp_path / "snap" / SEGMENT_INDEXES).exists()
        loaded, _ = load_store(str(tmp_path / "snap"))
        assert store_bytes(loaded) == store_bytes(store)
        assert loaded.state_cardinalities() \
            == store.state_cardinalities()

    def test_empty_store(self, tmp_path):
        save_store(TrajectoryStore(), str(tmp_path / "snap"))
        loaded, info = load_store(str(tmp_path / "snap"))
        assert len(loaded) == 0 and info.doc_count == 0

    def test_identical_store_identical_segments(self, tmp_path):
        store = corpus_store()
        save_store(store, str(tmp_path / "one"))
        save_store(store, str(tmp_path / "two"))
        for name in os.listdir(tmp_path / "one"):
            if name == MANIFEST_NAME:
                continue  # carries no content, ordering may differ
            assert (tmp_path / "one" / name).read_bytes() \
                == (tmp_path / "two" / name).read_bytes(), name

    def test_space_and_wal_seq_recorded(self, tmp_path):
        info = save_store(corpus_store(), str(tmp_path / "snap"),
                          space="LouvreSpace", wal_seq=17)
        assert info.space == "LouvreSpace" and info.wal_seq == 17
        _, loaded_info = load_store(str(tmp_path / "snap"))
        assert loaded_info.space == "LouvreSpace"
        assert loaded_info.wal_seq == 17

    def test_queries_identical_after_reload(self, tmp_path,
                                            small_trajectories):
        store = TrajectoryStore()
        store.extend(small_trajectories)
        save_store(store, str(tmp_path / "snap"))
        loaded, _ = load_store(str(tmp_path / "snap"))
        state = next(iter(store.state_cardinalities()))
        assert loaded.ids_visiting_state(state) \
            == store.ids_visiting_state(state)
        span = store.time_span()
        assert loaded.time_span() == span
        assert loaded.ids_active_between(span[0], span[0] + 600) \
            == store.ids_active_between(span[0], span[0] + 600)


class TestCorruptionRejected:
    @pytest.fixture()
    def snapshot(self, tmp_path):
        save_store(corpus_store(), str(tmp_path / "snap"),
                   space="LouvreSpace")
        return tmp_path / "snap"

    def test_manifest_bit_flip(self, snapshot):
        path = snapshot / MANIFEST_NAME
        raw = bytearray(path.read_bytes())
        # flip a digit inside the doc_count value
        text = raw.decode()
        mutated = text.replace('"doc_count":8', '"doc_count":9')
        assert mutated != text
        path.write_bytes(mutated.encode())
        with pytest.raises(CorruptSnapshotError,
                           match="self-checksum"):
            load_store(str(snapshot))

    def test_manifest_not_json(self, snapshot):
        (snapshot / MANIFEST_NAME).write_bytes(b"\x00garbage")
        with pytest.raises(CorruptSnapshotError):
            read_manifest(str(snapshot))

    def test_missing_manifest(self, snapshot):
        os.unlink(snapshot / MANIFEST_NAME)
        with pytest.raises(CorruptSnapshotError, match="unreadable"):
            load_store(str(snapshot))

    def test_truncated_segment(self, snapshot):
        path = snapshot / SEGMENT_INTERVALS
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptSnapshotError, match="truncated"):
            load_store(str(snapshot))

    def test_segment_bit_flip_same_length(self, snapshot):
        path = snapshot / SEGMENT_ANNOTATIONS
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptSnapshotError, match="checksum"):
            load_store(str(snapshot))

    def test_unsupported_version(self, snapshot):
        path = snapshot / MANIFEST_NAME
        manifest = json.loads(path.read_bytes())
        manifest["version"] = FORMAT_VERSION + 1
        path.write_bytes(canonical_json(manifest))
        with pytest.raises(CorruptSnapshotError,
                           match="unsupported snapshot version"):
            load_store(str(snapshot))

    def test_verify_false_skips_checksums(self, snapshot):
        # same-length bit flip inside a *numeric* column would decode;
        # verify=False documents the trade-off (still structurally
        # validated, not content-validated).
        store, _ = load_store(str(snapshot), verify=False)
        assert len(store) == 8

    def test_missing_segment_file(self, snapshot):
        os.unlink(snapshot / SEGMENT_INTERVALS)
        with pytest.raises(CorruptSnapshotError, match="unreadable"):
            load_store(str(snapshot))
