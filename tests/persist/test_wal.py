"""Write-ahead log: append/replay, torn tails, sequence monotony."""

from __future__ import annotations

import json

from repro.persist.wal import WriteAheadLog
from repro.service.protocol import canonical_json
from repro.storage.store import TrajectoryStore
from tests.conftest import make_trajectory


def docs(count, offset=0):
    return [make_trajectory(mo_id="mo-{}".format(offset + i),
                            start=1000.0 + 13.0 * (offset + i))
            for i in range(count)]


def store_bytes(store):
    return canonical_json([t.to_dict() for t in store])


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        batch_a, batch_b = docs(3), docs(2, offset=3)
        assert wal.append(batch_a) == 1
        assert wal.append(batch_b) == 2
        store = TrajectoryStore()
        assert wal.replay_into(store) == 2
        reference = TrajectoryStore()
        reference.extend(batch_a + batch_b)
        assert store_bytes(store) == store_bytes(reference)

    def test_empty_batch_not_logged(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.append([])
        assert wal.last_seq == 0
        assert len(wal) == 0

    def test_reopen_continues_sequence(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(docs(1))
        wal.close()
        again = WriteAheadLog(path)
        assert again.append(docs(1, offset=1)) == 2
        assert [seq for seq, _ in again.records()] == [1, 2]

    def test_after_seq_filter(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        for i in range(4):
            wal.append(docs(1, offset=i))
        assert [seq for seq, _ in wal.records(after_seq=2)] == [3, 4]
        store = TrajectoryStore()
        wal.replay_into(store, after_seq=2)
        assert len(store) == 2

    def test_store_attachment_journals_writes(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        store = TrajectoryStore()
        store.attach_wal(wal)
        store.insert(make_trajectory(mo_id="one"))
        store.extend(docs(2, offset=1))
        recovered = TrajectoryStore()
        WriteAheadLog(str(tmp_path / "wal.log")).replay_into(recovered)
        assert store_bytes(recovered) == store_bytes(store)
        assert store.detach_wal() is wal
        store.insert(make_trajectory(mo_id="untracked"))
        assert len(wal) == 2  # nothing logged after detach


class TestCrashTolerance:
    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(docs(2))
        wal.append(docs(2, offset=2))
        wal.close()
        raw = path.read_bytes()
        first_line_end = raw.index(b"\n") + 1
        # cut mid-way through the second record
        path.write_bytes(raw[: first_line_end + 25])
        reopened = WriteAheadLog(str(path))
        assert [seq for seq, _ in reopened.records()] == [1]

    def test_append_after_torn_tail_truncates_it(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(docs(1))
        wal.close()
        raw = path.read_bytes()
        path.write_bytes(raw + b'{"seq": 2, "docs": [')  # torn write
        reopened = WriteAheadLog(str(path))
        assert reopened.append(docs(1, offset=1)) == 2
        assert [seq for seq, _ in reopened.records()] == [1, 2]
        # the file itself is one valid prefix again
        for line in path.read_bytes().splitlines():
            json.loads(line)

    def test_checksum_mismatch_ends_valid_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(docs(1))
        wal.append(docs(1, offset=1))
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        tampered = lines[1].replace(b'"mo-1"', b'"mo-X"', 1)
        path.write_bytes(lines[0] + tampered)
        assert [seq for seq, _ in
                WriteAheadLog(str(path)).records()] == [1]

    def test_non_monotonic_seq_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(str(path))
        wal.append(docs(1))
        wal.close()
        raw = path.read_bytes()
        path.write_bytes(raw + raw)  # replayed duplicate of seq 1
        assert [seq for seq, _ in
                WriteAheadLog(str(path)).records()] == [1]


class TestFailedAppend:
    def test_failed_fsync_does_not_shadow_later_appends(
            self, tmp_path, monkeypatch):
        """A failed append may leave bytes on disk, but the next
        successful append must truncate them — an unacknowledged
        record never hides an acknowledged one from replay."""
        import os as os_module

        from repro.persist.format import PersistError as PErr

        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync=True)
        wal.append(docs(1))

        real_fsync = os_module.fsync

        def exploding_fsync(fd):
            raise OSError("disk full")

        monkeypatch.setattr("repro.persist.wal.os.fsync",
                            exploding_fsync)
        try:
            wal.append(docs(1, offset=1))
        except PErr:
            pass
        else:  # pragma: no cover
            raise AssertionError("append should have failed")
        monkeypatch.setattr("repro.persist.wal.os.fsync", real_fsync)

        assert wal.append(docs(1, offset=2)) == 2
        replayed = [seq for seq, _ in
                    WriteAheadLog(path).records()]
        assert replayed == [1, 2]
        store = TrajectoryStore()
        WriteAheadLog(path).replay_into(store)
        assert [t.mo_id for t in store] == ["mo-0", "mo-2"]


class TestReset:
    def test_reset_truncates_but_sequence_climbs(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(docs(1))
        wal.append(docs(1, offset=1))
        wal.reset()
        assert len(wal) == 0
        assert wal.append(docs(1, offset=2)) == 3

    def test_start_seq_floor_survives_truncation(self, tmp_path):
        # A checkpointed session whose log was truncated must not
        # reuse sequence numbers at or below the snapshot watermark.
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, start_seq=11)
        assert wal.append(docs(1)) == 11
