"""DiskStageCache: persistence across instances, eviction, gating."""

from __future__ import annotations

import json
import os

import pytest

from repro.persist.diskcache import DiskStageCache
from repro.pipeline.metrics import StageMetrics
from tests.conftest import make_trajectory

# A persistable prefix must end at a trajectory boundary — both of
# these do, so both the 1- and 2-deep prefixes may persist.
KEYS = [("annotate", "cfg-1"), ("store", "cfg-2")]


def batches(count=2):
    return [[make_trajectory(mo_id="mo-{}-{}".format(i, j))
             for j in range(2)] for i in range(count)]


def metrics():
    m = StageMetrics(name="clean", batches=2, items_in=4, items_out=4,
                     seconds=0.01)
    m.drop("zero_duration", 1)
    m.count("entries", 7)
    return m


class TestPersistence:
    def test_survives_new_instance(self, tmp_path):
        first = DiskStageCache(str(tmp_path))
        stored = batches()
        first.store("fp-1", KEYS, stored, [metrics(), metrics()])

        second = DiskStageCache(str(tmp_path))
        hit = second.lookup("fp-1", KEYS)
        assert hit is not None
        depth, got_batches, got_metrics = hit
        assert depth == 2
        assert second.disk_hits == 1 and second.hits == 1
        assert [[t.to_dict() for t in batch] for batch in got_batches] \
            == [[t.to_dict() for t in batch] for batch in stored]
        assert got_metrics[0].drops == {"zero_duration": 1}
        assert got_metrics[0].counters == {"entries": 7}

        # promoted to memory: a second lookup never re-reads disk
        second.lookup("fp-1", KEYS)
        assert second.disk_hits == 1 and second.hits == 2

    def test_longest_prefix_found_on_disk(self, tmp_path):
        first = DiskStageCache(str(tmp_path))
        first.store("fp-1", KEYS[:1], batches(), [metrics()])

        second = DiskStageCache(str(tmp_path))
        hit = second.lookup("fp-1", KEYS)  # asks for 2, finds 1
        assert hit is not None and hit[0] == 1

    def test_miss_on_other_fingerprint(self, tmp_path):
        first = DiskStageCache(str(tmp_path))
        first.store("fp-1", KEYS, batches(), [metrics(), metrics()])
        second = DiskStageCache(str(tmp_path))
        assert second.lookup("fp-2", KEYS) is None
        assert second.misses == 1 and second.disk_hits == 0

    def test_non_trajectory_items_stay_memory_only(self, tmp_path):
        cache = DiskStageCache(str(tmp_path))
        cache.store("fp-1", KEYS, [[{"not": "a trajectory"}]],
                    [metrics()])
        assert cache.lookup("fp-1", KEYS) is not None  # memory level
        assert not [name for name in os.listdir(str(tmp_path))
                    if name.endswith(".json")]

    @pytest.mark.parametrize("last", ["clean", "segment", "trace"])
    def test_mid_trajectory_prefixes_stay_memory_only(self, tmp_path,
                                                      last):
        """A prefix ending mid-trajectory is never persisted — not
        even with all-empty batches, which pass the per-item type
        gate vacuously."""
        cache = DiskStageCache(str(tmp_path))
        keys = [("clean", "cfg-1"), (last, "cfg-2")]
        cache.store("fp-1", keys, [[], []], [metrics(), metrics()])
        cache.store("fp-2", keys, batches(), [metrics(), metrics()])
        assert cache.lookup("fp-1", keys) is not None  # memory level
        assert not [name for name in os.listdir(str(tmp_path))
                    if name.endswith(".json")]

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        first = DiskStageCache(str(tmp_path))
        first.store("fp-1", KEYS, batches(), [metrics(), metrics()])
        (name,) = [n for n in os.listdir(str(tmp_path))
                   if n.endswith(".json")]
        path = os.path.join(str(tmp_path), name)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-20])  # truncate

        second = DiskStageCache(str(tmp_path))
        assert second.lookup("fp-1", KEYS) is None
        assert not os.path.exists(path)

    def test_checksum_mismatch_rejected(self, tmp_path):
        first = DiskStageCache(str(tmp_path))
        first.store("fp-1", KEYS, batches(), [metrics(), metrics()])
        (name,) = [n for n in os.listdir(str(tmp_path))
                   if n.endswith(".json")]
        path = os.path.join(str(tmp_path), name)
        document = json.loads(open(path, "rb").read())
        document["payload"]["fingerprint"] = "tampered"
        open(path, "w").write(json.dumps(document))

        second = DiskStageCache(str(tmp_path))
        assert second.lookup("fp-1", KEYS) is None


class TestBounds:
    def test_disk_eviction_cap(self, tmp_path):
        cache = DiskStageCache(str(tmp_path), max_disk_entries=3)
        for i in range(6):
            cache.store("fp-{}".format(i), KEYS, batches(1),
                        [metrics(), metrics()])
        files = [n for n in os.listdir(str(tmp_path))
                 if n.endswith(".json")]
        assert len(files) == 3

    def test_clear_drops_both_levels(self, tmp_path):
        cache = DiskStageCache(str(tmp_path))
        cache.store("fp-1", KEYS, batches(), [metrics(), metrics()])
        cache.clear()
        assert len(cache) == 0 and cache.disk_hits == 0
        assert not [n for n in os.listdir(str(tmp_path))
                    if n.endswith(".json")]

    def test_bad_max_disk_entries(self, tmp_path):
        with pytest.raises(ValueError):
            DiskStageCache(str(tmp_path), max_disk_entries=0)


class TestEndToEnd:
    def test_workbench_rebuild_across_processes(self, tmp_path):
        """Simulated restart: a fresh cache instance over the same
        directory replays yesterday's prefix byte-identically."""
        from repro.api import Workbench
        from repro.louvre.space import LouvreSpace
        from repro.pipeline.sources import louvre_source
        from repro.service.protocol import canonical_json

        def build(cache):
            workbench = Workbench(space=LouvreSpace())
            workbench.build(
                louvre_source(workbench.space, scale=0.01),
                cache=cache)
            return canonical_json(
                [t.to_dict() for t in workbench.store])

        cold = DiskStageCache(str(tmp_path))
        cold_bytes = build(cold)
        assert cold.disk_hits == 0

        warm = DiskStageCache(str(tmp_path))
        warm_bytes = build(warm)
        assert warm.disk_hits == 1
        assert warm_bytes == cold_bytes
