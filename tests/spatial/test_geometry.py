"""Unit and property tests for the geometry kernel."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spatial.geometry import (
    BBox,
    Point,
    Polygon,
    Segment,
    Vector,
    convex_hull,
    intersection_area,
    orientation,
    polygon_clip_convex,
    COLLINEAR,
    CLOCKWISE,
    COUNTERCLOCKWISE,
)


# ----------------------------------------------------------------------
# Point / Vector
# ----------------------------------------------------------------------
class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2), Point(-3, 7)
        assert a.distance_to(b) == b.distance_to(a)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_almost_equals_within_tolerance(self):
        assert Point(1, 1).almost_equals(Point(1 + 1e-12, 1 - 1e-12))

    def test_almost_equals_rejects_far_points(self):
        assert not Point(1, 1).almost_equals(Point(1.1, 1))

    def test_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    def test_as_tuple(self):
        assert Point(2.5, -1.0).as_tuple() == (2.5, -1.0)


class TestVector:
    def test_between(self):
        assert Vector.between(Point(1, 1), Point(4, 5)) == Vector(3, 4)

    def test_length(self):
        assert Vector(3, 4).length() == 5.0

    def test_dot_orthogonal(self):
        assert Vector(1, 0).dot(Vector(0, 5)) == 0.0

    def test_cross_sign(self):
        assert Vector(1, 0).cross(Vector(0, 1)) > 0
        assert Vector(0, 1).cross(Vector(1, 0)) < 0

    def test_normalized(self):
        unit = Vector(0, 10).normalized()
        assert math.isclose(unit.length(), 1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ValueError):
            Vector(0, 0).normalized()

    def test_scaled(self):
        assert Vector(2, -3).scaled(2) == Vector(4, -6)


# ----------------------------------------------------------------------
# orientation / Segment
# ----------------------------------------------------------------------
class TestOrientation:
    def test_counterclockwise(self):
        assert orientation(Point(0, 0), Point(1, 0),
                           Point(0, 1)) == COUNTERCLOCKWISE

    def test_clockwise(self):
        assert orientation(Point(0, 0), Point(0, 1),
                           Point(1, 0)) == CLOCKWISE

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1),
                           Point(2, 2)) == COLLINEAR


class TestSegment:
    def test_length_and_midpoint(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.length() == 10.0
        assert seg.midpoint() == Point(5, 0)

    def test_contains_point_on_segment(self):
        seg = Segment(Point(0, 0), Point(10, 10))
        assert seg.contains_point(Point(5, 5))

    def test_contains_point_collinear_but_outside(self):
        seg = Segment(Point(0, 0), Point(10, 10))
        assert not seg.contains_point(Point(11, 11))

    def test_contains_point_off_line(self):
        seg = Segment(Point(0, 0), Point(10, 10))
        assert not seg.contains_point(Point(5, 6))

    def test_properly_crosses(self):
        a = Segment(Point(0, 0), Point(10, 10))
        b = Segment(Point(0, 10), Point(10, 0))
        assert a.properly_crosses(b)

    def test_endpoint_touch_is_not_proper(self):
        a = Segment(Point(0, 0), Point(5, 5))
        b = Segment(Point(5, 5), Point(10, 0))
        assert not a.properly_crosses(b)
        assert a.intersects(b)

    def test_parallel_disjoint(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(0, 1), Point(10, 1))
        assert not a.intersects(b)

    def test_collinear_overlap(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(5, 0), Point(15, 0))
        assert a.overlaps_collinearly(b)
        assert not a.properly_crosses(b)

    def test_collinear_touching_endpoint_no_overlap(self):
        a = Segment(Point(0, 0), Point(10, 0))
        b = Segment(Point(10, 0), Point(20, 0))
        assert not a.overlaps_collinearly(b)


# ----------------------------------------------------------------------
# BBox
# ----------------------------------------------------------------------
class TestBBox:
    def test_dimensions(self):
        box = BBox(0, 0, 4, 3)
        assert box.width == 4 and box.height == 3
        assert box.area() == 12
        assert box.center() == Point(2, 1.5)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BBox(5, 0, 0, 5)

    def test_contains_point(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains_point(Point(5, 5))
        assert box.contains_point(Point(0, 0))  # boundary
        assert not box.contains_point(Point(11, 5))

    def test_intersects(self):
        assert BBox(0, 0, 5, 5).intersects(BBox(4, 4, 10, 10))
        assert BBox(0, 0, 5, 5).intersects(BBox(5, 0, 10, 5))  # touch
        assert not BBox(0, 0, 5, 5).intersects(BBox(6, 6, 10, 10))

    def test_expanded(self):
        assert BBox(0, 0, 1, 1).expanded(1) == BBox(-1, -1, 2, 2)

    def test_union_of(self):
        union = BBox.union_of([BBox(0, 0, 1, 1), BBox(5, 5, 6, 7)])
        assert union == BBox(0, 0, 6, 7)

    def test_union_of_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.union_of([])

    def test_to_polygon_roundtrip(self):
        poly = BBox(1, 2, 5, 6).to_polygon()
        assert poly.area() == 16
        assert poly.bbox() == BBox(1, 2, 5, 6)


# ----------------------------------------------------------------------
# Polygon
# ----------------------------------------------------------------------
class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_zero_area_raises(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_winding_normalised(self):
        clockwise = Polygon([Point(0, 0), Point(0, 1), Point(1, 1),
                             Point(1, 0)])
        counter = Polygon([Point(0, 0), Point(1, 0), Point(1, 1),
                           Point(0, 1)])
        assert clockwise.equals(counter)

    def test_duplicate_vertices_dropped(self):
        poly = Polygon([Point(0, 0), Point(0, 0), Point(1, 0),
                        Point(1, 1), Point(0, 0)])
        assert len(poly) == 3

    def test_area_and_perimeter(self):
        square = Polygon.rectangle(0, 0, 2, 2)
        assert square.area() == 4
        assert square.perimeter() == 8

    def test_centroid_of_square(self):
        assert Polygon.rectangle(0, 0, 2, 2).centroid() == Point(1, 1)

    def test_is_convex(self):
        assert Polygon.rectangle(0, 0, 1, 1).is_convex()
        l_shape = Polygon([Point(0, 0), Point(2, 0), Point(2, 1),
                           Point(1, 1), Point(1, 2), Point(0, 2)])
        assert not l_shape.is_convex()

    def test_contains_point(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        assert square.contains_point(Point(5, 5))
        assert square.contains_point(Point(0, 5))  # boundary
        assert not square.contains_point(Point(-1, 5))

    def test_interior_contains_excludes_boundary(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        assert square.interior_contains_point(Point(5, 5))
        assert not square.interior_contains_point(Point(0, 5))

    def test_nonconvex_containment(self):
        l_shape = Polygon([Point(0, 0), Point(4, 0), Point(4, 1),
                           Point(1, 1), Point(1, 4), Point(0, 4)])
        assert l_shape.contains_point(Point(0.5, 3))
        assert not l_shape.contains_point(Point(2, 2))

    def test_representative_point_inside(self):
        l_shape = Polygon([Point(0, 0), Point(4, 0), Point(4, 1),
                           Point(1, 1), Point(1, 4), Point(0, 4)])
        rep = l_shape.representative_point()
        assert l_shape.interior_contains_point(rep)

    def test_contains_polygon(self):
        outer = Polygon.rectangle(0, 0, 10, 10)
        inner = Polygon.rectangle(2, 2, 4, 4)
        assert outer.contains_polygon(inner)
        assert not inner.contains_polygon(outer)

    def test_contains_polygon_nonconvex_edge_exit(self):
        # Vertices inside but an edge leaves the L-shape's notch.
        l_shape = Polygon([Point(0, 0), Point(4, 0), Point(4, 1),
                           Point(1, 1), Point(1, 4), Point(0, 4)])
        crossing = Polygon([Point(0.5, 0.5), Point(3.5, 0.5),
                            Point(3.5, 0.8), Point(0.5, 3.5)])
        assert not l_shape.contains_polygon(crossing)

    def test_translated(self):
        square = Polygon.rectangle(0, 0, 1, 1).translated(5, 5)
        assert square.bbox() == BBox(5, 5, 6, 6)

    def test_scaled_about_centroid(self):
        square = Polygon.rectangle(0, 0, 2, 2).scaled_about_centroid(0.5)
        assert math.isclose(square.area(), 1.0)
        assert square.centroid() == Point(1, 1)

    def test_scale_nonpositive_raises(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(0, 0, 1, 1).scaled_about_centroid(0)

    def test_equality_rotation_invariant(self):
        a = Polygon([Point(0, 0), Point(1, 0), Point(1, 1)])
        b = Polygon([Point(1, 0), Point(1, 1), Point(0, 0)])
        assert a == b
        assert hash(a) == hash(b)


# ----------------------------------------------------------------------
# convex hull / clipping
# ----------------------------------------------------------------------
class TestConvexHull:
    def test_square_with_interior_point(self):
        hull = convex_hull([Point(0, 0), Point(4, 0), Point(4, 4),
                            Point(0, 4), Point(2, 2)])
        assert len(hull) == 4

    def test_collinear_raises(self):
        with pytest.raises(ValueError):
            convex_hull([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_too_few_raises(self):
        with pytest.raises(ValueError):
            convex_hull([Point(0, 0), Point(1, 0)])


class TestClipping:
    def test_full_overlap(self):
        subject = Polygon.rectangle(0, 0, 2, 2)
        clip = Polygon.rectangle(-1, -1, 3, 3)
        clipped = polygon_clip_convex(subject, clip)
        assert clipped is not None
        assert math.isclose(clipped.area(), 4.0)

    def test_partial_overlap(self):
        subject = Polygon.rectangle(0, 0, 4, 4)
        clip = Polygon.rectangle(2, 2, 6, 6)
        assert math.isclose(intersection_area(subject, clip), 4.0)

    def test_disjoint_returns_none(self):
        subject = Polygon.rectangle(0, 0, 1, 1)
        clip = Polygon.rectangle(5, 5, 6, 6)
        assert polygon_clip_convex(subject, clip) is None

    def test_touching_edge_is_degenerate(self):
        subject = Polygon.rectangle(0, 0, 1, 1)
        clip = Polygon.rectangle(1, 0, 2, 1)
        assert polygon_clip_convex(subject, clip) is None

    def test_nonconvex_clip_raises(self):
        l_shape = Polygon([Point(0, 0), Point(4, 0), Point(4, 1),
                           Point(1, 1), Point(1, 4), Point(0, 4)])
        with pytest.raises(ValueError):
            polygon_clip_convex(Polygon.rectangle(0, 0, 1, 1), l_shape)


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
rect_strategy = st.builds(
    lambda x, y, w, h: Polygon.rectangle(x, y, x + w, y + h),
    st.floats(-100, 100), st.floats(-100, 100),
    st.floats(1, 50), st.floats(1, 50))


@given(rect_strategy)
def test_property_area_positive(poly):
    assert poly.area() > 0


@given(rect_strategy)
def test_property_centroid_inside_convex(poly):
    assert poly.contains_point(poly.centroid())


@given(rect_strategy, st.floats(-50, 50), st.floats(-50, 50))
def test_property_translation_preserves_area(poly, dx, dy):
    assert math.isclose(poly.area(), poly.translated(dx, dy).area(),
                        rel_tol=1e-9)


@given(rect_strategy, rect_strategy)
def test_property_intersection_area_bounded(a, b):
    area = intersection_area(a, b)
    assert -1e-9 <= area <= min(a.area(), b.area()) + 1e-6


coord = st.integers(-1000, 1000).map(lambda v: v / 10.0)


@given(st.lists(st.tuples(coord, coord), min_size=3, max_size=30,
                unique=True))
def test_property_hull_contains_all_points(coords):
    points = [Point(x, y) for x, y in coords]
    try:
        hull = convex_hull(points)
    except ValueError:
        return  # collinear inputs are rejected by contract
    hull_poly = Polygon(hull)
    for point in points:
        assert hull_poly.contains_point(point, tol=1e-6)
