"""Unit and property tests for the eight topological relations."""

import pytest
from hypothesis import given, strategies as st

from repro.spatial.geometry import BBox, Point, Polygon
from repro.spatial.topology import (
    HIERARCHY_RELATIONS,
    JOINT_EDGE_RELATIONS,
    TopologicalRelation as R,
    relate,
    relate_boxes,
)


# ----------------------------------------------------------------------
# relation algebraic structure
# ----------------------------------------------------------------------
class TestRelationEnum:
    def test_eight_relations(self):
        assert len(list(R)) == 8

    def test_converse_involution(self):
        for relation in R:
            assert relation.converse().converse() is relation

    def test_symmetric_relations(self):
        symmetric = {r for r in R if r.is_symmetric}
        assert symmetric == {R.DISJOINT, R.MEET, R.OVERLAP, R.EQUAL}

    def test_containment_converses(self):
        assert R.CONTAINS.converse() is R.INSIDE
        assert R.COVERS.converse() is R.COVERED_BY

    def test_joint_edge_relations_exclude_disjoint_meet(self):
        assert R.DISJOINT not in JOINT_EDGE_RELATIONS
        assert R.MEET not in JOINT_EDGE_RELATIONS
        assert len(JOINT_EDGE_RELATIONS) == 6

    def test_hierarchy_relations(self):
        assert HIERARCHY_RELATIONS == {R.CONTAINS, R.COVERS}

    def test_interior_intersection_semantics(self):
        assert not R.DISJOINT.implies_interior_intersection
        assert not R.MEET.implies_interior_intersection
        assert R.MEET.implies_intersection
        assert all(r.implies_interior_intersection
                   for r in JOINT_EDGE_RELATIONS)

    def test_rcc8_names(self):
        assert R.DISJOINT.rcc8_name == "DC"
        assert R.MEET.rcc8_name == "EC"
        assert R.CONTAINS.rcc8_name == "NTPPi"
        assert R.COVERED_BY.rcc8_name == "TPP"


# ----------------------------------------------------------------------
# relate() on canonical configurations
# ----------------------------------------------------------------------
BIG = Polygon.rectangle(0, 0, 10, 10)


class TestRelate:
    def test_disjoint(self):
        assert relate(BIG, Polygon.rectangle(20, 20, 30, 30)) is R.DISJOINT

    def test_meet_shared_edge(self):
        assert relate(BIG, Polygon.rectangle(10, 0, 20, 10)) is R.MEET

    def test_meet_shared_corner(self):
        assert relate(BIG, Polygon.rectangle(10, 10, 20, 20)) is R.MEET

    def test_overlap_proper_crossing(self):
        assert relate(BIG, Polygon.rectangle(5, 5, 15, 15)) is R.OVERLAP

    def test_overlap_shared_strip_no_crossing(self):
        # Boundaries only touch collinearly, yet interiors overlap.
        a = Polygon.rectangle(0, 0, 2, 1)
        b = Polygon.rectangle(1, 0, 3, 1)
        assert relate(a, b) is R.OVERLAP

    def test_contains_strict(self):
        assert relate(BIG, Polygon.rectangle(2, 2, 4, 4)) is R.CONTAINS

    def test_inside_strict(self):
        assert relate(Polygon.rectangle(2, 2, 4, 4), BIG) is R.INSIDE

    def test_covers_boundary_touch(self):
        assert relate(BIG, Polygon.rectangle(0, 0, 5, 10)) is R.COVERS

    def test_covered_by(self):
        assert relate(Polygon.rectangle(0, 0, 5, 10), BIG) is R.COVERED_BY

    def test_equal(self):
        assert relate(BIG, Polygon.rectangle(0, 0, 10, 10)) is R.EQUAL

    def test_equal_different_vertex_sets(self):
        redundant = Polygon([Point(0, 0), Point(5, 0), Point(10, 0),
                             Point(10, 10), Point(0, 10)])
        assert relate(BIG, redundant) is R.EQUAL

    def test_nonconvex_overlap(self):
        l_shape = Polygon([Point(0, 0), Point(4, 0), Point(4, 1),
                           Point(1, 1), Point(1, 4), Point(0, 4)])
        square = Polygon.rectangle(0.5, 0.5, 2, 2)
        assert relate(l_shape, square) is R.OVERLAP

    def test_nonconvex_contains(self):
        l_shape = Polygon([Point(0, 0), Point(4, 0), Point(4, 1),
                           Point(1, 1), Point(1, 4), Point(0, 4)])
        small = Polygon.rectangle(0.2, 0.2, 0.8, 0.8)
        assert relate(l_shape, small) is R.CONTAINS


# ----------------------------------------------------------------------
# relate_boxes fast path
# ----------------------------------------------------------------------
class TestRelateBoxes:
    CASES = [
        (BBox(0, 0, 10, 10), BBox(20, 0, 30, 10), R.DISJOINT),
        (BBox(0, 0, 10, 10), BBox(10, 0, 20, 10), R.MEET),
        (BBox(0, 0, 10, 10), BBox(5, 5, 15, 15), R.OVERLAP),
        (BBox(0, 0, 10, 10), BBox(2, 2, 4, 4), R.CONTAINS),
        (BBox(2, 2, 4, 4), BBox(0, 0, 10, 10), R.INSIDE),
        (BBox(0, 0, 10, 10), BBox(0, 0, 5, 10), R.COVERS),
        (BBox(0, 0, 5, 10), BBox(0, 0, 10, 10), R.COVERED_BY),
        (BBox(0, 0, 10, 10), BBox(0, 0, 10, 10), R.EQUAL),
    ]

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_case(self, a, b, expected):
        assert relate_boxes(a, b) is expected

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_agrees_with_polygon_relate(self, a, b, expected):
        assert relate(a.to_polygon(), b.to_polygon()) is expected


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
box_strategy = st.builds(
    lambda x, y, w, h: BBox(x, y, x + w, y + h),
    st.integers(-20, 20), st.integers(-20, 20),
    st.integers(1, 15), st.integers(1, 15))


@given(box_strategy, box_strategy)
def test_property_converse_symmetry(a, b):
    """relate(a, b) is always the converse of relate(b, a)."""
    assert relate_boxes(a, b) is relate_boxes(b, a).converse()


@given(box_strategy, box_strategy)
def test_property_polygon_box_agreement(a, b):
    """The polygon and box code paths must agree."""
    assert relate(a.to_polygon(), b.to_polygon()) is relate_boxes(a, b)


@given(box_strategy)
def test_property_self_relation_is_equal(a):
    assert relate_boxes(a, a) is R.EQUAL
    assert relate(a.to_polygon(), a.to_polygon()) is R.EQUAL


@given(box_strategy, box_strategy)
def test_property_disjoint_iff_no_bbox_intersection(a, b):
    relation = relate_boxes(a, b)
    if relation is R.DISJOINT:
        assert not a.to_polygon().contains_point(b.center()) \
            or not b.to_polygon().contains_point(a.center())
    if relation.implies_intersection:
        assert a.intersects(b)
