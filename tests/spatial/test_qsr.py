"""Tests for the RCC-8 relation algebra and constraint networks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.geometry import BBox
from repro.spatial.qsr import (
    InconsistentNetworkError,
    RelationAlgebra,
    RelationNetwork,
    UNIVERSAL,
    rcc8_algebra,
)
from repro.spatial.topology import TopologicalRelation as R, relate_boxes

ALGEBRA = rcc8_algebra()


# ----------------------------------------------------------------------
# algebra axioms
# ----------------------------------------------------------------------
class TestAlgebra:
    def test_singleton(self):
        assert rcc8_algebra() is rcc8_algebra()

    def test_composition_table_complete(self):
        for r1 in R:
            for r2 in R:
                cell = ALGEBRA.compose(r1, r2)
                assert cell, "empty cell for {}∘{}".format(r1, r2)

    def test_identity_left(self):
        for r in R:
            assert ALGEBRA.compose(R.EQUAL, r) == frozenset([r])

    def test_identity_right(self):
        for r in R:
            assert ALGEBRA.compose(r, R.EQUAL) == frozenset([r])

    def test_converse_of_composition(self):
        """conv(r1 ∘ r2) == conv(r2) ∘ conv(r1) — table sanity."""
        for r1 in R:
            for r2 in R:
                left = ALGEBRA.converse_set(ALGEBRA.compose(r1, r2))
                right = ALGEBRA.compose(r2.converse(), r1.converse())
                assert left == right, (r1, r2)

    def test_containment_transitive(self):
        assert ALGEBRA.compose(R.INSIDE, R.INSIDE) == frozenset([R.INSIDE])
        assert ALGEBRA.compose(R.CONTAINS, R.CONTAINS) \
            == frozenset([R.CONTAINS])

    def test_covered_chain_composes_to_proper_parts(self):
        cell = ALGEBRA.compose(R.COVERED_BY, R.COVERED_BY)
        assert cell == frozenset([R.COVERED_BY, R.INSIDE])

    def test_disjoint_of_part(self):
        # a inside b, b disjoint c → a disjoint c.
        assert ALGEBRA.compose(R.INSIDE, R.DISJOINT) \
            == frozenset([R.DISJOINT])

    def test_compose_sets_union(self):
        combined = ALGEBRA.compose_sets([R.INSIDE, R.EQUAL], [R.DISJOINT])
        assert combined == frozenset([R.DISJOINT])

    def test_is_consistent_triple(self):
        assert ALGEBRA.is_consistent_triple(R.INSIDE, R.INSIDE, R.INSIDE)
        assert not ALGEBRA.is_consistent_triple(R.INSIDE, R.INSIDE,
                                                R.CONTAINS)


# ----------------------------------------------------------------------
# constraint network
# ----------------------------------------------------------------------
class TestRelationNetwork:
    def test_unknown_pair_is_universal(self):
        network = RelationNetwork()
        network.add_node("a")
        network.add_node("b")
        assert network.get("a", "b") == UNIVERSAL

    def test_self_relation_equal(self):
        network = RelationNetwork()
        network.add_node("a")
        assert network.get("a", "a") == frozenset([R.EQUAL])

    def test_constrain_maintains_converse(self):
        network = RelationNetwork()
        network.constrain("a", "b", [R.INSIDE])
        assert network.get("b", "a") == frozenset([R.CONTAINS])

    def test_repeated_constraints_intersect(self):
        network = RelationNetwork()
        network.constrain("a", "b", [R.INSIDE, R.COVERED_BY])
        network.constrain("a", "b", [R.INSIDE, R.OVERLAP])
        assert network.get("a", "b") == frozenset([R.INSIDE])

    def test_contradiction_raises(self):
        network = RelationNetwork()
        network.constrain("a", "b", [R.INSIDE])
        with pytest.raises(InconsistentNetworkError):
            network.constrain("a", "b", [R.DISJOINT])

    def test_empty_constraint_raises(self):
        network = RelationNetwork()
        with pytest.raises(InconsistentNetworkError):
            network.constrain("a", "b", [])

    def test_transitive_containment_inferred(self):
        network = RelationNetwork()
        network.constrain("roi", "room", [R.INSIDE])
        network.constrain("room", "floor", [R.INSIDE])
        assert network.propagate()
        assert network.definite("roi", "floor") is R.INSIDE

    def test_part_of_disjoint_regions(self):
        network = RelationNetwork()
        network.constrain("a", "b", [R.INSIDE])
        network.constrain("b", "c", [R.DISJOINT])
        assert network.propagate()
        assert network.definite("a", "c") is R.DISJOINT

    def test_inconsistent_network_detected(self):
        network = RelationNetwork()
        network.constrain("a", "b", [R.INSIDE])
        network.constrain("b", "c", [R.INSIDE])
        network.constrain("a", "c", [R.DISJOINT])
        assert not network.propagate()

    def test_definite_none_when_ambiguous(self):
        network = RelationNetwork()
        network.constrain("a", "b", [R.INSIDE, R.OVERLAP])
        assert network.definite("a", "b") is None

    def test_is_definite(self):
        network = RelationNetwork()
        network.constrain("a", "b", [R.INSIDE])
        assert network.is_definite()
        network.constrain("a", "c", [R.INSIDE, R.OVERLAP])
        assert not network.is_definite()

    def test_nodes_order(self):
        network = RelationNetwork()
        network.constrain("x", "y", [R.MEET])
        network.add_node("z")
        assert network.nodes == ("x", "y", "z")


# ----------------------------------------------------------------------
# the composition table is sound w.r.t. actual geometry
# ----------------------------------------------------------------------
box_strategy = st.builds(
    lambda x, y, w, h: BBox(x, y, x + w, y + h),
    st.integers(-10, 10), st.integers(-10, 10),
    st.integers(1, 10), st.integers(1, 10))


@settings(max_examples=300)
@given(box_strategy, box_strategy, box_strategy)
def test_property_composition_table_sound(a, b, c):
    """For real regions, relate(a,c) ∈ compose(relate(a,b), relate(b,c)).

    This validates the hand-encoded RCC-8 table against geometry: any
    unsound cell would eventually produce a counterexample.
    """
    r_ab = relate_boxes(a, b)
    r_bc = relate_boxes(b, c)
    r_ac = relate_boxes(a, c)
    assert r_ac in ALGEBRA.compose(r_ab, r_bc), (r_ab, r_bc, r_ac)
