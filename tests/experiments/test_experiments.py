"""Tests that every paper artefact reproduction reports what the paper
claims (small-scale where a corpus is involved)."""

import pytest

from repro.experiments import (
    ablations,
    dataset_stats,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    table1,
)
from repro.experiments.runner import EXPERIMENTS, render_report, run_all
from repro.experiments.textable import render_bar_chart, render_table


class TestTable1:
    def test_all_checks_pass(self):
        result = table1.run()
        assert result["all_passed"]

    def test_render(self):
        text = table1.render(table1.run())
        assert "N-intersection" in text
        assert "FAIL" not in text


class TestFig1:
    def test_claims(self):
        result = fig1.run()
        assert result["hall5_claim_holds"]
        assert result["salle_des_etats_rule_holds"]
        assert result["one_way_pairs"] == [["4", "2"]]

    def test_render(self):
        assert "5a, 5b, 5c" in fig1.render(fig1.run())


class TestFig2:
    def test_hierarchy_properties(self, louvre_space):
        result = fig2.run(louvre_space)
        assert result["has_core_roles"]
        assert result["validation_problems"] == []
        assert result["mona_lisa_wing"] == "wing:denon"
        assert result["roi_floor_relations"] == ["insideOf"]
        assert result["room_orphans"] == 0

    def test_render(self, louvre_space):
        text = fig2.render(fig2.run(louvre_space))
        assert "louvre-museum" in text


class TestFig3:
    def test_series_shape(self, louvre_space):
        result = fig3.run(louvre_space, scale=0.02)
        assert result["ground_floor_zones"] == 11
        assert len(result["series"]) == 11
        shares = sum(item["share"] for item in result["series"])
        assert shares == pytest.approx(1.0)

    def test_render(self, louvre_space):
        text = fig3.render(fig3.run(louvre_space, scale=0.02))
        assert "zone60861" in text


class TestFig4:
    def test_coverage_claims(self, louvre_space):
        result = fig4.run(louvre_space)
        assert result["floors_fully_covered"]
        assert not result["rois_fully_cover_rooms"]
        assert result["figure_rooms"]

    def test_render(self, louvre_space):
        assert "coverage" in fig4.render(fig4.run(louvre_space))


class TestFig5:
    def test_overlapping_episodes(self):
        result = fig5.run()
        assert result["episodes_overlap"]
        assert result["labels_at_shop_time"] == ["buy souvenir",
                                                 "exit museum"]

    def test_render(self):
        assert "exit museum" in fig5.render(fig5.run())


class TestFig6:
    def test_inference(self, louvre_space):
        result = fig6.run(louvre_space)
        assert result["zone_p_is_inferred"]
        assert result["inferred_transition"] == "checkpoint002"
        assert result["inferred_interval"] == ("17:30:21", "17:31:42")
        assert result["confidence"] == 1.0

    def test_render(self, louvre_space):
        assert "zone60888" in fig6.render(fig6.run(louvre_space))


class TestDatasetStats:
    def test_small_scale_consistency(self, louvre_space):
        result = dataset_stats.run(louvre_space, scale=0.02)
        measured = result["measured"]
        # Internal arithmetic invariants hold at any scale.
        assert measured["zone_transitions"] \
            == measured["zone_detections"] - measured["visits"]
        assert measured["repeat_visits"] \
            == measured["visits"] - measured["visitors"]
        assert measured["max_visit_duration_s"] == 27697
        assert measured["max_detection_duration_s"] == 20360

    def test_render(self, louvre_space):
        text = dataset_stats.render(
            dataset_stats.run(louvre_space, scale=0.02))
        assert "statistic" in text


class TestAblations:
    def test_directed(self, louvre_space):
        result = ablations.ablate_directed(louvre_space)
        assert result["wrongly_admitted_count"] >= 2

    def test_static_hierarchy(self, louvre_space):
        result = ablations.ablate_static_hierarchy(louvre_space,
                                                   scale=0.01)
        assert result["static_entry_loss_share"] == 0.0
        assert result["adhoc_entry_loss_share"] \
            > result["static_entry_loss_share"]

    def test_exclusive_episodes(self):
        result = ablations.ablate_exclusive_episodes()
        assert result["exclusivity_loses_multilabel"]

    def test_render(self, louvre_space):
        text = ablations.render(ablations.run(louvre_space))
        assert "A1" in text and "A3" in text


class TestRunner:
    def test_registry_covers_all_artefacts(self):
        ids = [exp_id for exp_id, _, _ in EXPERIMENTS]
        assert ids == ["T1", "F1", "F2", "F3", "F4", "F5", "F6",
                       "S41", "ABL", "ENG", "QRY"]

    def test_run_all_small(self):
        results = run_all(scale=0.02)
        assert set(results) == {exp_id for exp_id, _, _ in EXPERIMENTS}
        report = render_report(results)
        for exp_id, title, _ in EXPERIMENTS:
            assert exp_id in report


class TestTextable:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [(1, 2), (33, 44)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_bar_chart(self):
        chart = render_bar_chart(["x", "yy"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_render_bar_chart_zero(self):
        chart = render_bar_chart(["x"], [0.0])
        assert "█" not in chart
