"""Tests for the positioning-accuracy comparison experiment."""

from repro.experiments import positioning_accuracy


def test_filters_improve_on_raw():
    result = positioning_accuracy.run(seed=20170119)
    assert result["fix_count"] > 40
    assert result["ekf_beats_raw"]
    assert result["filters_beat_raw_median"]


def test_error_stats_ordered():
    result = positioning_accuracy.run(seed=7)
    for name in ("raw", "ekf", "pf"):
        stats = result["error_stats"][name]
        assert 0 < stats["median"] <= stats["p90"]


def test_zone_accuracy_bounds():
    result = positioning_accuracy.run(seed=3)
    for accuracy in result["zone_accuracy"].values():
        assert 0.0 <= accuracy <= 1.0


def test_render():
    result = positioning_accuracy.run(seed=1)
    text = positioning_accuracy.render(result)
    assert "estimator" in text
    assert "ekf" in text
