"""Shared fixtures for the test suite.

The Louvre space model and a small synthetic corpus are expensive to
build, so they are session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.core import TrajectoryBuilder
from repro.core.annotations import AnnotationSet
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.louvre.dataset import DatasetParameters, LouvreDatasetGenerator
from repro.louvre.space import LouvreSpace


@pytest.fixture(scope="session")
def louvre_space() -> LouvreSpace:
    """The full Louvre layered indoor graph (read-only)."""
    return LouvreSpace()


@pytest.fixture(scope="session")
def small_corpus(louvre_space):
    """A 2%-scale corpus: (visits, detection records)."""
    generator = LouvreDatasetGenerator(
        louvre_space, DatasetParameters().scaled(0.02))
    visits = generator.generate()
    records = generator.detection_records(visits)
    return visits, records


@pytest.fixture(scope="session")
def small_trajectories(louvre_space, small_corpus):
    """The small corpus built into semantic trajectories."""
    _, records = small_corpus
    builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
    trajectories, _ = builder.build_all(records)
    return trajectories


def make_trajectory(mo_id: str = "mo-1",
                    states=("a", "b", "c"),
                    start: float = 1000.0,
                    dwell: float = 100.0,
                    gap: float = 10.0,
                    annotations: AnnotationSet = None
                    ) -> SemanticTrajectory:
    """Build a simple linear test trajectory a→b→c..."""
    entries = []
    t = start
    previous = None
    for state in states:
        transition = None if previous is None \
            else "door-{}-{}".format(previous, state)
        entries.append(TraceEntry(transition, state, t, t + dwell))
        t += dwell + gap
        previous = state
    return SemanticTrajectory(
        mo_id, Trace(entries),
        annotations if annotations is not None
        else AnnotationSet.goals("visit"))
