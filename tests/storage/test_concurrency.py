"""Concurrent read + single-writer ingestion on the store.

The service layer ingests via a background build job while HTTP
worker threads query the same :class:`TrajectoryStore`.  Without the
read-write lock, a posting-list copy racing a posting-list ``add``
dies with ``RuntimeError: set changed size during iteration``, and an
iteration racing ``extend`` can observe half a batch.  These tests
hammer exactly those interleavings.
"""

import threading
import time

import pytest

from repro.core.annotations import AnnotationSet
from repro.storage.locks import ReadWriteLock
from repro.storage.query import Query
from repro.storage.store import TrajectoryStore
from tests.conftest import make_trajectory

STATES = ("a", "b", "c", "d")


def _batch(index, size=20):
    return [make_trajectory(
        mo_id="mo{}".format(index * size + j),
        states=STATES[(index + j) % 3:][:2] or ("a",),
        start=1000.0 * index + j,
        annotations=AnnotationSet.goals("visit"))
        for j in range(size)]


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        held = threading.Event()
        release = threading.Event()

        def reader():
            with lock.read_locked():
                held.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=reader)
        thread.start()
        assert held.wait(timeout=5)
        # a second reader gets in while the first still holds
        acquired = []
        with lock.read_locked():
            acquired.append(True)
        release.set()
        thread.join()
        assert acquired == [True]

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        in_write = threading.Event()
        done_write = threading.Event()

        def writer():
            with lock.write_locked():
                in_write.set()
                time.sleep(0.05)
                order.append("write")
            done_write.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert in_write.wait(timeout=5)
        with lock.read_locked():
            order.append("read")
        thread.join()
        assert order == ["write", "read"]

    def test_writer_preference_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_waiting = threading.Event()
        wrote = threading.Event()

        def writer():
            writer_waiting.set()
            with lock.write_locked():
                wrote.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert writer_waiting.wait(timeout=5)
        time.sleep(0.05)  # let the writer reach its wait()
        # a new reader must now queue behind the waiting writer
        reader_got_in = threading.Event()

        def late_reader():
            with lock.read_locked():
                reader_got_in.set()

        late = threading.Thread(target=late_reader)
        late.start()
        time.sleep(0.05)
        assert not reader_got_in.is_set()
        assert not wrote.is_set()
        lock.release_read()
        thread.join(timeout=5)
        late.join(timeout=5)
        assert wrote.is_set() and reader_got_in.is_set()


class TestConcurrentStore:
    def test_single_writer_many_readers_stress(self):
        """Queries hammering every index while a writer ingests."""
        store = TrajectoryStore()
        store.extend(_batch(0))
        stop = threading.Event()
        errors = []

        def writer():
            try:
                for index in range(1, 40):
                    store.extend(_batch(index))
            except Exception as error:  # pragma: no cover
                errors.append(error)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    # posting-list copies racing posting-list adds
                    ids = store.ids_visiting_state("a")
                    assert all(isinstance(i, int) for i in ids)
                    # a full planned query (plan + fetch + residual)
                    hits = Query(store).visiting_state("b") \
                        .min_entries(1).execute().to_list()
                    assert all(h.trajectory.trace.visits_state("b")
                               for h in hits)
                    # interval-index rebuild racing invalidation
                    store.ids_active_between(0.0, 1e9)
                    store.time_span()
                    store.state_cardinalities()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread = threading.Thread(target=writer)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        stop.set()
        for thread in readers:
            thread.join(timeout=60)
        assert not errors, errors[:3]
        assert len(store) == 40 * 20

    def test_iteration_snapshots_against_extend(self):
        """An in-flight scan never sees documents appended after it
        began (the iteration-during-extend hazard)."""
        store = TrajectoryStore()
        store.extend(_batch(0, size=50))
        started = len(store)

        iterator = iter(store)
        first = next(iterator)  # snapshot taken
        store.extend(_batch(1, size=50))

        remaining = sum(1 for _ in iterator)
        assert 1 + remaining == started
        assert first.mo_id == "mo0"
        # a fresh iteration sees everything
        assert sum(1 for _ in store) == 100

    def test_reads_see_whole_batches_eventually(self):
        """After the writer finishes, every index agrees."""
        store = TrajectoryStore()

        def writer():
            for index in range(10):
                store.extend(_batch(index, size=10))

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=60)
        assert len(store) == 100
        assert len(store.all_ids()) == 100
        assert Query(store).visiting_state("a").count() \
            == len(store.ids_visiting_state("a"))
        assert len(store.moving_objects()) == 100

    def test_concurrent_temporal_queries_rebuild_once_each(self):
        """Interval-index lazy rebuild is safe under reader races."""
        store = TrajectoryStore()
        store.extend(_batch(0, size=30))
        results = []
        errors = []

        def stab():
            try:
                results.append(store.states_occupied_at(1005.0))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=stab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert all(r == results[0] for r in results)
