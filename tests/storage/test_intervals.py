"""Tests for the centered interval tree."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.intervals import Interval, IntervalIndex


class TestInterval:
    def test_reversed_rejected(self):
        with pytest.raises(ValueError):
            Interval(10, 5, None)

    def test_contains_closed(self):
        interval = Interval(1, 5, "x")
        assert interval.contains(1) and interval.contains(5)
        assert not interval.contains(5.01)

    def test_overlaps_closed(self):
        interval = Interval(1, 5, "x")
        assert interval.overlaps(5, 10)
        assert interval.overlaps(0, 1)
        assert not interval.overlaps(6, 10)


class TestIndex:
    @pytest.fixture
    def index(self):
        return IntervalIndex([
            Interval(0, 10, "a"),
            Interval(5, 15, "b"),
            Interval(20, 30, "c"),
            Interval(25, 26, "d"),
        ])

    def test_len(self, index):
        assert len(index) == 4

    def test_stab(self, index):
        assert {iv.payload for iv in index.stab(7)} == {"a", "b"}
        assert {iv.payload for iv in index.stab(25.5)} == {"c", "d"}
        assert index.stab(17) == []

    def test_stab_boundary(self, index):
        assert {iv.payload for iv in index.stab(10)} == {"a", "b"}

    def test_overlapping(self, index):
        assert {iv.payload for iv in index.overlapping(8, 22)} \
            == {"a", "b", "c"}
        assert index.overlapping(16, 19) == []

    def test_overlapping_invalid(self, index):
        with pytest.raises(ValueError):
            index.overlapping(10, 5)

    def test_empty_index(self):
        index = IntervalIndex([])
        assert index.stab(5) == []
        assert index.overlapping(0, 100) == []

    def test_all_intervals(self, index):
        assert len(index.all_intervals()) == 4


intervals_strategy = st.lists(
    st.tuples(st.integers(0, 1000), st.integers(0, 500)),
    min_size=0, max_size=60)


@given(intervals_strategy, st.integers(-10, 1600))
def test_property_stab_matches_bruteforce(raw, t):
    intervals = [Interval(s, s + length, i)
                 for i, (s, length) in enumerate(raw)]
    index = IntervalIndex(intervals)
    expected = {iv.payload for iv in intervals if iv.contains(t)}
    assert {iv.payload for iv in index.stab(t)} == expected


@given(intervals_strategy, st.integers(-10, 1600), st.integers(0, 300))
def test_property_overlap_matches_bruteforce(raw, start, length):
    intervals = [Interval(s, s + ln, i)
                 for i, (s, ln) in enumerate(raw)]
    index = IntervalIndex(intervals)
    end = start + length
    expected = {iv.payload for iv in intervals if iv.overlaps(start, end)}
    assert {iv.payload
            for iv in index.overlapping(start, end)} == expected
