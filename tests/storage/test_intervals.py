"""Tests for the centered interval tree."""

import pytest
from hypothesis import given, strategies as st

from repro.storage.intervals import Interval, IntervalIndex


class TestInterval:
    def test_reversed_rejected(self):
        with pytest.raises(ValueError):
            Interval(10, 5, None)

    def test_contains_closed(self):
        interval = Interval(1, 5, "x")
        assert interval.contains(1) and interval.contains(5)
        assert not interval.contains(5.01)

    def test_overlaps_closed(self):
        interval = Interval(1, 5, "x")
        assert interval.overlaps(5, 10)
        assert interval.overlaps(0, 1)
        assert not interval.overlaps(6, 10)


class TestIndex:
    @pytest.fixture
    def index(self):
        return IntervalIndex([
            Interval(0, 10, "a"),
            Interval(5, 15, "b"),
            Interval(20, 30, "c"),
            Interval(25, 26, "d"),
        ])

    def test_len(self, index):
        assert len(index) == 4

    def test_stab(self, index):
        assert {iv.payload for iv in index.stab(7)} == {"a", "b"}
        assert {iv.payload for iv in index.stab(25.5)} == {"c", "d"}
        assert index.stab(17) == []

    def test_stab_boundary(self, index):
        assert {iv.payload for iv in index.stab(10)} == {"a", "b"}

    def test_overlapping(self, index):
        assert {iv.payload for iv in index.overlapping(8, 22)} \
            == {"a", "b", "c"}
        assert index.overlapping(16, 19) == []

    def test_overlapping_invalid(self, index):
        with pytest.raises(ValueError):
            index.overlapping(10, 5)

    def test_empty_index(self):
        index = IntervalIndex([])
        assert index.stab(5) == []
        assert index.overlapping(0, 100) == []

    def test_all_intervals(self, index):
        assert len(index.all_intervals()) == 4


intervals_strategy = st.lists(
    st.tuples(st.integers(0, 1000), st.integers(0, 500)),
    min_size=0, max_size=60)


@given(intervals_strategy, st.integers(-10, 1600))
def test_property_stab_matches_bruteforce(raw, t):
    intervals = [Interval(s, s + length, i)
                 for i, (s, length) in enumerate(raw)]
    index = IntervalIndex(intervals)
    expected = {iv.payload for iv in intervals if iv.contains(t)}
    assert {iv.payload for iv in index.stab(t)} == expected


@given(intervals_strategy, st.integers(-10, 1600), st.integers(0, 300))
def test_property_overlap_matches_bruteforce(raw, start, length):
    intervals = [Interval(s, s + ln, i)
                 for i, (s, ln) in enumerate(raw)]
    index = IntervalIndex(intervals)
    end = start + length
    expected = {iv.payload for iv in intervals if iv.overlaps(start, end)}
    assert {iv.payload
            for iv in index.overlapping(start, end)} == expected


@given(intervals_strategy)
def test_property_build_is_deterministic(raw):
    """Two builds over the same input yield identical query results,
    including result order (the sorted-once build partitions stably)."""
    intervals = [Interval(s, s + length, i)
                 for i, (s, length) in enumerate(raw)]
    first = IntervalIndex(intervals)
    second = IntervalIndex(intervals)
    assert [iv.payload for iv in first.stab(50)] \
        == [iv.payload for iv in second.stab(50)]
    assert [iv.payload for iv in first.overlapping(10, 200)] \
        == [iv.payload for iv in second.overlapping(10, 200)]
    assert sorted(iv.payload for iv in first.all_intervals()) \
        == list(range(len(intervals)))


def test_deep_unbalanced_tree_iterative_walk():
    """A heavily skewed interval set must not hit recursion limits in
    overlap collection (the walk is iterative)."""
    intervals = [Interval(i, i + 0.5, i) for i in range(5000)]
    index = IntervalIndex(intervals)
    hits = index.overlapping(0, 5001)
    assert len(hits) == 5000
