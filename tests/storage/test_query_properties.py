"""Property tests: index-backed queries must equal brute-force scans."""

from hypothesis import given, settings, strategies as st

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.storage.query import Query
from repro.storage.store import TrajectoryStore
from tests.conftest import make_trajectory

STATES = ["a", "b", "c", "d", "e"]
GOALS = ["visit", "buy", "study"]


@st.composite
def corpora(draw):
    count = draw(st.integers(1, 12))
    trajectories = []
    for index in range(count):
        states = draw(st.lists(st.sampled_from(STATES), min_size=1,
                               max_size=5))
        # Consecutive duplicate states are fine (event-style splits
        # need transitions=None, which make_trajectory only emits for
        # distinct states), so de-duplicate consecutively.
        deduped = [states[0]]
        for state in states[1:]:
            if state != deduped[-1]:
                deduped.append(state)
        goal = draw(st.sampled_from(GOALS))
        start = draw(st.integers(0, 10_000))
        trajectories.append(make_trajectory(
            mo_id="mo{}".format(index % 4),
            states=tuple(deduped),
            start=float(start),
            dwell=float(draw(st.integers(1, 100))),
            annotations=AnnotationSet.goals(goal)))
    return trajectories


@settings(max_examples=60, deadline=None)
@given(corpora(), st.sampled_from(STATES))
def test_property_state_query_matches_scan(corpus, state):
    store = TrajectoryStore()
    store.insert_many(corpus)
    hits = {h.doc_id
            for h in Query(store).visiting_state(state).execute()}
    expected = {i for i, t in enumerate(corpus)
                if t.trace.visits_state(state)}
    assert hits == expected


@settings(max_examples=60, deadline=None)
@given(corpora(), st.sampled_from(GOALS))
def test_property_annotation_query_matches_scan(corpus, goal):
    store = TrajectoryStore()
    store.insert_many(corpus)
    hits = {h.doc_id for h in Query(store)
            .with_annotation(AnnotationKind.GOAL, goal).execute()}
    expected = {i for i, t in enumerate(corpus)
                if t.annotations.has(AnnotationKind.GOAL, goal)}
    assert hits == expected


@settings(max_examples=60, deadline=None)
@given(corpora(), st.integers(0, 12_000), st.integers(0, 2_000))
def test_property_time_query_matches_scan(corpus, start, length):
    store = TrajectoryStore()
    store.insert_many(corpus)
    end = start + length
    hits = store.ids_active_between(float(start), float(end))
    expected = {
        i for i, t in enumerate(corpus)
        if any(e.overlaps_time(start, end) for e in t.trace)}
    assert hits == expected


@settings(max_examples=40, deadline=None)
@given(corpora(), st.sampled_from(STATES), st.sampled_from(GOALS))
def test_property_conjunction_is_intersection(corpus, state, goal):
    store = TrajectoryStore()
    store.insert_many(corpus)
    both = {h.doc_id for h in
            Query(store).visiting_state(state)
            .with_annotation(AnnotationKind.GOAL, goal).execute()}
    left = {h.doc_id
            for h in Query(store).visiting_state(state).execute()}
    right = {h.doc_id for h in Query(store)
             .with_annotation(AnnotationKind.GOAL, goal).execute()}
    assert both == left & right
