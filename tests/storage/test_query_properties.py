"""Property tests: index-backed queries must equal brute-force scans."""

from hypothesis import given, settings, strategies as st

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.storage import expr as E
from repro.storage.expr import expr_from_dict
from repro.storage.query import Query
from repro.storage.store import TrajectoryStore
from tests.conftest import make_trajectory

STATES = ["a", "b", "c", "d", "e"]
GOALS = ["visit", "buy", "study"]


@st.composite
def corpora(draw):
    count = draw(st.integers(1, 12))
    trajectories = []
    for index in range(count):
        states = draw(st.lists(st.sampled_from(STATES), min_size=1,
                               max_size=5))
        # Consecutive duplicate states are fine (event-style splits
        # need transitions=None, which make_trajectory only emits for
        # distinct states), so de-duplicate consecutively.
        deduped = [states[0]]
        for state in states[1:]:
            if state != deduped[-1]:
                deduped.append(state)
        goal = draw(st.sampled_from(GOALS))
        start = draw(st.integers(0, 10_000))
        trajectories.append(make_trajectory(
            mo_id="mo{}".format(index % 4),
            states=tuple(deduped),
            start=float(start),
            dwell=float(draw(st.integers(1, 100))),
            annotations=AnnotationSet.goals(goal)))
    return trajectories


@settings(max_examples=60, deadline=None)
@given(corpora(), st.sampled_from(STATES))
def test_property_state_query_matches_scan(corpus, state):
    store = TrajectoryStore()
    store.insert_many(corpus)
    hits = {h.doc_id
            for h in Query(store).visiting_state(state).execute()}
    expected = {i for i, t in enumerate(corpus)
                if t.trace.visits_state(state)}
    assert hits == expected


@settings(max_examples=60, deadline=None)
@given(corpora(), st.sampled_from(GOALS))
def test_property_annotation_query_matches_scan(corpus, goal):
    store = TrajectoryStore()
    store.insert_many(corpus)
    hits = {h.doc_id for h in Query(store)
            .with_annotation(AnnotationKind.GOAL, goal).execute()}
    expected = {i for i, t in enumerate(corpus)
                if t.annotations.has(AnnotationKind.GOAL, goal)}
    assert hits == expected


@settings(max_examples=60, deadline=None)
@given(corpora(), st.integers(0, 12_000), st.integers(0, 2_000))
def test_property_time_query_matches_scan(corpus, start, length):
    store = TrajectoryStore()
    store.insert_many(corpus)
    end = start + length
    hits = store.ids_active_between(float(start), float(end))
    expected = {
        i for i, t in enumerate(corpus)
        if any(e.overlaps_time(start, end) for e in t.trace)}
    assert hits == expected


@st.composite
def expressions(draw, depth=0):
    """Random expression trees over every typed predicate and
    combinator — the planner must agree with brute force on all of
    them (catches ``Or``/``Not`` distribution and ordering bugs)."""
    leaf_weight = 2 if depth < 3 else 10
    choice = draw(st.integers(0, leaf_weight + 2))
    if choice > leaf_weight:  # a combinator
        op = draw(st.sampled_from(["and", "or", "not"]))
        if op == "not":
            return E.Not(draw(expressions(depth=depth + 1)))
        children = draw(st.lists(expressions(depth=depth + 1),
                                 min_size=1, max_size=3))
        return (E.And if op == "and" else E.Or)(children)
    kind = draw(st.sampled_from(
        ["state", "goal", "mo", "window", "min_entries",
         "min_duration", "follows"]))
    if kind == "state":
        return E.state(draw(st.sampled_from(STATES + ["ghost"])))
    if kind == "goal":
        return E.goal(draw(st.sampled_from(GOALS)))
    if kind == "mo":
        return E.moving_object("mo{}".format(draw(st.integers(0, 4))))
    if kind == "window":
        start = draw(st.integers(0, 11_000))
        return E.time_window(float(start),
                             float(start + draw(st.integers(0, 2_000))))
    if kind == "min_entries":
        return E.min_entries(draw(st.integers(0, 6)))
    if kind == "min_duration":
        return E.min_duration(float(draw(st.integers(0, 600))))
    return E.follows(*draw(st.lists(st.sampled_from(STATES),
                                    min_size=1, max_size=3)))


@settings(max_examples=120, deadline=None)
@given(corpora(), expressions())
def test_property_planner_matches_brute_force(corpus, expression):
    """The planned execution of a random tree equals a full scan."""
    store = TrajectoryStore()
    store.insert_many(corpus)
    query = Query(store, expression)
    planned = {h.doc_id for h in query.execute()}
    brute = {doc_id for doc_id in store.all_ids()
             if expression.matches(store.get(doc_id))}
    assert planned == brute
    assert query.count() == len(brute)


@settings(max_examples=60, deadline=None)
@given(corpora(), expressions())
def test_property_serialization_preserves_results(corpus, expression):
    """to_dict/from_dict round-trips both the tree and its results."""
    store = TrajectoryStore()
    store.insert_many(corpus)
    query = Query(store, expression)
    restored = Query.from_dict(store, query.to_dict())
    assert restored.expression() == query.expression()
    assert [h.doc_id for h in restored.execute()] \
        == [h.doc_id for h in query.execute()]
    assert expr_from_dict(expression.to_dict()) == expression


@settings(max_examples=40, deadline=None)
@given(corpora(), st.sampled_from(STATES), st.sampled_from(GOALS))
def test_property_conjunction_is_intersection(corpus, state, goal):
    store = TrajectoryStore()
    store.insert_many(corpus)
    both = {h.doc_id for h in
            Query(store).visiting_state(state)
            .with_annotation(AnnotationKind.GOAL, goal).execute()}
    left = {h.doc_id
            for h in Query(store).visiting_state(state).execute()}
    right = {h.doc_id for h in Query(store)
             .with_annotation(AnnotationKind.GOAL, goal).execute()}
    assert both == left & right
