"""Tests for expression trees, the cost-based planner and ResultSet."""

import pytest

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.storage import expr as E
from repro.storage.expr import ExprSerializationError, expr_from_dict
from repro.storage.planner import (
    Difference,
    Filter,
    Intersect,
    IndexScan,
    Union,
    normalize,
    plan_expression,
)
from repro.storage.query import Query
from repro.storage.results import ResultSet
from repro.storage.store import TrajectoryStore
from tests.conftest import make_trajectory


@pytest.fixture
def store():
    store = TrajectoryStore()
    store.insert(make_trajectory(
        mo_id="m1", states=("a", "b"), start=0.0))
    store.insert(make_trajectory(
        mo_id="m2", states=("b", "c"), start=1000.0,
        annotations=AnnotationSet.goals("buy")))
    store.insert(make_trajectory(
        mo_id="m1", states=("a", "c"), start=5000.0))
    store.insert(make_trajectory(
        mo_id="m3", states=("d",), start=9000.0, dwell=10.0))
    return store


def ids(result):
    return sorted(h.doc_id for h in result)


class TestExpressions:
    def test_operators_build_trees(self):
        tree = (E.state("a") | E.state("b")) & ~E.goal("buy")
        assert isinstance(tree, E.And)
        assert isinstance(tree.children[0], E.Or)
        assert isinstance(tree.children[1], E.Not)

    def test_and_or_flatten(self):
        tree = E.state("a") & E.state("b") & E.state("c")
        assert len(tree.children) == 3
        tree = E.state("a") | (E.state("b") | E.state("c"))
        assert len(tree.children) == 3

    def test_double_negation_collapses(self):
        assert ~~E.state("a") == E.state("a")

    def test_matches_ground_truth(self, store):
        t = store.get(1)
        assert E.state("b").matches(t)
        assert not E.state("a").matches(t)
        assert E.annotation(AnnotationKind.GOAL, "buy").matches(t)
        assert E.moving_object("m2").matches(t)
        assert E.time_window(1000.0, 1001.0).matches(t)
        assert not E.time_window(0.0, 900.0).matches(t)
        assert E.min_entries(2).matches(t)
        assert E.follows("b", "c").matches(t)
        assert not E.follows("c", "b").matches(t)
        assert (~E.state("a")).matches(t)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            E.time_window(10.0, 0.0)

    def test_serialization_round_trip(self):
        tree = ((E.state("a") | E.goal("buy"))
                & ~E.moving_object("m1")
                & E.time_window(0.0, 50.0)
                & E.min_duration(5.0) & E.min_entries(2)
                & E.follows("a", "b"))
        assert expr_from_dict(tree.to_dict()) == tree

    def test_where_refuses_serialization(self):
        with pytest.raises(ExprSerializationError):
            E.where(lambda t: True).to_dict()

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            expr_from_dict({"op": "teleport"})


class TestNormalization:
    def test_de_morgan_and(self):
        out = normalize(~(E.state("a") & E.state("b")))
        assert isinstance(out, E.Or)
        assert all(isinstance(c, E.Not) for c in out.children)

    def test_de_morgan_or(self):
        out = normalize(~(E.state("a") | E.state("b")))
        assert isinstance(out, E.And)
        assert all(isinstance(c, E.Not) for c in out.children)

    def test_double_not_via_constructor(self):
        out = normalize(E.Not(E.Not(E.state("a"))))
        assert out == E.state("a")


class TestPlanner:
    def test_intersection_ordered_smallest_first(self, store):
        # 'd' has 1 posting, 'b' and goal:visit are larger.
        plan = plan_expression(
            store, E.state("b") & E.goal("visit") & E.state("d"))
        assert isinstance(plan.root, Intersect)
        estimates = [c.estimate for c in plan.root.children]
        assert estimates == sorted(estimates)
        assert plan.root.children[0].label == "state='d'"

    def test_explain_shows_selectivities(self, store):
        text = (Query(store).visiting_state("b")
                .with_annotation(AnnotationKind.GOAL, "visit")
                .explain())
        assert "intersect (smallest-first)" in text
        assert "index-scan state='b'  [est=2]" in text
        assert "index-only" in text

    def test_not_becomes_difference(self, store):
        plan = plan_expression(store, E.state("b") & ~E.state("c"))
        assert isinstance(plan.root, Difference)
        assert ids(plan.iter_results()) == [0]

    def test_bare_not_uses_full_scan_difference(self, store):
        plan = plan_expression(store, ~E.state("a"))
        assert isinstance(plan.root, Difference)
        assert ids(plan.iter_results()) == [1, 3]

    def test_or_becomes_union(self, store):
        plan = plan_expression(store, E.state("a") | E.state("d"))
        assert isinstance(plan.root, Union)
        assert ids(plan.iter_results()) == [0, 2, 3]

    def test_residual_stays_lazy_at_top_level(self, store):
        plan = plan_expression(store,
                               E.state("a") & E.min_entries(2))
        assert len(plan.residuals) == 1
        assert not plan.exact_count_available

    def test_residual_under_or_compiles_to_filter(self, store):
        plan = plan_expression(store,
                               E.state("d") | E.min_duration(1e9))
        assert isinstance(plan.root, Union)
        assert any(isinstance(c, Filter)
                   for c in plan.root.children)
        assert ids(plan.iter_results()) == [3]

    def test_empty_query_full_scan(self, store):
        plan = plan_expression(store, E.And(()))
        assert plan.candidate_ids() == store.all_ids()

    def test_empty_or_matches_nothing(self, store):
        plan = plan_expression(store, E.Or(()))
        assert plan.candidate_ids() == frozenset()

    def test_de_morgan_execution(self, store):
        got = ids(plan_expression(
            store, ~(E.state("a") | E.state("c"))).iter_results())
        expected = [i for i in sorted(store.all_ids())
                    if not (E.state("a") | E.state("c")).matches(
                        store.get(i))]
        assert got == expected == [3]

    def test_window_estimate_scales_with_span(self, store):
        wide = plan_expression(store, E.time_window(0.0, 10_000.0))
        narrow = plan_expression(store, E.time_window(0.0, 100.0))
        assert isinstance(wide.root, IndexScan)
        assert narrow.root.estimate < wide.root.estimate

    def test_disjoint_window_estimate_zero(self, store):
        plan = plan_expression(store, E.time_window(1e9, 2e9))
        assert plan.root.estimate == 0
        assert plan.candidate_ids() == frozenset()


class TestCountFastPath:
    def test_count_without_residuals_is_index_only(self, store):
        fetched = []
        original_get = store.get
        store.get = lambda doc_id: (fetched.append(doc_id),
                                    original_get(doc_id))[1]
        try:
            assert Query(store).visiting_state("a").count() == 2
            assert fetched == []
            assert Query(store).count() == 4
            assert fetched == []
        finally:
            store.get = original_get

    def test_count_with_residuals_fetches(self, store):
        assert Query(store).min_entries(2).count() == 3

    def test_resultset_len_uses_fast_count(self, store):
        results = Query(store).visiting_state("a").execute()
        assert len(results) == 2


class TestResultSet:
    def test_lazy_and_reiterable(self, store):
        results = Query(store).visiting_state("a").execute()
        assert ids(results) == [0, 2]
        assert ids(results) == [0, 2]  # second pass re-executes

    def test_reflects_store_updates(self, store):
        results = Query(store).visiting_state("d").execute()
        assert results.count() == 1
        store.insert(make_trajectory(mo_id="m9", states=("d",),
                                     start=20_000.0))
        assert results.count() == 2

    def test_limit_offset(self, store):
        results = Query(store).execute()
        assert ids(results.limit(2)) == [0, 1]
        assert ids(results.offset(3)) == [3]
        assert results.limit(2).count() == 2
        assert results.offset(3).count() == 1
        with pytest.raises(ValueError):
            results.limit(-1)
        with pytest.raises(ValueError):
            results.offset(-1)

    def test_order_by_field_and_callable(self, store):
        results = Query(store).execute()
        by_duration = [h.doc_id
                       for h in results.order_by("duration")]
        assert by_duration[0] == 3  # the short 'd' visit
        by_mo = [h.doc_id for h in results.order_by(
            lambda h: h.trajectory.mo_id, reverse=True)]
        assert by_mo[0] == 3  # m3 sorts last, reversed first
        with pytest.raises(KeyError):
            results.order_by("nope")

    def test_first_and_bool(self, store):
        assert Query(store).visiting_state("d").first().doc_id == 3
        assert Query(store).visiting_state("ghost").first() is None
        assert not Query(store).visiting_state("ghost").execute()
        assert Query(store).visiting_state("d").execute()

    def test_trajectories_and_ids(self, store):
        results = Query(store).visiting_state("a").execute()
        assert results.ids() == {0, 2}
        assert [t.mo_id for t in results.trajectories()] == ["m1",
                                                             "m1"]

    def test_list_compat(self, store):
        results = Query(store).visiting_state("ghost").execute()
        assert results == []
        full = Query(store).visiting_state("a").execute()
        assert full == full.to_list()
        assert repr(full).startswith("ResultSet(")


class TestQuerySerialization:
    def test_round_trip_same_results(self, store):
        query = (Query(store).visiting_any(["a", "d"])
                 .excluding(E.moving_object("m2"))
                 .min_entries(1))
        data = query.to_dict()
        restored = Query.from_dict(store, data)
        assert ids(restored.execute()) == ids(query.execute())
        assert restored.expression() == query.expression()

    def test_where_query_refuses_to_dict(self, store):
        with pytest.raises(ExprSerializationError):
            Query(store).where(lambda t: True).to_dict()


class TestStoreStatistics:
    def test_annotation_cardinalities(self, store):
        cards = store.annotation_cardinalities()
        assert cards[(AnnotationKind.GOAL, "visit")] == 3
        assert cards[(AnnotationKind.GOAL, "buy")] == 1

    def test_time_span_cached_and_invalidated(self, store):
        span = store.time_span()
        assert span[0] == 0.0
        store.insert(make_trajectory(mo_id="m4", states=("e",),
                                     start=50_000.0))
        assert store.time_span()[1] > span[1]

    def test_empty_store_span(self):
        assert TrajectoryStore().time_span() is None
