"""Tests for the trajectory store, indexes and query API."""

import pytest

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.storage.index import InvertedIndex
from repro.storage.query import Query
from repro.storage.store import TrajectoryStore
from tests.conftest import make_trajectory


class TestInvertedIndex:
    def test_lookup(self):
        index = InvertedIndex()
        index.add("a", 1)
        index.add("a", 2)
        index.add("b", 2)
        assert index.lookup("a") == {1, 2}
        assert index.lookup("missing") == frozenset()

    def test_lookup_any_all(self):
        index = InvertedIndex()
        index.add_all(["x", "y"], 1)
        index.add("y", 2)
        assert index.lookup_any(["x", "y"]) == {1, 2}
        assert index.lookup_all(["x", "y"]) == {1}
        assert index.lookup_all([]) == frozenset()

    def test_posting_sizes(self):
        index = InvertedIndex()
        index.add("a", 1)
        index.add("a", 2)
        assert index.posting_sizes() == {"a": 2}
        assert "a" in index
        assert len(index) == 1


@pytest.fixture
def store():
    store = TrajectoryStore()
    store.insert(make_trajectory(
        mo_id="m1", states=("a", "b"), start=0.0))
    store.insert(make_trajectory(
        mo_id="m2", states=("b", "c"), start=1000.0,
        annotations=AnnotationSet.goals("buy")))
    store.insert(make_trajectory(
        mo_id="m1", states=("a", "c"), start=5000.0))
    return store


class TestStore:
    def test_len_iter(self, store):
        assert len(store) == 3
        assert len(list(store)) == 3

    def test_get(self, store):
        assert store.get(0).mo_id == "m1"
        with pytest.raises(IndexError):
            store.get(99)

    def test_state_index(self, store):
        assert store.ids_visiting_state("b") == {0, 1}
        assert store.ids_visiting_any(["a", "c"]) == {0, 1, 2}
        assert store.ids_visiting_all(["a", "c"]) == {2}

    def test_annotation_index(self, store):
        assert store.ids_with_annotation(AnnotationKind.GOAL,
                                         "buy") == {1}
        assert store.ids_with_annotation(AnnotationKind.GOAL,
                                         "visit") == {0, 2}

    def test_mo_index(self, store):
        assert store.ids_of_mo("m1") == {0, 2}
        assert set(store.moving_objects()) == {"m1", "m2"}

    def test_temporal_index(self, store):
        assert store.ids_active_between(0.0, 500.0) == {0}
        assert store.ids_active_between(0.0, 10_000.0) == {0, 1, 2}
        assert store.ids_active_between(2000.0, 2500.0) == frozenset()

    def test_states_occupied_at(self, store):
        occupied = store.states_occupied_at(50.0)
        assert occupied == {0: "a"}

    def test_interval_index_invalidation(self, store):
        assert store.ids_active_between(0, 100) == {0}
        store.insert(make_trajectory(mo_id="m3", states=("z",),
                                     start=50.0))
        assert store.ids_active_between(0, 100) == {0, 3}

    def test_state_cardinalities(self, store):
        cardinalities = store.state_cardinalities()
        assert cardinalities["b"] == 2


class TestQuery:
    def test_no_predicates_returns_all(self, store):
        assert len(Query(store).execute()) == 3

    def test_state_filter(self, store):
        hits = Query(store).visiting_state("a").execute()
        assert [h.doc_id for h in hits] == [0, 2]

    def test_conjunction(self, store):
        hits = (Query(store).visiting_state("a")
                .of_moving_object("m1")
                .active_between(4000.0, 6000.0)
                .execute())
        assert [h.doc_id for h in hits] == [2]

    def test_annotation_filter(self, store):
        hits = Query(store).with_annotation(AnnotationKind.GOAL,
                                            "buy").execute()
        assert [h.doc_id for h in hits] == [1]

    def test_residual_predicates(self, store):
        hits = Query(store).min_entries(2).min_duration(1.0).execute()
        assert len(hits) == 3
        assert Query(store).min_duration(1e9).count() == 0

    def test_follows_sequence(self, store):
        hits = Query(store).follows_sequence(["a", "b"]).execute()
        assert [h.doc_id for h in hits] == [0]
        assert Query(store).follows_sequence(["b", "a"]).count() == 0

    def test_where_custom(self, store):
        hits = Query(store).where(
            lambda t: t.mo_id.endswith("2")).execute()
        assert [h.doc_id for h in hits] == [1]

    def test_empty_intersection_short_circuits(self, store):
        hits = (Query(store).visiting_state("a")
                .visiting_state("ghost").execute())
        assert hits == []


class TestCsvIo:
    def test_detection_roundtrip(self, tmp_path):
        from repro.core.builder import DetectionRecord
        from repro.storage.csvio import (
            read_detrecords_csv,
            write_detections_csv,
        )
        records = [
            DetectionRecord("m1", "zone1", 0.5, 10.25, "v1"),
            DetectionRecord("m2", "zone2", 5.0, 5.0),
        ]
        path = str(tmp_path / "detections.csv")
        assert write_detections_csv(records, path) == 2
        restored = read_detrecords_csv(path)
        assert restored == records

    def test_detection_bad_header(self, tmp_path):
        from repro.storage.csvio import read_detrecords_csv
        path = tmp_path / "bad.csv"
        path.write_text("wrong,header\n")
        with pytest.raises(ValueError):
            read_detrecords_csv(str(path))

    def test_trajectory_roundtrip(self, tmp_path):
        from repro.storage.csvio import (
            read_trajectories_jsonl,
            write_trajectories_jsonl,
        )
        trajectories = [
            make_trajectory(mo_id="m1"),
            make_trajectory(mo_id="m2",
                            annotations=AnnotationSet.goals("buy")),
        ]
        path = str(tmp_path / "trajectories.jsonl")
        assert write_trajectories_jsonl(trajectories, path) == 2
        restored = read_trajectories_jsonl(path)
        assert restored == trajectories
