"""Tests for the Workbench facade (generate → build → store → query
→ mine)."""

import pytest

from repro.api import Workbench
from repro.storage import Query, ResultSet, expr as E
from repro.storage.csvio import write_detections_csv
from tests.conftest import make_trajectory


@pytest.fixture(scope="module")
def workbench(request):
    """A 2 %-scale Louvre workbench shared by the read-only tests."""
    space = request.getfixturevalue("louvre_space")
    return Workbench.louvre(scale=0.02, space=space)


class TestConstruction:
    def test_louvre_builds_store(self, workbench):
        assert len(workbench) > 0
        assert workbench.metrics is not None
        assert workbench.metrics["clean"].items_in > 0

    def test_from_trajectories(self):
        wb = Workbench.from_trajectories(
            [make_trajectory(mo_id="m1"),
             make_trajectory(mo_id="m2", start=9000.0)])
        assert len(wb.store) == 2
        assert wb.query(E.moving_object("m1")).count() == 1

    def test_from_csv(self, tmp_path, louvre_space, small_corpus):
        _, records = small_corpus
        path = str(tmp_path / "detections.csv")
        write_detections_csv(records, path)
        wb = Workbench.from_csv(path, space=louvre_space)
        assert len(wb.store) > 0

    def test_build_without_space_raises(self):
        with pytest.raises(ValueError):
            Workbench().build([])


class TestQuerySurface:
    def test_query_and_find(self, workbench):
        query = workbench.query(E.goal("visit"))
        assert isinstance(query, Query)
        results = workbench.find(E.goal("visit"))
        assert isinstance(results, ResultSet)
        assert results.count() == query.count() == len(workbench)

    def test_explain(self, workbench):
        text = workbench.explain(E.state("zone60853")
                                 & E.goal("visit"))
        assert "intersect" in text
        assert "index-scan" in text

    def test_load_query_round_trip(self, workbench):
        query = workbench.query(E.state("zone60853")
                                | E.state("zone60886"))
        restored = workbench.load_query(query.to_dict())
        assert restored.execute().ids() == query.execute().ids()


class TestMiningOverCorpora:
    def test_corpus_forms_are_equivalent(self, workbench):
        expression = E.min_entries(2)
        query = workbench.query(expression)
        as_query = workbench.sequences(query)
        as_results = workbench.sequences(query.execute())
        as_hits = workbench.sequences(query.execute().to_list())
        as_plain = workbench.sequences(
            list(query.execute().trajectories()))
        assert as_query == as_results == as_hits == as_plain
        assert 0 < len(as_query) < len(workbench)

    def test_none_means_whole_store(self, workbench):
        assert len(workbench.sequences()) == len(workbench)
        assert workbench.summary()["visits"] == len(workbench)

    def test_patterns_over_query(self, workbench):
        patterns = workbench.patterns(
            workbench.query(E.min_entries(2)), min_support=0.2,
            max_length=3)
        assert patterns
        assert patterns[0].support >= patterns[-1].support

    def test_patterns_empty_corpus(self, workbench):
        assert workbench.patterns(
            workbench.query(E.state("no-such-zone"))) == []

    def test_flow_over_result_set(self, workbench):
        balances = workbench.flow(
            workbench.find(E.min_entries(2)))
        assert balances
        assert {b.state for b in balances} <= set(
            workbench.store.state_cardinalities())

    def test_similarity_uses_space_hierarchy(self, workbench):
        results = workbench.find(E.min_entries(2)).limit(4)
        matrix = workbench.similarity(results)
        size = results.count()
        assert len(matrix) == size
        assert all(matrix[i][i] == 1.0 for i in range(size))

    def test_similarity_without_hierarchy(self):
        wb = Workbench.from_trajectories(
            [make_trajectory(mo_id="m1", states=("a", "b")),
             make_trajectory(mo_id="m2", states=("a", "b"),
                             start=9000.0)])
        matrix = wb.similarity()
        assert matrix[0][1] == 1.0


class TestServiceBinding:
    """Workbench is sugar over the service protocol's local
    binding."""

    def test_binding_registers_the_workbench(self, workbench):
        from repro.api import LOCAL_SESSION

        session = workbench.binding.registry.get(LOCAL_SESSION)
        assert session.workbench is workbench

    def test_protocol_path_matches_direct_path(self, workbench):
        """The delegated (command) result equals the direct miner
        call on the same corpus."""
        from repro.mining.sequences import state_sequences
        from repro.service.executor import patterns_over

        query = workbench.query(E.min_entries(2))
        via_protocol = workbench.patterns(query, min_support=0.2)
        direct = patterns_over(
            state_sequences(query.execute()), min_support=0.2)
        assert via_protocol == direct

    def test_unserializable_query_falls_back(self, workbench):
        """A where() callable cannot cross the protocol; the direct
        path serves it."""
        query = workbench.query().where(
            lambda t: len(t.trace) >= 2, label="fat")
        patterns = workbench.patterns(query, min_support=0.2)
        assert patterns == workbench.patterns(
            workbench.query(E.min_entries(2)), min_support=0.2)

    def test_foreign_store_query_falls_back(self, workbench):
        other = Workbench.from_trajectories(
            [make_trajectory(mo_id="m1", states=("a", "b")),
             make_trajectory(mo_id="m2", states=("a", "b"),
                             start=9000.0)])
        query = other.query(E.state("a"))
        # mined against the *query's* store, not the workbench's
        assert workbench.sequences(query) == [["a", "b"], ["a", "b"]]

    def test_serve_exposes_the_corpus(self, workbench):
        from repro.api import LOCAL_SESSION
        from repro.service.client import ServiceClient

        server = workbench.serve(port=0)
        try:
            client = ServiceClient(server.url)
            page = client.run_query(LOCAL_SESSION, limit=3)
            assert page.total == len(workbench)
        finally:
            server.stop()

    def test_binding_survives_drop_session(self, workbench):
        """DropSession('local') must not brick the facade — the
        binding re-adopts the workbench on next access."""
        from repro.api import LOCAL_SESSION
        from repro.service import protocol as P

        baseline = workbench.summary()["visits"]
        workbench.binding.call(P.DropSession(session=LOCAL_SESSION))
        assert workbench.summary()["visits"] == baseline
