"""Tests for the named-stage registry."""

import pytest

from repro.pipeline import (
    Stage,
    UnknownStageError,
    available_stages,
    create_stage,
    register_stage,
    stage_catalog,
)
from repro.pipeline.registry import _REGISTRY


class TestLookup:
    def test_builtins_are_registered(self):
        names = available_stages()
        for name in ("clean", "segment", "trace", "annotate", "store",
                     "state-sequences", "prefixspan", "jsonl-sink",
                     "collect"):
            assert name in names

    def test_create_known_stage(self):
        stage = create_stage("prefixspan", min_support=3)
        assert stage.name == "prefixspan"
        assert stage.min_support == 3

    def test_unknown_stage_raises_with_catalog(self):
        with pytest.raises(UnknownStageError) as excinfo:
            create_stage("does-not-exist")
        message = str(excinfo.value)
        assert "does-not-exist" in message
        assert "clean" in message  # the message lists what exists

    def test_unknown_stage_is_a_key_error(self):
        with pytest.raises(KeyError):
            create_stage("nope")

    def test_catalog_has_descriptions(self):
        catalog = dict(stage_catalog())
        assert catalog["clean"].startswith("Stage 1")
        assert all(name for name in catalog)


class TestRegistration:
    def test_register_custom_stage_decorator(self):
        try:
            @register_stage("test-custom")
            class CustomStage(Stage):
                name = "test-custom"

            stage = create_stage("test-custom")
            assert isinstance(stage, CustomStage)
        finally:
            _REGISTRY.pop("test-custom", None)

    def test_register_factory_directly(self):
        try:
            register_stage("test-factory",
                           lambda: Stage())
            assert "test-factory" in available_stages()
            assert isinstance(create_stage("test-factory"), Stage)
        finally:
            _REGISTRY.pop("test-factory", None)

    def test_reregistering_overrides(self):
        try:
            register_stage("test-override", lambda: "first")
            register_stage("test-override", lambda: "second")
            assert create_stage("test-override") == "second"
        finally:
            _REGISTRY.pop("test-override", None)
