"""Tests for the built-in stage catalog (builder, storage, mining)."""

import pytest

from repro.core import DetectionRecord, TrajectoryBuilder
from repro.pipeline import (
    JsonlSinkStage,
    Pipeline,
    PrefixSpanStage,
    SegmentStage,
    StateSequenceStage,
    StoreSinkStage,
)
from repro.storage import TrajectoryStore, read_trajectories_jsonl


@pytest.fixture()
def builder(louvre_space):
    return TrajectoryBuilder(louvre_space.dataset_zone_nrg())


def rec(mo, state, start, end, visit=None):
    return DetectionRecord(mo, state, start, end, visit_id=visit)


class TestBuilderStages:
    def test_clean_stage_counts_reasons(self, builder):
        pipeline = Pipeline([builder.stages()[0]])
        records = [
            rec("a", "zone60853", 0.0, 10.0),
            rec("a", "zone60853", 20.0, 20.0),    # zero duration
            rec("a", "zone60853", 40.0, 30.0),    # negative duration
            rec("a", "not-a-zone", 50.0, 60.0),   # unknown state
        ]
        out = pipeline.run(records)
        assert len(out) == 1
        metrics = pipeline.metrics["clean"]
        assert metrics.drops == {"zero_duration": 1,
                                 "negative_duration": 1,
                                 "unknown_state": 1}

    def test_exact_matches_legacy_methods(self, builder, small_corpus):
        _, records = small_corpus
        cleaned, _ = builder.clean(records)
        expected = [builder.build_trajectory(v)
                    for v in builder.split_visits(cleaned)]
        built = Pipeline(builder.stages(), batch_size=97).run(records)
        assert [t.to_dict() for t in built] \
            == [t.to_dict() for t in expected]

    def test_batch_boundary_does_not_change_segmentation(self, builder):
        # One gap-segmented visit pair whose records straddle every
        # possible batch boundary must segment identically to the
        # materialized (exact, single-batch) path.
        records = [
            rec("a", "zone60853", 0.0, 100.0),
            rec("a", "zone60854", 110.0, 200.0),
            rec("a", "zone60853", 220.0, 300.0),
            # > 4 h inactivity gap: a second visit
            rec("a", "zone60854", 20000.0, 20100.0),
            rec("a", "zone60855", 20110.0, 20200.0),
        ]
        exact = Pipeline(builder.stages(),
                         batch_size=len(records)).run(records)
        assert len(exact) == 2
        for batch_size in range(1, len(records) + 1):
            for streaming in (False, True):
                out = Pipeline(builder.stages(streaming=streaming),
                               batch_size=batch_size).run(records)
                assert [t.to_dict() for t in out] \
                    == [t.to_dict() for t in exact], \
                    "batch_size={} streaming={}".format(batch_size,
                                                        streaming)

    def test_streaming_flushes_visits_before_end_of_stream(self,
                                                           builder):
        # With visit_id-contiguous input, a visit is emitted as soon
        # as the next key arrives — not held until the source ends.
        records = [rec("a", "zone60853", 0.0, 10.0, visit="v1"),
                   rec("a", "zone60854", 20.0, 30.0, visit="v1"),
                   rec("b", "zone60853", 0.0, 10.0, visit="v2")]
        stage = SegmentStage(builder, streaming=True)
        assert stage.process(records[:2]) == []
        emitted = stage.process(records[2:])
        assert len(emitted) == 1
        assert [r.visit_id for r in emitted[0]] == ["v1", "v1"]
        assert len(stage.finish()) == 1

    def test_empty_corpus(self, builder):
        trajectories, report = builder.build_all([])
        assert trajectories == []
        assert report.trajectories == 0
        assert report.cleaning.total == 0
        assert report.stage_metrics["annotate"].items_out == 0

    def test_single_record_corpus(self, builder):
        trajectories, report = builder.build_all(
            [rec("solo", "zone60853", 0.0, 60.0)])
        assert len(trajectories) == 1
        assert len(trajectories[0].trace) == 1
        assert report.entries == 1
        assert report.cleaning.kept == 1

    def test_build_all_reports_engine_drop_counts(self, builder,
                                                  small_corpus):
        _, records = small_corpus
        _, report = builder.build_all(records)
        clean = report.stage_metrics["clean"]
        assert clean.drops["zero_duration"] \
            == report.cleaning.dropped_zero_duration
        assert clean.items_in == report.cleaning.total
        share = clean.drops["zero_duration"] / clean.items_in
        assert share == pytest.approx(
            report.cleaning.zero_duration_share)


class TestStorageStages:
    def test_store_sink_extends_and_passes_through(self,
                                                   small_trajectories):
        sink = StoreSinkStage()
        pipeline = Pipeline([sink], batch_size=17)
        out = pipeline.run(small_trajectories)
        assert len(out) == len(small_trajectories)
        assert len(sink.store) == len(small_trajectories)
        assert list(sink.store)[0] is small_trajectories[0]

    def test_store_extend_matches_per_insert(self, small_trajectories):
        a, b = TrajectoryStore(), TrajectoryStore()
        for trajectory in small_trajectories:
            a.insert(trajectory)
        ids = b.extend(small_trajectories)
        assert ids == list(range(len(small_trajectories)))
        assert a.state_cardinalities() == b.state_cardinalities()
        assert a.moving_objects() == b.moving_objects()
        window = (small_trajectories[0].t_start,
                  small_trajectories[0].t_end)
        assert a.ids_active_between(*window) \
            == b.ids_active_between(*window)

    def test_store_extend_rebuild_interval(self, small_trajectories):
        store = TrajectoryStore()
        store.extend(small_trajectories[:3], rebuild_interval=True)
        # The interval index is already warm (private but load-bearing
        # for the batched-ingest contract).
        assert store._interval_index is not None
        store.extend(small_trajectories[3:5])
        assert store._interval_index is None

    def test_jsonl_sink_round_trip(self, small_trajectories, tmp_path):
        path = str(tmp_path / "out.jsonl")
        sink = JsonlSinkStage(path)
        Pipeline([sink], batch_size=7).run(small_trajectories[:10],
                                           collect=False)
        assert sink.written == 10
        loaded = read_trajectories_jsonl(path)
        assert [t.to_dict() for t in loaded] \
            == [t.to_dict() for t in small_trajectories[:10]]


class TestMiningStages:
    def test_state_sequences_then_prefixspan(self, small_trajectories):
        miner = PrefixSpanStage(min_support=2, max_length=3)
        pipeline = Pipeline([StateSequenceStage(), miner],
                            batch_size=31)
        patterns = pipeline.run(small_trajectories)
        assert patterns
        assert patterns == miner.patterns
        assert all(p.support >= 2 for p in patterns)

    def test_fractional_support_resolved_at_flush(self,
                                                  small_trajectories):
        miner = PrefixSpanStage(min_support=0.5, max_length=2)
        Pipeline([StateSequenceStage(), miner]).run(small_trajectories)
        expected = max(2, int(len(small_trajectories) * 0.5))
        assert miner.metrics.counters["min_support"] == expected

    def test_prefixspan_empty_input(self):
        miner = PrefixSpanStage(min_support=2)
        assert Pipeline([miner]).run([]) == []
        assert miner.patterns == []
