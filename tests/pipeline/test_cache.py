"""Tests for the inter-stage result cache."""

import pytest

from repro.api import Workbench
from repro.core import TrajectoryBuilder
from repro.pipeline import (
    MapStage,
    Pipeline,
    StageCache,
    StoreSinkStage,
    fingerprint_of,
    louvre_source,
)


class CountingStage(MapStage):
    """A cache-safe map stage that counts its process() calls."""

    def __init__(self, tag, fn=lambda x: x):
        super().__init__(fn, name="counting-" + tag)
        self.tag = tag
        self.calls = 0

    def config_fingerprint(self):
        return fingerprint_of("counting", self.tag)

    def process(self, batch):
        self.calls += 1
        return super().process(batch)


class SinkStage(MapStage):
    """Uncacheable pass-through (no config fingerprint)."""

    def __init__(self):
        super().__init__(lambda x: x, name="sink")
        self.seen = []

    def config_fingerprint(self):
        return None

    def process(self, batch):
        self.seen.extend(batch)
        return list(batch)


def _double_item(item):
    return item * 2


class ProcessSafeDoubler(MapStage):
    """Cache-safe, parallel-safe, picklable (module-level fn)."""

    def __init__(self):
        super().__init__(_double_item, name="proc-double")

    def config_fingerprint(self):
        return fingerprint_of("proc-double")


class ProcessSafeIdentity(MapStage):
    """Parallel-safe but uncacheable, picklable."""

    def __init__(self):
        super().__init__(_identity_item, name="proc-id")


def _identity_item(item):
    return item


class FakeSource:
    def __init__(self, items, fingerprint):
        self._items = list(items)
        self.fingerprint = fingerprint

    def __iter__(self):
        return iter(self._items)


class TestStageCache:
    def test_prefix_replay_skips_cached_stages(self):
        cache = StageCache()
        source = FakeSource(range(20), "src-1")

        first_a, first_sink = CountingStage("a"), SinkStage()
        pipeline = Pipeline([first_a, first_sink], batch_size=4,
                            cache=cache)
        out_first = pipeline.run(source)
        assert first_a.calls == 5
        assert cache.misses == 1 and cache.hits == 0

        second_a, second_sink = CountingStage("a"), SinkStage()
        pipeline = Pipeline([second_a, second_sink], batch_size=4,
                            cache=cache)
        out_second = pipeline.run(source)
        assert out_second == out_first
        assert second_a.calls == 0  # replayed from cache
        assert second_sink.seen == first_sink.seen  # sink re-ran
        assert cache.hits == 1

    def test_replay_metrics_match_fresh_run(self):
        cache = StageCache()
        source = FakeSource(range(10), "src-m")
        pipeline = Pipeline([CountingStage("a"), SinkStage()],
                            batch_size=3, cache=cache)
        pipeline.run(source)
        fresh = pipeline.metrics.as_dict()

        pipeline = Pipeline([CountingStage("a"), SinkStage()],
                            batch_size=3, cache=cache)
        pipeline.run(source)
        replayed = pipeline.metrics.as_dict()
        for data in (fresh, replayed):
            data.pop("total_seconds")
            for stage in data["stages"]:
                stage.pop("seconds")
        assert replayed == fresh

    def test_config_change_misses(self):
        cache = StageCache()
        source = FakeSource(range(8), "src-2")
        stage = CountingStage("a")
        Pipeline([stage, SinkStage()], batch_size=4,
                 cache=cache).run(source)
        other = CountingStage("b")
        Pipeline([other, SinkStage()], batch_size=4,
                 cache=cache).run(source)
        assert other.calls == 2  # different config → recomputed
        assert cache.hits == 0 and cache.misses == 2

    def test_source_change_misses(self):
        cache = StageCache()
        stage = CountingStage("a")
        Pipeline([stage, SinkStage()], batch_size=4, cache=cache) \
            .run(FakeSource(range(8), "src-A"))
        again = CountingStage("a")
        Pipeline([again, SinkStage()], batch_size=4, cache=cache) \
            .run(FakeSource(range(8), "src-B"))
        assert again.calls == 2
        assert cache.hits == 0

    def test_unfingerprinted_source_bypasses_cache(self):
        cache = StageCache()
        stage = CountingStage("a")
        Pipeline([stage], batch_size=4, cache=cache).run(range(8))
        assert cache.hits == 0 and cache.misses == 0
        assert len(cache) == 0

    def test_extended_chain_reuses_shorter_prefix(self):
        """A chain extending a cached prefix replays it and records
        the longer prefix for next time."""
        cache = StageCache()
        source = FakeSource(range(12), "src-3")
        Pipeline([CountingStage("a"), SinkStage()], batch_size=4,
                 cache=cache).run(source)

        replayed_a = CountingStage("a")
        fresh_b = CountingStage("b")
        out = Pipeline([replayed_a, fresh_b, SinkStage()],
                       batch_size=4, cache=cache).run(source)
        assert out == list(range(12))
        assert replayed_a.calls == 0   # depth-1 prefix replayed
        assert fresh_b.calls == 3      # extension computed fresh
        assert cache.hits == 1

        third_a, third_b = CountingStage("a"), CountingStage("b")
        Pipeline([third_a, third_b, SinkStage()], batch_size=4,
                 cache=cache).run(source)
        assert third_a.calls == 0 and third_b.calls == 0
        assert cache.hits == 2

    def test_lru_eviction(self):
        cache = StageCache(max_entries=1)
        Pipeline([CountingStage("a")], batch_size=4, cache=cache) \
            .run(FakeSource(range(4), "src-A"))
        Pipeline([CountingStage("a")], batch_size=4, cache=cache) \
            .run(FakeSource(range(4), "src-B"))
        assert len(cache) == 1
        evicted = CountingStage("a")
        Pipeline([evicted], batch_size=4, cache=cache) \
            .run(FakeSource(range(4), "src-A"))
        assert evicted.calls == 1  # src-A was evicted by src-B

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValueError):
            StageCache(max_entries=0)

    def test_cache_with_process_executor_boundary_mid_segment(self):
        """The cache boundary splitting a parallel-safe run must not
        break the process pool's segment map (regression)."""
        cache = StageCache()
        source = FakeSource(range(30), "src-proc")
        # doubler is cache-safe, identity is not: the boundary falls
        # inside the single parallel-safe run [doubler, identity].
        out_cold = Pipeline(
            [ProcessSafeDoubler(), ProcessSafeIdentity()],
            batch_size=5, workers=2, executor="process",
            cache=cache).run(source)
        assert out_cold == [n * 2 for n in range(30)]
        out_warm = Pipeline(
            [ProcessSafeDoubler(), ProcessSafeIdentity()],
            batch_size=5, workers=2, executor="process",
            cache=cache).run(source)
        assert out_warm == out_cold
        assert cache.hits == 1


class TestBuilderChainCaching:
    def test_workbench_rebuild_hits_cache(self, louvre_space):
        cache = StageCache()
        first = Workbench.louvre(scale=0.05, space=louvre_space,
                                 cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        second = Workbench.louvre(scale=0.05, space=louvre_space,
                                  cache=cache)
        assert cache.hits == 1
        assert [t.to_dict() for t in second.store] \
            == [t.to_dict() for t in first.store]
        assert second.store.state_cardinalities() \
            == first.store.state_cardinalities()

    def test_workbench_cache_false_disables(self, louvre_space):
        workbench = Workbench.louvre(scale=0.05, space=louvre_space,
                                     cache=False)
        assert len(workbench.store) > 0

    def test_workbench_rejects_bad_cache(self, louvre_space):
        with pytest.raises(ValueError):
            Workbench.louvre(scale=0.05, space=louvre_space,
                             cache="yes")

    def test_builder_config_change_invalidates(self, louvre_space):
        cache = StageCache()
        source = louvre_source(louvre_space, scale=0.05)
        builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
        Pipeline(builder.stages(streaming=True) + [StoreSinkStage()],
                 batch_size=256, cache=cache).run(source,
                                                  collect=False)
        relaxed = TrajectoryBuilder(louvre_space.dataset_zone_nrg(),
                                    min_duration=-1.0)
        Pipeline(relaxed.stages(streaming=True) + [StoreSinkStage()],
                 batch_size=256, cache=cache).run(source,
                                                  collect=False)
        assert cache.hits == 0
        assert cache.misses == 2
