"""Parallel-vs-serial determinism of the pipeline executor.

The parallel executor's contract: for any chain of stages — whatever
mix of parallel-safe and stateful — outputs, item counts, drop reasons
and counters are identical to serial execution; only wall time may
differ.  Verified on the real builder chain (thread and process pools)
and property-tested on random stage chains.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TrajectoryBuilder
from repro.pipeline import (
    FilterStage,
    MapStage,
    Pipeline,
    PipelineError,
    Stage,
    StoreSinkStage,
    louvre_source,
)


def _double(item):
    return item * 2


def _keep_even(item):
    return item % 2 == 0


class BarrierStage(Stage):
    """Stateful: buffers everything and flushes at end of stream."""

    name = "barrier"

    def __init__(self):
        super().__init__()
        self._held = []

    def process(self, batch):
        self._held.extend(batch)
        return []

    def finish(self):
        held, self._held = self._held, []
        return held


class RunningSumStage(Stage):
    """Stateful and order-sensitive: prefix sums across batches."""

    name = "running-sum"

    def __init__(self):
        super().__init__()
        self._total = 0

    def process(self, batch):
        out = []
        for item in batch:
            self._total += item
            out.append(self._total)
        return out


def _metrics_counts(metrics):
    """Metrics as comparable plain data, wall time excluded."""
    data = metrics.as_dict()
    for stage in data["stages"]:
        stage.pop("seconds")
    data.pop("total_seconds")
    return data


def _stage_chain(spec):
    """Build a fresh stage chain from a compact spec string list."""
    stages = []
    for index, kind in enumerate(spec):
        if kind == "map":
            stages.append(MapStage(_double, name="map-{}".format(index)))
        elif kind == "filter":
            stages.append(FilterStage(_keep_even,
                                      name="filter-{}".format(index),
                                      drop_reason="odd"))
        elif kind == "drop-all":
            stages.append(FilterStage(lambda item: False,
                                      name="drop-{}".format(index),
                                      drop_reason="all"))
        elif kind == "barrier":
            stage = BarrierStage()
            stage.name = "barrier-{}".format(index)
            stages.append(stage)
        else:
            stage = RunningSumStage()
            stage.name = "sum-{}".format(index)
            stages.append(stage)
    return stages


def _run(spec, items, batch_size, workers, executor="thread"):
    pipeline = Pipeline(_stage_chain(spec), batch_size=batch_size,
                        workers=workers, executor=executor)
    output = pipeline.run(items)
    return output, _metrics_counts(pipeline.metrics)


class TestBuilderChainParity:
    @pytest.fixture(scope="class")
    def corpus(self, louvre_space):
        return louvre_source(louvre_space, scale=0.15)

    def _build(self, louvre_space, corpus, workers, executor="thread",
               batch_size=128):
        builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
        sink = StoreSinkStage()
        pipeline = Pipeline(builder.stages(streaming=True) + [sink],
                            batch_size=batch_size, workers=workers,
                            executor=executor)
        output = pipeline.run(corpus)
        return output, pipeline.metrics, sink.store

    def test_thread_pool_byte_identical(self, louvre_space, corpus):
        serial_out, serial_metrics, serial_store = self._build(
            louvre_space, corpus, workers=0)
        parallel_out, parallel_metrics, parallel_store = self._build(
            louvre_space, corpus, workers=4)
        assert [t.to_dict() for t in parallel_out] \
            == [t.to_dict() for t in serial_out]
        assert _metrics_counts(parallel_metrics) \
            == _metrics_counts(serial_metrics)
        assert [t.to_dict() for t in parallel_store] \
            == [t.to_dict() for t in serial_store]
        assert parallel_store.state_cardinalities() \
            == serial_store.state_cardinalities()

    def test_process_pool_byte_identical(self, louvre_space, corpus):
        serial_out, serial_metrics, _ = self._build(
            louvre_space, corpus, workers=0, batch_size=512)
        parallel_out, parallel_metrics, _ = self._build(
            louvre_space, corpus, workers=2, executor="process",
            batch_size=512)
        assert [t.to_dict() for t in parallel_out] \
            == [t.to_dict() for t in serial_out]
        assert _metrics_counts(parallel_metrics) \
            == _metrics_counts(serial_metrics)

    def test_exact_segmenter_parity(self, louvre_space, corpus):
        """The buffering (exact-mode) segmenter stays serial and the
        chain around it still parallelizes correctly."""
        builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
        serial = Pipeline(builder.stages(streaming=False),
                          batch_size=256)
        serial_out = serial.run(corpus)
        builder2 = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
        parallel = Pipeline(builder2.stages(streaming=False),
                            batch_size=256, workers=3)
        parallel_out = parallel.run(corpus)
        assert [t.to_dict() for t in parallel_out] \
            == [t.to_dict() for t in serial_out]
        assert _metrics_counts(parallel.metrics) \
            == _metrics_counts(serial.metrics)


class TestSegmentation:
    def test_serial_pipeline_is_one_segment(self):
        pipeline = Pipeline(_stage_chain(["map", "barrier", "map"]))
        assert pipeline.segments() == [(0, 3, False)]

    def test_parallel_partition_alternates_on_safety(self):
        pipeline = Pipeline(_stage_chain(["map", "filter", "barrier",
                                          "map", "sum"]),
                            workers=2)
        assert pipeline.segments() == [(0, 2, True), (2, 3, False),
                                       (3, 4, True), (4, 5, False)]

    def test_rejects_bad_executor(self):
        with pytest.raises(PipelineError):
            Pipeline([MapStage(_double)], executor="fork")

    def test_rejects_negative_workers(self):
        with pytest.raises(PipelineError):
            Pipeline([MapStage(_double)], workers=-1)


class TestRandomChains:
    """Satellite: property test — identical outputs, drop reasons and
    item counts for random stage chains under both executors."""

    @given(
        spec=st.lists(st.sampled_from(
            ["map", "filter", "drop-all", "barrier", "sum"]),
            min_size=1, max_size=6),
        items=st.lists(st.integers(min_value=-50, max_value=50),
                       max_size=60),
        batch_size=st.integers(min_value=1, max_value=16),
        workers=st.sampled_from([2, 3, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_parallel_equals_serial(self, spec, items, batch_size,
                                    workers):
        serial_out, serial_metrics = _run(spec, items, batch_size, 0)
        parallel_out, parallel_metrics = _run(spec, items, batch_size,
                                              workers)
        assert parallel_out == serial_out
        assert parallel_metrics == serial_metrics
