"""Tests for the streaming pipeline executor."""

import pytest

from repro.pipeline import (
    FilterStage,
    MapStage,
    Pipeline,
    PipelineError,
    Stage,
)


class TagStage(Stage):
    """Append a tag to every (string) item — order-sensitive."""

    def __init__(self, tag):
        self.name = "tag-" + tag
        super().__init__()
        self.tag = tag

    def process(self, batch):
        return [item + self.tag for item in batch]


class BufferingStage(Stage):
    """Hold everything until the flush (a barrier stage)."""

    name = "buffer"

    def __init__(self):
        super().__init__()
        self._held = []

    def process(self, batch):
        self._held.extend(batch)
        return []

    def finish(self):
        held, self._held = self._held, []
        return held


class TestComposition:
    def test_stage_order_is_respected(self):
        pipeline = Pipeline([TagStage("a"), TagStage("b")])
        assert pipeline.run(["x", "y"]) == ["xab", "yab"]

    def test_then_appends(self):
        pipeline = Pipeline([TagStage("a")]).then(TagStage("b"))
        assert pipeline.run(["x"]) == ["xab"]

    def test_needs_stages(self):
        with pytest.raises(PipelineError):
            Pipeline([])

    def test_rejects_bad_batch_size(self):
        with pytest.raises(PipelineError):
            Pipeline([TagStage("a")], batch_size=0)

    def test_metrics_before_run_raises(self):
        with pytest.raises(PipelineError):
            Pipeline([TagStage("a")]).metrics


class TestExecution:
    def test_batching(self):
        pipeline = Pipeline([TagStage("a")], batch_size=3)
        out = pipeline.run(["i{}".format(n) for n in range(10)])
        assert len(out) == 10
        metrics = pipeline.metrics["tag-a"]
        assert metrics.batches == 4  # 3 + 3 + 3 + 1
        assert metrics.items_in == 10
        assert metrics.items_out == 10

    def test_generator_source_is_consumed_lazily(self):
        seen = []

        def source():
            for n in range(5):
                seen.append(n)
                yield n

        pipeline = Pipeline([MapStage(lambda x: x * 2)], batch_size=2)
        iterator = pipeline.run_iter(source())
        first = next(iterator)
        assert first == [0, 2]
        assert seen == [0, 1]  # only one batch pulled so far
        rest = [item for batch in iterator for item in batch]
        assert rest == [4, 6, 8]

    def test_finish_cascades_downstream(self):
        pipeline = Pipeline([BufferingStage(), TagStage("z")],
                            batch_size=2)
        assert pipeline.run(["a", "b", "c"]) == ["az", "bz", "cz"]
        # The tag stage only ever saw the flushed batch.
        assert pipeline.metrics["tag-z"].batches == 1
        assert pipeline.metrics["buffer"].items_out == 3

    def test_empty_source(self):
        pipeline = Pipeline([TagStage("a")])
        assert pipeline.run([]) == []
        assert pipeline.metrics["tag-a"].items_in == 0

    def test_collect_false_discards_output(self):
        pipeline = Pipeline([TagStage("a")])
        assert pipeline.run(["x"], collect=False) == []
        assert pipeline.metrics["tag-a"].items_out == 1

    def test_empty_batch_short_circuits_downstream(self):
        pipeline = Pipeline([FilterStage(lambda x: False,
                                         name="drop-all"),
                             TagStage("a")], batch_size=2)
        assert pipeline.run([1, 2, 3]) == []
        assert pipeline.metrics["drop-all"].dropped == 3
        assert pipeline.metrics["tag-a"].batches == 0

    def test_rerun_resets_metrics(self):
        pipeline = Pipeline([TagStage("a")])
        pipeline.run(["x", "y"])
        pipeline.run(["z"])
        assert pipeline.metrics["tag-a"].items_in == 1


class TestFlushAccounting:
    """The flush path shares _push accounting with the batch path."""

    def test_finish_items_dropped_downstream_records_items_in(self):
        """A stage's flush tail that the next stage fully drops must
        still count as items_in (and a batch) on the dropping stage."""
        pipeline = Pipeline([BufferingStage(),
                             FilterStage(lambda x: False,
                                         name="reject-all")],
                            batch_size=2)
        assert pipeline.run(["a", "b", "c"]) == []
        buffer = pipeline.metrics["buffer"]
        assert buffer.items_out == 3
        assert buffer.batches == 3  # two process calls + the flush
        rejecting = pipeline.metrics["reject-all"]
        assert rejecting.items_in == 3
        assert rejecting.items_out == 0
        assert rejecting.batches == 1
        assert rejecting.drops == {"predicate": 3}

    def test_stage_after_flush_drop_stays_untouched(self):
        """When the flush tail dies mid-chain, later stages see
        nothing — no phantom batches or items."""
        pipeline = Pipeline([BufferingStage(),
                             FilterStage(lambda x: False,
                                         name="reject-all"),
                             TagStage("z")],
                            batch_size=2)
        assert pipeline.run(["a", "b"]) == []
        assert pipeline.metrics["tag-z"].batches == 0
        assert pipeline.metrics["tag-z"].items_in == 0

    def test_partial_flush_drop_accounting(self):
        """A partially-dropped flush tail keeps exact counts."""
        pipeline = Pipeline([BufferingStage(),
                             FilterStage(lambda x: x % 2 == 0,
                                         name="evens",
                                         drop_reason="odd"),
                             MapStage(lambda x: x * 10, name="tens")],
                            batch_size=2)
        assert pipeline.run([1, 2, 3, 4, 5]) == [20, 40]
        evens = pipeline.metrics["evens"]
        assert evens.items_in == 5
        assert evens.items_out == 2
        assert evens.drops == {"odd": 3}
        tens = pipeline.metrics["tens"]
        assert tens.items_in == 2
        assert tens.items_out == 2
        assert tens.batches == 1

    def test_empty_finish_adds_no_batch(self):
        """A finish() returning nothing must not bump batches."""
        pipeline = Pipeline([TagStage("a"), TagStage("b")])
        pipeline.run(["x"])
        assert pipeline.metrics["tag-a"].batches == 1
        assert pipeline.metrics["tag-b"].batches == 1


class TestTimingDisabled:
    def test_timing_off_keeps_counts_drops_output(self):
        pipeline = Pipeline([FilterStage(lambda x: x % 2 == 0,
                                         name="evens",
                                         drop_reason="odd"),
                             MapStage(lambda x: x + 1, name="inc")],
                            timing=False)
        assert pipeline.run(list(range(6))) == [1, 3, 5]
        evens = pipeline.metrics["evens"]
        assert evens.items_in == 6
        assert evens.drops == {"odd": 3}
        assert evens.seconds == 0.0
        assert pipeline.metrics["inc"].seconds == 0.0


class TestMetrics:
    def test_drop_accounting(self):
        pipeline = Pipeline([FilterStage(lambda x: x % 2 == 0,
                                         name="evens",
                                         drop_reason="odd")])
        out = pipeline.run(list(range(6)))
        assert out == [0, 2, 4]
        metrics = pipeline.metrics["evens"]
        assert metrics.drops == {"odd": 3}
        assert metrics.dropped == 3

    def test_render_contains_stage_rows(self):
        pipeline = Pipeline([TagStage("a"), TagStage("b")])
        pipeline.run(["x"])
        text = pipeline.metrics.render()
        assert "tag-a" in text
        assert "tag-b" in text

    def test_unknown_stage_name_lookup(self):
        pipeline = Pipeline([TagStage("a")])
        pipeline.run([])
        with pytest.raises(KeyError):
            pipeline.metrics["nope"]

    def test_as_dict_shape(self):
        pipeline = Pipeline([TagStage("a")])
        pipeline.run(["x"])
        data = pipeline.metrics.as_dict()
        assert data["stages"][0]["name"] == "tag-a"
        assert data["stages"][0]["items_in"] == 1
