"""Golden test: the engine equals the legacy hand-wired path.

The acceptance contract of the pipeline refactor: a `Pipeline` run
over the full Louvre corpus produces byte-identical trajectories and
store contents to the legacy chain (``clean`` → ``split_visits`` →
``build_trajectory`` per visit → per-trajectory ``insert``).
"""

import pytest

from repro.core import TrajectoryBuilder
from repro.louvre.dataset import DatasetParameters, LouvreDatasetGenerator
from repro.pipeline import Pipeline, StoreSinkStage, louvre_source
from repro.storage import TrajectoryStore


@pytest.fixture(scope="module")
def full_corpus(louvre_space):
    """The paper-sized 20,245-record corpus."""
    generator = LouvreDatasetGenerator(louvre_space,
                                       DatasetParameters())
    return generator.detection_records()


@pytest.fixture(scope="module")
def legacy_result(louvre_space, full_corpus):
    """(trajectories, store) via the legacy hand-wired chain."""
    builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
    cleaned, _ = builder.clean(full_corpus)
    trajectories = [builder.build_trajectory(visit)
                    for visit in builder.split_visits(cleaned)]
    store = TrajectoryStore()
    for trajectory in trajectories:
        store.insert(trajectory)
    return trajectories, store


class TestGoldenParity:
    def test_pipeline_equals_legacy_on_full_corpus(self, louvre_space,
                                                   full_corpus,
                                                   legacy_result):
        legacy_trajectories, legacy_store = legacy_result
        builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
        sink = StoreSinkStage()
        pipeline = Pipeline(builder.stages() + [sink],
                            batch_size=1024)
        built = pipeline.run(full_corpus)

        assert [t.to_dict() for t in built] \
            == [t.to_dict() for t in legacy_trajectories]
        # Store contents and document order are identical too.
        assert len(sink.store) == len(legacy_store)
        assert [t.to_dict() for t in sink.store] \
            == [t.to_dict() for t in legacy_store]
        # Secondary indexes agree (doc ids are order-dependent).
        assert sink.store.state_cardinalities() \
            == legacy_store.state_cardinalities()
        assert sink.store.ids_visiting_state("zone60853") \
            == legacy_store.ids_visiting_state("zone60853")
        first = legacy_trajectories[0]
        assert sink.store.ids_active_between(first.t_start,
                                             first.t_end) \
            == legacy_store.ids_active_between(first.t_start,
                                               first.t_end)

    def test_build_all_facade_equals_legacy(self, louvre_space,
                                            full_corpus,
                                            legacy_result):
        legacy_trajectories, _ = legacy_result
        builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
        built, report = builder.build_all(full_corpus)
        assert [t.to_dict() for t in built] \
            == [t.to_dict() for t in legacy_trajectories]
        assert report.trajectories == len(legacy_trajectories)
        # The Section 4.1 cleaning share surfaces through the engine.
        assert 0.08 <= report.cleaning.zero_duration_share <= 0.12

    def test_streaming_mode_same_corpus_content(self, louvre_space,
                                                legacy_result):
        """Streaming segmentation yields the same trajectory *set*.

        Visits come out in stream order rather than (mo, time) order,
        so compare under a canonical sort.
        """
        legacy_trajectories, _ = legacy_result
        builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
        pipeline = Pipeline(builder.stages(streaming=True),
                            batch_size=256)
        built = pipeline.run(louvre_source(louvre_space))

        def canonical(trajectories):
            return sorted((t.to_dict() for t in trajectories),
                          key=lambda d: (d["mo_id"], d["t_start"],
                                         d["t_end"]))

        assert canonical(built) == canonical(legacy_trajectories)
