"""Tests for Definition 3.3: semantic subtrajectories."""

import pytest

from repro.core.annotations import AnnotationSet
from repro.core.subtrajectory import (
    extract_by_entries,
    extract_by_time,
    is_proper_sub_span,
    is_subtrajectory,
)
from tests.conftest import make_trajectory


@pytest.fixture
def main():
    return make_trajectory(states=("a", "b", "c", "d"), start=0.0,
                           dwell=100.0, gap=10.0)


class TestProperSubSpan:
    def test_interior_window(self, main):
        assert is_proper_sub_span(main, 100.0, 300.0)

    def test_left_anchored(self, main):
        assert is_proper_sub_span(main, main.t_start, main.t_end - 1)

    def test_right_anchored(self, main):
        assert is_proper_sub_span(main, main.t_start + 1, main.t_end)

    def test_full_span_rejected(self, main):
        assert not is_proper_sub_span(main, main.t_start, main.t_end)

    def test_empty_window_rejected(self, main):
        assert not is_proper_sub_span(main, 100.0, 100.0)


class TestExtractByEntries:
    def test_middle(self, main):
        sub = extract_by_entries(main, 1, 2)
        assert sub.distinct_state_sequence() == ["b", "c"]
        assert sub.mo_id == main.mo_id

    def test_full_range_rejected(self, main):
        with pytest.raises(ValueError):
            extract_by_entries(main, 0, len(main.trace) - 1)

    def test_out_of_bounds_rejected(self, main):
        with pytest.raises(ValueError):
            extract_by_entries(main, 2, 10)

    def test_annotations_default_to_main(self, main):
        sub = extract_by_entries(main, 0, 1)
        assert sub.annotations == main.annotations

    def test_custom_annotations(self, main):
        sub = extract_by_entries(main, 0, 1,
                                 annotations=AnnotationSet.goals("x"))
        assert sub.annotations != main.annotations

    def test_is_subtrajectory(self, main):
        sub = extract_by_entries(main, 1, 2)
        assert is_subtrajectory(sub, main)


class TestExtractByTime:
    def test_clipped_window(self, main):
        sub = extract_by_time(main, 50.0, 250.0)
        assert sub.t_start == 50.0
        assert sub.t_end == 250.0
        assert sub.trace.entries[0].t_start == 50.0

    def test_unclipped_window(self, main):
        sub = extract_by_time(main, 50.0, 250.0, clip=False)
        assert sub.trace.entries[0].t_start == 0.0

    def test_invalid_window_rejected(self, main):
        with pytest.raises(ValueError):
            extract_by_time(main, main.t_start, main.t_end)

    def test_empty_window_content_rejected(self, main):
        # Window inside a gap between stays.
        with pytest.raises(ValueError):
            extract_by_time(main, 102.0, 108.0)


class TestIsSubtrajectory:
    def test_different_mo_rejected(self, main):
        other = make_trajectory(mo_id="other", states=("b", "c"),
                                start=110.0)
        assert not is_subtrajectory(other, main)

    def test_foreign_states_rejected(self, main):
        rogue = make_trajectory(states=("x", "y"), start=110.0,
                                dwell=50.0)
        assert not is_subtrajectory(rogue, main)

    def test_itself_rejected(self, main):
        assert not is_subtrajectory(main, main)
