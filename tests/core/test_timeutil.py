"""Tests for timestamp helpers."""

from hypothesis import given, strategies as st

from repro.core.timeutil import (
    SECONDS_PER_DAY,
    clock,
    date,
    day_index,
    duration_hms,
    from_clock,
    from_date,
)


def test_from_date_and_back():
    midnight = from_date("19-01-2017")
    assert date(midnight) == "19-01-2017"
    assert clock(midnight) == "00:00:00"


def test_from_clock():
    day = from_date("19-01-2017")
    t = from_clock(day, "11:30:00")
    assert clock(t) == "11:30:00"
    assert t - day == 11 * 3600 + 30 * 60


def test_duration_hms_paper_values():
    assert duration_hms(7 * 3600 + 41 * 60 + 37) == "7h 41m 37s"
    assert duration_hms(5 * 3600 + 39 * 60 + 20) == "5h 39m 20s"
    assert duration_hms(0) == "0h 00m 00s"


def test_day_index():
    epoch = from_date("19-01-2017")
    assert day_index(epoch, epoch) == 0
    assert day_index(epoch + SECONDS_PER_DAY + 1, epoch) == 1


def test_collection_window_length():
    """19-01-2017 .. 29-05-2017 inclusive spans 131 days."""
    start = from_date("19-01-2017")
    end = from_date("29-05-2017")
    assert day_index(end, start) + 1 == 131


@given(st.integers(0, 86_399))
def test_property_clock_roundtrip(seconds):
    day = from_date("01-03-2017")
    assert from_clock(day, clock(day + seconds)) == day + seconds
