"""Tests for trajectory validation against the space model."""

import pytest

from repro.core.annotations import AnnotationSet
from repro.core.builder import UNOBSERVED_TRANSITION_PREFIX
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.core.validation import (
    IssueCode,
    Severity,
    error_count,
    is_consistent,
    validate_trajectory,
)
from repro.indoor.nrg import NodeRelationGraph


@pytest.fixture
def nrg():
    graph = NodeRelationGraph("zones")
    graph.connect("a", "b", edge_id="ab", boundary_id="door-ab",
                  bidirectional=True)
    graph.connect("b", "c", edge_id="bc")  # one-way b→c
    return graph


def trajectory_of(entries):
    return SemanticTrajectory("mo", Trace(entries),
                              AnnotationSet.goals("visit"))


def codes(issues):
    return [issue.code for issue in issues]


class TestStateChecks:
    def test_unknown_state(self, nrg):
        trajectory = trajectory_of([TraceEntry(None, "ghost", 0, 10)])
        issues = validate_trajectory(trajectory, nrg)
        assert IssueCode.UNKNOWN_STATE in codes(issues)
        assert not is_consistent(trajectory, nrg)

    def test_zero_duration_warning(self, nrg):
        trajectory = trajectory_of([TraceEntry(None, "a", 10, 10)])
        issues = validate_trajectory(trajectory, nrg)
        assert IssueCode.ZERO_DURATION in codes(issues)
        assert error_count(issues) == 0  # warning, not error


class TestTransitionChecks:
    def test_valid_transition_clean(self, nrg):
        trajectory = trajectory_of([
            TraceEntry(None, "a", 0, 10),
            TraceEntry("door-ab", "b", 11, 20),
        ])
        assert is_consistent(trajectory, nrg)

    def test_impossible_transition(self, nrg):
        trajectory = trajectory_of([
            TraceEntry(None, "c", 0, 10),
            TraceEntry("bc", "b", 11, 20),  # against the one-way edge
        ])
        issues = validate_trajectory(trajectory, nrg)
        assert IssueCode.IMPOSSIBLE_TRANSITION in codes(issues)

    def test_builder_marked_unobserved(self, nrg):
        trajectory = trajectory_of([
            TraceEntry(None, "a", 0, 10),
            TraceEntry(UNOBSERVED_TRANSITION_PREFIX + "a->c", "c",
                       11, 20),
        ])
        issues = validate_trajectory(trajectory, nrg)
        assert IssueCode.UNOBSERVED_TRANSITION in codes(issues)
        assert error_count(issues) == 0

    def test_wrong_transition_endpoints(self, nrg):
        trajectory = trajectory_of([
            TraceEntry(None, "a", 0, 10),
            TraceEntry("bc", "b", 11, 20),  # 'bc' doesn't join a and b
        ])
        issues = validate_trajectory(trajectory, nrg)
        assert IssueCode.WRONG_TRANSITION_ENDPOINTS in codes(issues)

    def test_same_state_split_not_checked(self, nrg):
        trajectory = trajectory_of([
            TraceEntry(None, "a", 0, 10),
            TraceEntry(None, "a", 11, 20,
                       AnnotationSet.goals("buy")),
        ])
        assert is_consistent(trajectory, nrg)

    def test_no_nrg_skips_graph_checks(self):
        trajectory = trajectory_of([
            TraceEntry(None, "x", 0, 10),
            TraceEntry("any", "y", 11, 20),
        ])
        assert is_consistent(trajectory, None)


class TestTimingChecks:
    def test_overlap_info(self, nrg):
        trajectory = trajectory_of([
            TraceEntry(None, "a", 0, 10),
            TraceEntry("door-ab", "b", 7, 20),
        ])
        issues = validate_trajectory(trajectory, nrg)
        assert IssueCode.DETECTION_OVERLAP in codes(issues)
        assert all(i.severity is Severity.INFO for i in issues)

    def test_hole_warning(self, nrg):
        trajectory = trajectory_of([
            TraceEntry(None, "a", 0, 10),
            TraceEntry("door-ab", "b", 5000, 5100),
        ])
        issues = validate_trajectory(trajectory, nrg,
                                     sampling_rate_seconds=60.0)
        assert IssueCode.TEMPORAL_HOLE in codes(issues)

    def test_semantic_gap_when_annotated(self, nrg):
        trajectory = trajectory_of([
            TraceEntry(None, "a", 0, 10),
            TraceEntry("door-ab", "b", 5000, 5100,
                       AnnotationSet.goals("lunch-break")),
        ])
        issues = validate_trajectory(trajectory, nrg)
        assert IssueCode.SEMANTIC_GAP in codes(issues)
        assert IssueCode.TEMPORAL_HOLE not in codes(issues)

    def test_small_gap_ignored(self, nrg):
        trajectory = trajectory_of([
            TraceEntry(None, "a", 0, 10),
            TraceEntry("door-ab", "b", 40, 100),
        ])
        issues = validate_trajectory(trajectory, nrg,
                                     sampling_rate_seconds=60.0)
        assert IssueCode.TEMPORAL_HOLE not in codes(issues)
        assert IssueCode.SEMANTIC_GAP not in codes(issues)
