"""Tests for Definition 3.4: episodes and episodic segmentations."""

import pytest

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.core.episodes import (
    AnnotationPredicate,
    EndsInStatePredicate,
    Episode,
    EpisodicSegmentation,
    MinDurationPredicate,
    StateSequencePredicate,
    VisitsStatePredicate,
    find_episodes,
    force_exclusive,
    is_episode,
)
from repro.core.subtrajectory import extract_by_entries
from tests.conftest import make_trajectory


@pytest.fixture
def main():
    return make_trajectory(states=("a", "b", "c", "d"), start=0.0,
                           dwell=100.0, gap=10.0)


class TestPredicates:
    def test_state_sequence_exact(self, main):
        sub = extract_by_entries(main, 1, 2,
                                 annotations=AnnotationSet.goals("x"))
        assert StateSequencePredicate(["b", "c"])(sub)
        assert not StateSequencePredicate(["b"])(sub)

    def test_state_sequence_contained(self, main):
        predicate = StateSequencePredicate(["b", "c"], exact=False)
        assert predicate(main)
        assert not StateSequencePredicate(["c", "b"], exact=False)(main)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            StateSequencePredicate([])

    def test_visits_and_ends(self, main):
        assert VisitsStatePredicate("c")(main)
        assert not VisitsStatePredicate("z")(main)
        assert EndsInStatePredicate("d")(main)
        assert not EndsInStatePredicate("a")(main)

    def test_min_duration(self, main):
        assert MinDurationPredicate(100)(main)
        assert not MinDurationPredicate(10_000)(main)

    def test_annotation_predicate(self, main):
        assert AnnotationPredicate(AnnotationKind.GOAL, "visit")(main)
        assert not AnnotationPredicate(AnnotationKind.GOAL, "buy")(main)

    def test_combinators(self, main):
        both = VisitsStatePredicate("a") & VisitsStatePredicate("d")
        either = VisitsStatePredicate("z") | VisitsStatePredicate("a")
        negated = ~VisitsStatePredicate("z")
        assert both(main)
        assert either(main)
        assert negated(main)
        assert "and" in both.name


class TestIsEpisode:
    def test_valid_episode(self, main):
        sub = extract_by_entries(main, 1, 2,
                                 annotations=AnnotationSet.goals("x"))
        assert is_episode(sub, main, VisitsStatePredicate("b"))

    def test_same_annotations_rejected(self, main):
        sub = extract_by_entries(main, 1, 2)  # inherits A_traj
        assert not is_episode(sub, main, VisitsStatePredicate("b"))

    def test_failed_predicate_rejected(self, main):
        sub = extract_by_entries(main, 1, 2,
                                 annotations=AnnotationSet.goals("x"))
        assert not is_episode(sub, main, VisitsStatePredicate("z"))


class TestFindEpisodes:
    def test_finds_matching_span(self, main):
        episodes = find_episodes(
            main, StateSequencePredicate(["b", "c"]),
            AnnotationSet.goals("middle"))
        assert len(episodes) == 1
        assert episodes[0].states() == ["b", "c"]
        assert episodes[0].annotations == AnnotationSet.goals("middle")

    def test_rejects_matching_annotations(self, main):
        with pytest.raises(ValueError):
            find_episodes(main, VisitsStatePredicate("b"),
                          main.annotations)

    def test_maximal_only(self, main):
        episodes = find_episodes(
            main, StateSequencePredicate(["b", "c"], exact=False),
            AnnotationSet.goals("x"))
        # Only maximal spans kept: no episode strictly inside another.
        for episode in episodes:
            others = [e for e in episodes if e is not episode]
            assert not any(
                o.t_start <= episode.t_start
                and episode.t_end <= o.t_end for o in others)

    def test_non_maximal_kept_when_requested(self, main):
        all_episodes = find_episodes(
            main, VisitsStatePredicate("b"),
            AnnotationSet.goals("x"), maximal_only=False)
        maximal = find_episodes(
            main, VisitsStatePredicate("b"), AnnotationSet.goals("x"))
        assert len(all_episodes) > len(maximal)

    def test_label_defaults_to_predicate_name(self, main):
        episodes = find_episodes(
            main, VisitsStatePredicate("b"), AnnotationSet.goals("x"))
        assert episodes[0].label == "visits=b"


class TestEpisodicSegmentation:
    def _episode(self, main, first, last, label):
        sub = extract_by_entries(
            main, first, last, annotations=AnnotationSet.goals(label))
        return Episode(sub, label)

    def test_covers_main(self, main):
        segmentation = EpisodicSegmentation(main, [
            self._episode(main, 0, 2, "head"),
            self._episode(main, 1, 3, "tail"),
        ])
        assert segmentation.covers_main()

    def test_gap_breaks_coverage(self, main):
        segmentation = EpisodicSegmentation(main, [
            self._episode(main, 0, 0, "head"),
            self._episode(main, 3, 3, "tail"),
        ])
        assert not segmentation.covers_main()
        assert segmentation.covers_main(tolerance=1000.0)

    def test_overlap_detection(self, main):
        segmentation = EpisodicSegmentation(main, [
            self._episode(main, 0, 2, "head"),
            self._episode(main, 1, 3, "tail"),
        ])
        assert segmentation.has_overlaps()
        pairs = segmentation.overlapping_pairs()
        assert len(pairs) == 1
        assert {pairs[0][0].label, pairs[0][1].label} == {"head", "tail"}

    def test_episodes_at_multilabel(self, main):
        segmentation = EpisodicSegmentation(main, [
            self._episode(main, 0, 2, "head"),
            self._episode(main, 1, 3, "tail"),
        ])
        midpoint = (main.trace.entries[1].t_start
                    + main.trace.entries[1].t_end) / 2
        labels = {e.label for e in segmentation.episodes_at(midpoint)}
        assert labels == {"head", "tail"}

    def test_labels_in_order(self, main):
        segmentation = EpisodicSegmentation(main, [
            self._episode(main, 2, 3, "late"),
            self._episode(main, 0, 1, "early"),
        ])
        assert segmentation.labels() == ["early", "late"]

    def test_tagged_share_bounds(self, main):
        full = EpisodicSegmentation(main, [
            self._episode(main, 0, 2, "x"),
            self._episode(main, 1, 3, "y"),
        ])
        assert 0.9 <= full.tagged_share() <= 1.0
        empty = EpisodicSegmentation(main, [])
        assert empty.tagged_share() == 0.0

    def test_force_exclusive_drops_overlaps(self, main):
        segmentation = EpisodicSegmentation(main, [
            self._episode(main, 0, 2, "head"),
            self._episode(main, 1, 3, "tail"),
        ])
        exclusive = force_exclusive(segmentation)
        assert len(exclusive) == 1
        assert not exclusive.has_overlaps()
        assert exclusive.tagged_share() <= segmentation.tagged_share()
