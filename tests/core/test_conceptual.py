"""Tests for conceptual (focus-of-attention) trajectories."""

import pytest

from repro.core.annotations import AnnotationKind
from repro.core.conceptual import (
    AttentionExtractor,
    AttentionReport,
    attended_exhibits,
    attention_profile,
    physical_vs_conceptual,
)
from repro.indoor.cells import Cell, CellSpace
from repro.positioning.detection import PositionFix
from repro.spatial.geometry import Point, Polygon
from tests.conftest import make_trajectory


@pytest.fixture
def roi_space():
    space = CellSpace("rois", validate_geometry=False)
    space.add_cell(Cell("roi-1", name="Mona Lisa",
                        geometry=Polygon.rectangle(0, 0, 4, 4),
                        floor=0))
    space.add_cell(Cell("roi-2", name="Venus",
                        geometry=Polygon.rectangle(10, 0, 14, 4),
                        floor=0))
    return space


def fixes_at(points, start=0.0, step=2.0, floor=0):
    return [PositionFix(start + i * step, Point(x, y), floor)
            for i, (x, y) in enumerate(points)]


class TestAttentionExtractor:
    def test_basic_extraction(self, roi_space):
        extractor = AttentionExtractor(roi_space,
                                       min_attention_seconds=4.0)
        # 5 fixes inside roi-1 (8 s), 3 in the void, 4 in roi-2 (6 s).
        points = [(2, 2)] * 5 + [(7, 2)] * 3 + [(12, 2)] * 4
        report = AttentionReport()
        conceptual = extractor.extract("mo", fixes_at(points),
                                       report=report)
        assert conceptual is not None
        assert conceptual.distinct_state_sequence() == ["roi-1",
                                                        "roi-2"]
        assert report.attention_spans == 2
        assert 0 < report.focus_share < 1

    def test_glances_dropped(self, roi_space):
        extractor = AttentionExtractor(roi_space,
                                       min_attention_seconds=10.0)
        points = [(2, 2)] * 3 + [(7, 2)] * 3  # only 4 s in roi-1
        assert extractor.extract("mo", fixes_at(points)) is None

    def test_conceptual_annotation(self, roi_space):
        extractor = AttentionExtractor(roi_space,
                                       min_attention_seconds=4.0)
        conceptual = extractor.extract("mo",
                                       fixes_at([(2, 2)] * 5))
        assert conceptual.annotations.has(AnnotationKind.CUSTOM,
                                          "conceptual")
        assert conceptual.annotations.has(AnnotationKind.GOAL, "attend")
        entry = conceptual.trace.entries[0]
        assert entry.annotations.has(AnnotationKind.PLACE, "Mona Lisa")

    def test_gap_splits_span(self, roi_space):
        extractor = AttentionExtractor(roi_space,
                                       min_attention_seconds=1.0,
                                       max_gap=5.0)
        fixes = (fixes_at([(2, 2)] * 3, start=0.0)
                 + fixes_at([(2, 2)] * 3, start=100.0))
        conceptual = extractor.extract("mo", fixes)
        assert len(conceptual.trace) == 2

    def test_wrong_floor_ignored(self, roi_space):
        extractor = AttentionExtractor(roi_space)
        assert extractor.extract(
            "mo", fixes_at([(2, 2)] * 5, floor=3)) is None

    def test_unordered_fixes_rejected(self, roi_space):
        extractor = AttentionExtractor(roi_space)
        fixes = [PositionFix(10.0, Point(2, 2), 0),
                 PositionFix(5.0, Point(2, 2), 0)]
        with pytest.raises(ValueError):
            extractor.extract("mo", fixes)


class TestAnalysis:
    def test_attended_exhibits_order(self, roi_space):
        extractor = AttentionExtractor(roi_space,
                                       min_attention_seconds=2.0)
        points = [(12, 2)] * 3 + [(2, 2)] * 3 + [(12, 2)] * 3
        conceptual = extractor.extract("mo", fixes_at(points))
        assert attended_exhibits(conceptual) == ["roi-2", "roi-1"]

    def test_attention_profile_accumulates(self, roi_space):
        extractor = AttentionExtractor(roi_space,
                                       min_attention_seconds=2.0)
        points = [(12, 2)] * 3 + [(2, 2)] * 3 + [(12, 2)] * 3
        conceptual = extractor.extract("mo", fixes_at(points))
        profile = attention_profile(conceptual)
        assert profile["roi-2"] == pytest.approx(8.0)
        assert profile["roi-1"] == pytest.approx(4.0)

    def test_physical_vs_conceptual(self, roi_space):
        extractor = AttentionExtractor(roi_space,
                                       min_attention_seconds=2.0)
        conceptual = extractor.extract("mo", fixes_at([(2, 2)] * 6))
        physical = make_trajectory(states=("room-x",), dwell=100.0)
        contrast = physical_vs_conceptual(physical, conceptual)
        assert contrast["physical_span"] == 100.0
        assert contrast["attended_exhibits"] == 1.0
        assert 0 < contrast["focus_ratio"] <= 1.0
