"""Tests for Definitions 3.1/3.2: traces and semantic trajectories."""

import pytest
from hypothesis import given, strategies as st

from repro.core.annotations import AnnotationSet
from repro.core.trajectory import (
    DETECTION_OVERLAP_TOLERANCE,
    SemanticTrajectory,
    Trace,
    TraceEntry,
    TraceValidationError,
)
from repro.core.timeutil import from_clock, from_date
from tests.conftest import make_trajectory


class TestTraceEntry:
    def test_requires_state(self):
        with pytest.raises(ValueError):
            TraceEntry(None, "", 0, 1)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry(None, "a", 10, 5)

    def test_duration(self):
        assert TraceEntry(None, "a", 10, 25).duration == 15
        assert TraceEntry(None, "a", 10, 10).duration == 0

    def test_time_predicates(self):
        entry = TraceEntry(None, "a", 10, 20)
        assert entry.contains_time(15)
        assert entry.contains_time(10) and entry.contains_time(20)
        assert not entry.contains_time(21)
        assert entry.overlaps_time(15, 30)
        assert not entry.overlaps_time(21, 30)

    def test_describe_matches_paper_notation(self):
        day = from_date("15-02-2017")
        entry = TraceEntry("door012", "hall003",
                           from_clock(day, "11:32:31"),
                           from_clock(day, "11:40:00"))
        assert entry.describe() \
            == "(door012, hall003, 11:32:31, 11:40:00, ∅)"

    def test_first_entry_underscore(self):
        entry = TraceEntry(None, "room001", 0, 1)
        assert entry.describe().startswith("(_, room001")

    def test_dict_roundtrip(self):
        entry = TraceEntry("d", "a", 1.0, 2.0,
                           AnnotationSet.goals("visit"))
        assert TraceEntry.from_dict(entry.to_dict()) == entry


class TestTraceValidation:
    def test_out_of_order_rejected(self):
        with pytest.raises(TraceValidationError):
            Trace([TraceEntry(None, "a", 100, 200),
                   TraceEntry("d", "b", 50, 90)])

    def test_bounded_overlap_allowed(self):
        """The paper's own example overlaps room001/hall003 by 4 s."""
        trace = Trace([
            TraceEntry(None, "a", 0, 100),
            TraceEntry("d", "b", 100 - 4, 200),
        ])
        assert len(trace) == 2

    def test_excessive_overlap_rejected(self):
        with pytest.raises(TraceValidationError):
            Trace([TraceEntry(None, "a", 0, 100),
                   TraceEntry("d", "b",
                              100 - DETECTION_OVERLAP_TOLERANCE - 1,
                              200)])

    def test_state_change_requires_transition(self):
        with pytest.raises(TraceValidationError):
            Trace([TraceEntry(None, "a", 0, 10),
                   TraceEntry(None, "b", 20, 30)])

    def test_same_state_split_may_omit_transition(self):
        trace = Trace([TraceEntry(None, "a", 0, 10),
                       TraceEntry(None, "a", 11, 30)])
        assert len(trace) == 2


class TestTraceViews:
    def test_states_and_distinct_sequence(self):
        trace = Trace([
            TraceEntry(None, "a", 0, 10),
            TraceEntry(None, "a", 11, 20),  # semantic split
            TraceEntry("d", "b", 21, 30),
        ])
        assert trace.states() == ["a", "a", "b"]
        assert trace.distinct_state_sequence() == ["a", "b"]
        assert trace.transitions() == [("a", "b")]

    def test_durations(self):
        trace = Trace([TraceEntry(None, "a", 0, 10),
                       TraceEntry("d", "b", 15, 30)])
        assert trace.total_duration() == 25
        assert trace.span() == (0, 30)

    def test_empty_trace_span_raises(self):
        with pytest.raises(ValueError):
            Trace([]).span()

    def test_entry_at(self):
        trace = Trace([TraceEntry(None, "a", 0, 10),
                       TraceEntry("d", "b", 8, 30)])
        assert trace.entry_at(5).state == "a"
        # In the overlap region the newer detection wins.
        assert trace.entry_at(9).state == "b"
        assert trace.entry_at(50) is None

    def test_entries_overlapping(self):
        trace = Trace([TraceEntry(None, "a", 0, 10),
                       TraceEntry("d", "b", 20, 30)])
        assert len(trace.entries_overlapping(5, 25)) == 2
        assert len(trace.entries_overlapping(11, 19)) == 0

    def test_time_in_state(self):
        trace = Trace([TraceEntry(None, "a", 0, 10),
                       TraceEntry("d", "b", 10, 30),
                       TraceEntry("d2", "a", 30, 35)])
        assert trace.time_in_state("a") == 15
        assert trace.visits_state("b")
        assert not trace.visits_state("c")

    def test_slicing_returns_trace(self):
        trace = make_trajectory(states=("a", "b", "c")).trace
        assert isinstance(trace[0:2], Trace)
        assert len(trace[0:2]) == 2
        assert trace[1].state == "b"

    def test_list_roundtrip(self):
        trace = make_trajectory().trace
        assert Trace.from_list(trace.to_list()) == trace

    def test_insert_revalidates(self):
        trace = Trace([TraceEntry(None, "a", 0, 10),
                       TraceEntry("d", "b", 50, 60)])
        extended = trace.with_entry_inserted(
            1, TraceEntry("d2", "c", 20, 40))
        assert extended.states() == ["a", "c", "b"]
        with pytest.raises(TraceValidationError):
            trace.with_entry_inserted(
                1, TraceEntry("d2", "c", 200, 300))


class TestSemanticTrajectory:
    def test_requires_mo_id(self):
        trace = make_trajectory().trace
        with pytest.raises(ValueError):
            SemanticTrajectory("", trace, AnnotationSet.goals("visit"))

    def test_requires_nonempty_trace(self):
        with pytest.raises(ValueError):
            SemanticTrajectory("mo", Trace([]),
                               AnnotationSet.goals("visit"))

    def test_definition_31_requires_annotations(self):
        trace = make_trajectory().trace
        with pytest.raises(ValueError) as excinfo:
            SemanticTrajectory("mo", trace, AnnotationSet.empty())
        assert "A_traj" in str(excinfo.value)

    def test_span_defaults_to_trace(self):
        trajectory = make_trajectory(start=1000.0, dwell=100.0, gap=10.0,
                                     states=("a", "b"))
        assert trajectory.t_start == 1000.0
        assert trajectory.t_end == 1000.0 + 100 + 10 + 100

    def test_explicit_span_must_enclose(self):
        trace = make_trajectory().trace
        with pytest.raises(ValueError):
            SemanticTrajectory("mo", trace,
                               AnnotationSet.goals("visit"),
                               t_start=trace.span()[0] + 1)

    def test_key_and_duration(self):
        trajectory = make_trajectory(mo_id="v42")
        assert trajectory.key[0] == "v42"
        assert trajectory.duration == trajectory.t_end \
            - trajectory.t_start

    def test_state_at(self):
        trajectory = make_trajectory(states=("a", "b"), start=0.0,
                                     dwell=10.0, gap=5.0)
        assert trajectory.state_at(5.0) == "a"
        assert trajectory.state_at(20.0) == "b"
        assert trajectory.state_at(12.0) is None  # in the gap

    def test_with_annotations(self):
        trajectory = make_trajectory()
        updated = trajectory.with_annotations(AnnotationSet.goals("buy"))
        assert updated.annotations != trajectory.annotations
        assert updated.trace == trajectory.trace

    def test_equality_and_hash(self):
        a = make_trajectory()
        b = make_trajectory()
        assert a == b
        assert hash(a) == hash(b)
        assert a != make_trajectory(mo_id="other")

    def test_dict_roundtrip(self):
        trajectory = make_trajectory()
        restored = SemanticTrajectory.from_dict(trajectory.to_dict())
        assert restored == trajectory


@given(st.integers(1, 8), st.floats(1.0, 1000.0), st.floats(0.0, 100.0))
def test_property_trace_construction(n_states, dwell, gap):
    """Linear traces of any shape satisfy the invariants."""
    states = tuple("s{}".format(i) for i in range(n_states))
    trajectory = make_trajectory(states=states, dwell=dwell, gap=gap)
    assert len(trajectory.trace) == n_states
    assert trajectory.distinct_state_sequence() == list(states)
    assert trajectory.duration >= trajectory.trace.total_duration() - 1e-6
