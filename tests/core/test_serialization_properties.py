"""Property tests: serialisation is lossless for arbitrary trajectories."""

import json

from hypothesis import given, settings, strategies as st

from repro.core.annotations import (
    AnnotationKind,
    AnnotationSet,
    SemanticAnnotation,
)
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry

annotation_strategy = st.builds(
    SemanticAnnotation,
    kind=st.sampled_from(list(AnnotationKind)),
    value=st.one_of(st.sampled_from(["visit", "buy", "exit"]),
                    st.integers(-5, 5), st.booleans()),
    link=st.one_of(st.none(), st.sampled_from(["obj1", "obj2"])),
    source=st.one_of(st.none(), st.just("test")),
    confidence=st.one_of(st.none(),
                         st.integers(0, 100).map(lambda v: v / 100.0)),
)

annotation_sets = st.lists(annotation_strategy, max_size=4).map(
    AnnotationSet)


@st.composite
def trajectories(draw):
    entry_count = draw(st.integers(1, 6))
    entries = []
    t = float(draw(st.integers(0, 1_000_000)))
    previous_state = None
    for index in range(entry_count):
        state = draw(st.sampled_from(["s1", "s2", "s3"]))
        dwell = float(draw(st.integers(0, 5_000)))
        gap = float(draw(st.integers(0, 500)))
        transition = None
        if index > 0 and state != previous_state:
            transition = "e{}".format(index)
        entries.append(TraceEntry(
            transition, state, t, t + dwell,
            draw(annotation_sets)))
        t += dwell + gap
        previous_state = state
    annotations = draw(annotation_sets)
    if not annotations:
        annotations = AnnotationSet.goals("visit")
    return SemanticTrajectory("mo-x", Trace(entries), annotations)


@settings(max_examples=100, deadline=None)
@given(trajectories())
def test_property_dict_roundtrip(trajectory):
    restored = SemanticTrajectory.from_dict(trajectory.to_dict())
    assert restored == trajectory


@settings(max_examples=100, deadline=None)
@given(trajectories())
def test_property_json_roundtrip(trajectory):
    """The dict form must survive actual JSON encoding."""
    encoded = json.dumps(trajectory.to_dict())
    restored = SemanticTrajectory.from_dict(json.loads(encoded))
    assert restored == trajectory
    assert restored.distinct_state_sequence() \
        == trajectory.distinct_state_sequence()


@settings(max_examples=50, deadline=None)
@given(trajectories())
def test_property_views_consistent(trajectory):
    """Derived views agree with each other on any trajectory."""
    states = trajectory.states()
    distinct = trajectory.distinct_state_sequence()
    assert len(distinct) <= len(states)
    assert set(distinct) == set(states)
    assert len(trajectory.trace.transitions()) == len(distinct) - 1
    assert trajectory.trace.total_duration() \
        <= trajectory.duration + 1e-9
