"""Tests for the detection-record → trajectory builder."""

import pytest

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.core.builder import (
    DetectionRecord,
    TrajectoryBuilder,
    UNOBSERVED_TRANSITION_PREFIX,
)
from repro.indoor.nrg import NodeRelationGraph


@pytest.fixture
def nrg():
    graph = NodeRelationGraph("zones")
    graph.connect("a", "b", edge_id="ab", boundary_id="door-ab",
                  bidirectional=True)
    graph.connect("b", "c", edge_id="bc", bidirectional=True)
    return graph


@pytest.fixture
def builder(nrg):
    return TrajectoryBuilder(nrg, visit_gap_seconds=3600.0)


def rec(mo, state, start, end, visit=None):
    return DetectionRecord(mo, state, start, end, visit)


class TestCleaning:
    def test_zero_duration_dropped(self, builder):
        kept, report = builder.clean([
            rec("m", "a", 0, 0),
            rec("m", "a", 10, 20),
        ])
        assert len(kept) == 1
        assert report.dropped_zero_duration == 1
        assert report.zero_duration_share == 0.5

    def test_negative_duration_dropped(self, builder):
        _, report = builder.clean([rec("m", "a", 10, 5)])
        assert report.dropped_negative_duration == 1
        assert report.kept == 0

    def test_unknown_state_dropped(self, builder):
        kept, report = builder.clean([rec("m", "ghost", 0, 10)])
        assert kept == []
        assert report.dropped_unknown_state == 1

    def test_unknown_state_kept_when_configured(self, nrg):
        builder = TrajectoryBuilder(nrg, drop_unknown_states=False)
        kept, _ = builder.clean([rec("m", "ghost", 0, 10)])
        assert len(kept) == 1

    def test_duplicate_record_dropped_as_contained(self, builder):
        kept, report = builder.clean([
            rec("m", "a", 0, 100),
            rec("m", "a", 0, 100),   # exact duplicate upload
            rec("m", "a", 20, 80),   # fully contained echo
        ])
        assert len(kept) == 1
        assert report.dropped_contained == 2

    def test_overlapping_record_clipped(self, builder):
        kept, report = builder.clean([
            rec("m", "a", 0, 100),
            rec("m", "b", 50, 200),  # starts 50s early
        ])
        assert report.clipped_overlaps == 1
        assert kept[1].t_start == 100
        assert kept[1].t_end == 200

    def test_bounded_overlap_untouched(self, builder):
        """Overlaps within the sensing tolerance are a modelled
        phenomenon, not an error — they pass through unchanged."""
        kept, report = builder.clean([
            rec("m", "a", 0, 100),
            rec("m", "b", 96, 200),
        ])
        assert report.clipped_overlaps == 0
        assert kept[1].t_start == 96

    def test_different_mos_never_clipped(self, builder):
        kept, report = builder.clean([
            rec("m1", "a", 0, 100),
            rec("m2", "b", 50, 200),
        ])
        assert report.clipped_overlaps == 0
        assert len(kept) == 2

    def test_sorting(self, builder):
        kept, _ = builder.clean([
            rec("m2", "a", 0, 10),
            rec("m1", "b", 50, 60),
            rec("m1", "a", 0, 10),
        ])
        assert [(r.mo_id, r.t_start) for r in kept] \
            == [("m1", 0), ("m1", 50), ("m2", 0)]


class TestVisitSplitting:
    def test_gap_splits_visits(self, builder):
        records, _ = builder.clean([
            rec("m", "a", 0, 100),
            rec("m", "b", 200, 300),
            rec("m", "a", 100_000, 100_100),
        ])
        visits = builder.split_visits(records)
        assert len(visits) == 2
        assert len(visits[0]) == 2

    def test_visit_id_grouping(self, builder):
        records, _ = builder.clean([
            rec("m", "a", 0, 100, visit="v1"),
            rec("m", "b", 200, 300, visit="v2"),
        ])
        visits = builder.split_visits(records)
        assert len(visits) == 2

    def test_different_mos_never_merge(self, builder):
        records, _ = builder.clean([
            rec("m1", "a", 0, 100),
            rec("m2", "b", 100, 200),
        ])
        assert len(builder.split_visits(records)) == 2


class TestBuild:
    def test_transitions_resolved(self, builder):
        trajectory = builder.build_trajectory([
            rec("m", "a", 0, 100),
            rec("m", "b", 110, 200),
        ])
        assert trajectory.trace.entries[0].transition is None
        assert trajectory.trace.entries[1].transition == "door-ab"

    def test_edge_id_used_without_boundary(self, builder):
        trajectory = builder.build_trajectory([
            rec("m", "b", 0, 100),
            rec("m", "c", 110, 200),
        ])
        assert trajectory.trace.entries[1].transition == "bc"

    def test_unobserved_transition_marked(self, builder):
        trajectory = builder.build_trajectory([
            rec("m", "a", 0, 100),
            rec("m", "c", 110, 200),  # no direct a→c edge
        ])
        assert trajectory.trace.entries[1].transition.startswith(
            UNOBSERVED_TRANSITION_PREFIX)

    def test_default_goal_annotation(self, builder):
        trajectory = builder.build_trajectory([rec("m", "a", 0, 100)])
        assert trajectory.annotations.has(AnnotationKind.GOAL, "visit")

    def test_custom_annotations(self, builder):
        trajectory = builder.build_trajectory(
            [rec("m", "a", 0, 100)],
            annotations=AnnotationSet.goals("maintenance"))
        assert trajectory.annotations.has(AnnotationKind.GOAL,
                                          "maintenance")

    def test_empty_visit_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.build_trajectory([])

    def test_mixed_mos_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.build_trajectory([
                rec("m1", "a", 0, 100),
                rec("m2", "b", 110, 200),
            ])

    def test_build_all_report(self, builder):
        trajectories, report = builder.build_all([
            rec("m", "a", 0, 100),
            rec("m", "b", 110, 200),
            rec("m", "b", 205, 205),       # zero duration
            rec("m2", "a", 0, 50),
            rec("m2", "c", 60, 100),       # unobserved transition
        ])
        assert report.trajectories == 2
        assert report.cleaning.dropped_zero_duration == 1
        assert report.unobserved_transitions == 1
        assert report.entries == 4
        assert report.transitions == 2
