"""Tests for the event-based split/merge semantics (Section 3.3)."""

import pytest

from repro.core.annotations import AnnotationSet
from repro.core.events import (
    SemanticEvent,
    SemanticEventLog,
    apply_semantic_event,
    is_event_minimal,
    merge_redundant_entries,
    split_entry,
)
from repro.core.trajectory import Trace, TraceEntry
from repro.core.timeutil import clock, from_clock, from_date
from tests.conftest import make_trajectory


@pytest.fixture
def room006_entry():
    """The paper's room006 stay: 14:12:00 → 14:28:00, goal visit."""
    day = from_date("15-02-2017")
    return TraceEntry("door005", "room006",
                      from_clock(day, "14:12:00"),
                      from_clock(day, "14:28:00"),
                      AnnotationSet.goals("visit")), day


class TestSplitEntry:
    def test_paper_example(self, room006_entry):
        """Reproduce the Section 3.3 split verbatim."""
        entry, day = room006_entry
        split_time = from_clock(day, "14:21:45")
        first, second = split_entry(
            entry, split_time, AnnotationSet.goals("visit", "buy"))
        assert clock(first.t_start) == "14:12:00"
        assert clock(first.t_end) == "14:21:45"
        assert clock(second.t_start) == "14:21:46"  # +1 s convention
        assert clock(second.t_end) == "14:28:00"
        assert first.transition == "door005"
        assert second.transition is None  # the paper's "_"
        assert second.annotations == AnnotationSet.goals("visit", "buy")

    def test_split_outside_stay_rejected(self, room006_entry):
        entry, day = room006_entry
        with pytest.raises(ValueError):
            split_entry(entry, from_clock(day, "15:00:00"),
                        AnnotationSet.goals("buy"))

    def test_no_change_rejected(self, room006_entry):
        entry, day = room006_entry
        with pytest.raises(ValueError):
            split_entry(entry, from_clock(day, "14:20:00"),
                        AnnotationSet.goals("visit"))


class TestApplyEvent:
    def test_split_within_trajectory(self):
        trajectory = make_trajectory(states=("a", "b"), start=0.0,
                                     dwell=100.0)
        event = SemanticEvent(50.0, AnnotationSet.goals("pause"))
        updated = apply_semantic_event(trajectory, event)
        assert len(updated.trace) == 3
        assert updated.trace.states() == ["a", "a", "b"]
        assert updated.distinct_state_sequence() == ["a", "b"]

    def test_event_in_gap_rejected(self):
        trajectory = make_trajectory(states=("a", "b"), start=0.0,
                                     dwell=100.0, gap=10.0)
        with pytest.raises(ValueError):
            apply_semantic_event(
                trajectory,
                SemanticEvent(105.0, AnnotationSet.goals("x")))


class TestMerge:
    def test_merges_same_state_same_semantics(self):
        trace = Trace([
            TraceEntry(None, "a", 0, 10),
            TraceEntry(None, "a", 10.5, 20),
        ])
        merged = merge_redundant_entries(trace)
        assert len(merged) == 1
        assert merged.entries[0].t_end == 20

    def test_keeps_semantic_change(self):
        trace = Trace([
            TraceEntry(None, "a", 0, 10),
            TraceEntry(None, "a", 10.5, 20, AnnotationSet.goals("buy")),
        ])
        assert len(merge_redundant_entries(trace)) == 2

    def test_keeps_distant_fragments(self):
        trace = Trace([
            TraceEntry(None, "a", 0, 10),
            TraceEntry(None, "a", 500, 600),
        ])
        assert len(merge_redundant_entries(trace)) == 2
        assert len(merge_redundant_entries(trace, max_gap=1000)) == 1

    def test_split_then_merge_roundtrip(self):
        trajectory = make_trajectory(states=("a",), dwell=100.0)
        event = SemanticEvent(
            trajectory.t_start + 50.0, AnnotationSet.goals("late"))
        split = apply_semantic_event(trajectory, event)
        assert len(split.trace) == 2
        # Strip the new annotations; the merge restores one stay.
        stripped = Trace([
            TraceEntry(e.transition, e.state, e.t_start, e.t_end)
            for e in split.trace])
        assert len(merge_redundant_entries(stripped)) == 1

    def test_is_event_minimal(self):
        minimal = Trace([TraceEntry(None, "a", 0, 10),
                         TraceEntry("d", "b", 10, 20)])
        assert is_event_minimal(minimal)
        redundant = Trace([TraceEntry(None, "a", 0, 10),
                           TraceEntry(None, "a", 10.5, 20)])
        assert not is_event_minimal(redundant)


class TestEventLog:
    def test_events_sorted(self):
        log = SemanticEventLog([
            SemanticEvent(50.0, AnnotationSet.goals("b")),
            SemanticEvent(10.0, AnnotationSet.goals("a")),
        ])
        log.append(SemanticEvent(30.0, AnnotationSet.goals("c")))
        assert [e.t for e in log] == [10.0, 30.0, 50.0]
        assert len(log) == 3

    def test_apply_to_multiple_events(self):
        trajectory = make_trajectory(states=("a", "b"), start=0.0,
                                     dwell=100.0)
        log = SemanticEventLog([
            SemanticEvent(40.0, AnnotationSet.goals("first")),
            SemanticEvent(150.0, AnnotationSet.goals("second")),
        ])
        enriched = log.apply_to(trajectory)
        assert len(enriched.trace) == 4

    def test_unmatched_skipped_by_default(self):
        trajectory = make_trajectory(states=("a",), dwell=10.0)
        log = SemanticEventLog(
            [SemanticEvent(9999.0, AnnotationSet.goals("x"))])
        assert log.apply_to(trajectory) == trajectory

    def test_unmatched_raises_when_strict(self):
        trajectory = make_trajectory(states=("a",), dwell=10.0)
        log = SemanticEventLog(
            [SemanticEvent(9999.0, AnnotationSet.goals("x"))])
        with pytest.raises(ValueError):
            log.apply_to(trajectory, skip_unmatched=False)
