"""Tests for hierarchy lifting and missing-presence inference."""

import pytest

from repro.core.annotations import AnnotationKind, AnnotationSet
from repro.core.inference import (
    InferenceReport,
    LiftReport,
    coverage_gap_states,
    infer_missing_presence,
    lift_trajectory,
    multi_granularity_views,
)
from repro.core.trajectory import SemanticTrajectory, Trace, TraceEntry
from repro.indoor.hierarchy import LayerHierarchy, add_hierarchy_edge
from repro.indoor.multilayer import LayeredIndoorGraph
from repro.indoor.nrg import NodeRelationGraph
from tests.conftest import make_trajectory


@pytest.fixture
def hierarchy():
    """floor F0/F1; rooms r1,r2 on F0, r3 on F1; r4 is an orphan."""
    graph = LayeredIndoorGraph("g")
    floors = NodeRelationGraph("floor")
    floors.connect("F0", "F1", bidirectional=True)
    rooms = NodeRelationGraph("room")
    rooms.connect("r1", "r2", bidirectional=True)
    rooms.connect("r2", "r3", bidirectional=True)
    rooms.add_node("r4")
    graph.add_layer(floors)
    graph.add_layer(rooms)
    add_hierarchy_edge(graph, "F0", "r1")
    add_hierarchy_edge(graph, "F0", "r2")
    add_hierarchy_edge(graph, "F1", "r3")
    return LayerHierarchy(graph, ["floor", "room"])


class TestLifting:
    def test_merges_same_floor(self, hierarchy):
        trajectory = make_trajectory(states=("r1", "r2", "r3"))
        lifted = lift_trajectory(trajectory, hierarchy, "floor")
        assert lifted.distinct_state_sequence() == ["F0", "F1"]
        assert len(lifted.trace) == 2

    def test_report_counters(self, hierarchy):
        trajectory = make_trajectory(states=("r1", "r4", "r2"))
        report = LiftReport()
        lifted = lift_trajectory(trajectory, hierarchy, "floor",
                                 report=report)
        assert report.input_entries == 3
        assert report.dropped_unliftable == 1  # the orphan r4
        assert lifted.distinct_state_sequence() == ["F0"]

    def test_annotations_preserved(self, hierarchy):
        trajectory = make_trajectory(states=("r1", "r3"))
        lifted = lift_trajectory(trajectory, hierarchy, "floor")
        assert lifted.annotations == trajectory.annotations

    def test_all_orphans_raises(self, hierarchy):
        trajectory = make_trajectory(states=("r4",))
        with pytest.raises(ValueError):
            lift_trajectory(trajectory, hierarchy, "floor")

    def test_merge_gap_respected(self, hierarchy):
        trajectory = make_trajectory(states=("r1", "r2"), gap=500.0)
        merged = lift_trajectory(trajectory, hierarchy, "floor")
        assert len(merged.trace) == 1
        fragmented = lift_trajectory(trajectory, hierarchy, "floor",
                                     merge_gap=100.0)
        assert len(fragmented.trace) == 2

    def test_multi_granularity_views(self, hierarchy):
        trajectory = make_trajectory(states=("r1", "r3"))
        views = multi_granularity_views(trajectory, hierarchy)
        assert set(views) == {"room", "floor"}
        assert views["room"] is trajectory
        assert views["floor"].distinct_state_sequence() == ["F0", "F1"]


@pytest.fixture
def chain_nrg():
    """a → b → c → d chain plus a direct shortcut a→x→d."""
    graph = NodeRelationGraph("chain")
    graph.connect("a", "b", boundary_id="ab", bidirectional=True)
    graph.connect("b", "c", boundary_id="bc", bidirectional=True)
    graph.connect("c", "d", boundary_id="cd", bidirectional=True)
    return graph


class TestMissingPresence:
    def test_single_gap_filled(self, chain_nrg):
        trajectory = _sparse(("a", "c"))
        report = InferenceReport()
        repaired = infer_missing_presence(trajectory, chain_nrg,
                                          report=report)
        assert repaired.distinct_state_sequence() == ["a", "b", "c"]
        assert report.tuples_inserted == 1
        assert report.gaps_examined == 1

    def test_inferred_annotation_attached(self, chain_nrg):
        repaired = infer_missing_presence(_sparse(("a", "c")), chain_nrg)
        middle = repaired.trace.entries[1]
        assert middle.annotations.has(AnnotationKind.PROVENANCE,
                                      "inferred")
        provenance = middle.annotations.of_kind(
            AnnotationKind.PROVENANCE)[0]
        assert provenance.confidence == 1.0

    def test_long_gap_fills_all_intermediates(self, chain_nrg):
        repaired = infer_missing_presence(_sparse(("a", "d")), chain_nrg)
        assert repaired.distinct_state_sequence() == ["a", "b", "c", "d"]

    def test_time_allocated_in_gap(self, chain_nrg):
        trajectory = _sparse(("a", "d"), dwell=100.0, gap=60.0)
        repaired = infer_missing_presence(trajectory, chain_nrg)
        inferred = repaired.trace.entries[1:3]
        assert inferred[0].t_start == trajectory.trace.entries[0].t_end
        assert inferred[1].t_end \
            == trajectory.trace.entries[1].t_start
        assert inferred[0].duration == pytest.approx(30.0)

    def test_transitions_rewired(self, chain_nrg):
        repaired = infer_missing_presence(_sparse(("a", "c")), chain_nrg)
        assert repaired.trace.entries[1].transition == "ab"
        assert repaired.trace.entries[2].transition == "bc"

    def test_ambiguous_paths_lower_confidence(self):
        graph = NodeRelationGraph("diamond")
        graph.connect("a", "b1", bidirectional=True)
        graph.connect("b1", "c", bidirectional=True)
        graph.connect("a", "b2", bidirectional=True)
        graph.connect("b2", "c", bidirectional=True)
        report = InferenceReport()
        repaired = infer_missing_presence(_sparse(("a", "c")), graph,
                                          report=report)
        assert report.ambiguous_gaps == 1
        middle = repaired.trace.entries[1]
        provenance = middle.annotations.of_kind(
            AnnotationKind.PROVENANCE)[0]
        assert provenance.confidence == 0.5

    def test_unexplained_gap_left_alone(self, chain_nrg):
        chain_nrg.add_node("island")
        trajectory = _sparse(("a", "island"))
        report = InferenceReport()
        repaired = infer_missing_presence(trajectory, chain_nrg,
                                          report=report)
        assert report.unexplained_gaps == 1
        assert repaired.distinct_state_sequence() == ["a", "island"]

    def test_direct_transition_untouched(self, chain_nrg):
        trajectory = _sparse(("a", "b"))
        report = InferenceReport()
        repaired = infer_missing_presence(trajectory, chain_nrg,
                                          report=report)
        assert report.gaps_examined == 0
        assert repaired.trace == trajectory.trace

    def test_annotator_callback(self, chain_nrg):
        def annotator(state):
            return AnnotationSet.goals("passing-" + state)

        repaired = infer_missing_presence(_sparse(("a", "c")), chain_nrg,
                                          annotator=annotator)
        middle = repaired.trace.entries[1]
        assert middle.annotations.has(AnnotationKind.GOAL, "passing-b")

    def test_coverage_gap_states(self, chain_nrg):
        assert coverage_gap_states(_sparse(("a", "d")), chain_nrg) \
            == ["b", "c"]
        assert coverage_gap_states(_sparse(("a", "b")), chain_nrg) == []


def _sparse(states, dwell=100.0, gap=60.0):
    entries = []
    t = 0.0
    previous = None
    for state in states:
        transition = None if previous is None \
            else "unobserved:{}->{}".format(previous, state)
        entries.append(TraceEntry(transition, state, t, t + dwell))
        t += dwell + gap
        previous = state
    return SemanticTrajectory("sparse-mo", Trace(entries),
                              AnnotationSet.goals("visit"))
