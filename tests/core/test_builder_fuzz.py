"""Failure-injection tests: the builder never chokes on messy inputs."""

from hypothesis import given, settings, strategies as st

from repro.core.builder import DetectionRecord, TrajectoryBuilder
from repro.indoor.nrg import NodeRelationGraph

KNOWN = ["z1", "z2", "z3"]


def build_nrg():
    graph = NodeRelationGraph("fuzz")
    graph.connect("z1", "z2", bidirectional=True)
    graph.connect("z2", "z3", bidirectional=True)
    return graph


record_strategy = st.builds(
    lambda mo, state, start, length, visit: DetectionRecord(
        mo, state, float(start), float(start + length), visit),
    mo=st.sampled_from(["m1", "m2"]),
    state=st.sampled_from(KNOWN + ["ghost", ""]),
    start=st.integers(0, 100_000),
    length=st.integers(-50, 5_000),
    visit=st.one_of(st.none(), st.sampled_from(["v1", "v2"])),
)


@settings(max_examples=100, deadline=None)
@given(st.lists(record_strategy, max_size=40))
def test_property_build_all_total(records):
    """build_all handles any record soup and its accounting adds up."""
    builder = TrajectoryBuilder(build_nrg(), visit_gap_seconds=1800.0)
    trajectories, report = builder.build_all(records)
    assert report.cleaning.total == len(records)
    assert report.cleaning.kept \
        == report.cleaning.total - report.cleaning.dropped
    assert report.trajectories == len(trajectories)
    assert report.entries == sum(len(t.trace) for t in trajectories)
    assert report.entries == report.cleaning.kept
    # Every surviving record state is a known zone (drop_unknown=True)
    # and has positive duration.
    for trajectory in trajectories:
        for entry in trajectory.trace:
            assert entry.state in KNOWN
            assert entry.duration > 0


@settings(max_examples=50, deadline=None)
@given(st.lists(record_strategy, max_size=30))
def test_property_visits_are_per_mo_and_ordered(records):
    builder = TrajectoryBuilder(build_nrg(), visit_gap_seconds=1800.0)
    trajectories, _ = builder.build_all(records)
    for trajectory in trajectories:
        starts = [e.t_start for e in trajectory.trace]
        assert starts == sorted(starts)
    # No two trajectories of the same mo overlap by more than the
    # visit gap rules allow (they were split on gaps).
    by_mo = {}
    for trajectory in trajectories:
        by_mo.setdefault(trajectory.mo_id, []).append(trajectory)
    for visits in by_mo.values():
        visits.sort(key=lambda t: t.t_start)


@settings(max_examples=50, deadline=None)
@given(st.lists(record_strategy, max_size=30))
def test_property_build_deterministic(records):
    builder = TrajectoryBuilder(build_nrg())
    first, _ = builder.build_all(list(records))
    second, _ = builder.build_all(list(records))
    assert first == second
