"""Tests for semantic annotations and annotation sets."""

import pytest
from hypothesis import given, strategies as st

from repro.core.annotations import (
    AnnotationKind,
    AnnotationSet,
    SemanticAnnotation,
)


class TestSemanticAnnotation:
    def test_shorthands(self):
        assert SemanticAnnotation.goal("visit").kind is AnnotationKind.GOAL
        assert SemanticAnnotation.activity("photo").kind \
            is AnnotationKind.ACTIVITY
        assert SemanticAnnotation.behavior("rushed").kind \
            is AnnotationKind.BEHAVIOR

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            SemanticAnnotation(AnnotationKind.GOAL, "x", confidence=1.5)
        with pytest.raises(ValueError):
            SemanticAnnotation(AnnotationKind.GOAL, "x", confidence=-0.1)

    def test_describe(self):
        assert SemanticAnnotation.goal("visit").describe() == "goal:visit"
        linked = SemanticAnnotation(AnnotationKind.PLACE, "exhibit",
                                    link="roi:mona-lisa")
        assert linked.describe() == "place:exhibit→roi:mona-lisa"

    def test_frozen_and_hashable(self):
        a = SemanticAnnotation.goal("visit")
        b = SemanticAnnotation.goal("visit")
        assert a == b
        assert len({a, b}) == 1


class TestAnnotationSet:
    def test_empty_is_falsy(self):
        assert not AnnotationSet.empty()
        assert len(AnnotationSet.empty()) == 0

    def test_goals_builder(self):
        goals = AnnotationSet.goals("visit", "buy")
        assert len(goals) == 2
        assert sorted(goals.goal_values()) == ["buy", "visit"]

    def test_equality_order_independent(self):
        a = AnnotationSet.goals("visit", "buy")
        b = AnnotationSet.goals("buy", "visit")
        assert a == b
        assert hash(a) == hash(b)

    def test_union(self):
        merged = AnnotationSet.goals("visit").union(
            AnnotationSet.goals("buy"))
        assert len(merged) == 2

    def test_with_annotation(self):
        base = AnnotationSet.goals("visit")
        extended = base.with_annotation(SemanticAnnotation.goal("buy"))
        assert len(base) == 1  # immutable
        assert len(extended) == 2

    def test_without_kind(self):
        mixed = AnnotationSet.of(
            SemanticAnnotation.goal("visit"),
            SemanticAnnotation.activity("photo"))
        assert len(mixed.without_kind(AnnotationKind.GOAL)) == 1

    def test_has(self):
        goals = AnnotationSet.goals("visit")
        assert goals.has(AnnotationKind.GOAL)
        assert goals.has(AnnotationKind.GOAL, "visit")
        assert not goals.has(AnnotationKind.GOAL, "buy")
        assert not goals.has(AnnotationKind.ACTIVITY)

    def test_of_kind_deterministic_order(self):
        mixed = AnnotationSet.goals("z", "a", "m")
        values = [a.value for a in mixed.of_kind(AnnotationKind.GOAL)]
        assert values == sorted(values)

    def test_links(self):
        annotated = AnnotationSet.of(
            SemanticAnnotation(AnnotationKind.PLACE, "x", link="obj2"),
            SemanticAnnotation(AnnotationKind.PLACE, "y", link="obj1"))
        assert annotated.links() == ["obj1", "obj2"]

    def test_contains(self):
        goal = SemanticAnnotation.goal("visit")
        assert goal in AnnotationSet.of(goal)

    def test_repr_empty(self):
        assert repr(AnnotationSet.empty()) == "AnnotationSet(∅)"

    def test_serialisation_roundtrip(self):
        original = AnnotationSet.of(
            SemanticAnnotation.goal("visit"),
            SemanticAnnotation(AnnotationKind.PROVENANCE, "inferred",
                               source="topology", confidence=0.5),
            SemanticAnnotation(AnnotationKind.PLACE, "shop",
                               link="zone60890"))
        restored = AnnotationSet.from_list(original.to_list())
        assert restored == original


@given(st.lists(st.sampled_from(["visit", "buy", "exit", "photo"]),
                max_size=4))
def test_property_set_semantics(values):
    """Building a set twice from the same values yields equal sets."""
    a = AnnotationSet.goals(*values)
    b = AnnotationSet.goals(*reversed(values))
    assert a == b
    assert len(a) == len(set(values))
