"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.scale == 1.0
        assert args.out == "detections.csv"


class TestCommands:
    def test_zones(self, capsys):
        assert main(["zones"]) == 0
        out = capsys.readouterr().out
        assert "zone60853" in out
        assert out.count("zone608") >= 52

    def test_generate_and_validate(self, tmp_path, capsys):
        out_path = str(tmp_path / "detections.csv")
        assert main(["generate", "--scale", "0.01",
                     "--out", out_path]) == 0
        generated = capsys.readouterr().out
        assert "wrote" in generated

        assert main(["validate", out_path]) == 0
        validated = capsys.readouterr().out
        assert "0 errors" in validated

    def test_stats_small_scale(self, capsys):
        assert main(["stats", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "statistic" in out

    def test_experiments_small_scale(self, capsys):
        assert main(["experiments", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        for marker in ("T1", "F1", "F6", "S41", "ENG", "QRY"):
            assert marker in out


class TestQueryCommand:
    def test_query_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--visiting" in out
        assert "--or" in out

    def test_query_basic(self, capsys):
        assert main(["query", "--scale", "0.01",
                     "--annotation", "goal=visit",
                     "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "matches:" in out
        assert "visitor" in out

    def test_query_or_not_explain(self, capsys):
        assert main(["query", "--scale", "0.01",
                     "--visiting", "zone60853", "--or",
                     "--not", "--visiting", "zone60886",
                     "--explain", "--count"]) == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "union" in out
        assert "difference" in out
        assert "matches:" in out

    def test_query_order_and_offset(self, capsys):
        assert main(["query", "--scale", "0.01",
                     "--min-entries", "2",
                     "--order-by", "duration", "--desc",
                     "--offset", "1", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("visitor") == 2

    def test_query_from_jsonl(self, tmp_path, capsys):
        from repro.storage import write_trajectories_jsonl
        from tests.conftest import make_trajectory

        path = str(tmp_path / "t.jsonl")
        write_trajectories_jsonl(
            [make_trajectory(mo_id="m1", states=("a", "b")),
             make_trajectory(mo_id="m2", states=("c",),
                             start=9000.0)], path)
        assert main(["query", "--jsonl", path,
                     "--visiting", "a"]) == 0
        out = capsys.readouterr().out
        assert "corpus: 2 trajectories" in out
        assert "matches: 1" in out

    def test_query_bad_annotation(self, capsys):
        assert main(["query", "--scale", "0.01",
                     "--annotation", "nonsense"]) == 2
        assert "KIND=VALUE" in capsys.readouterr().err

    def test_query_dangling_or(self, capsys):
        assert main(["query", "--scale", "0.01",
                     "--visiting", "zone60853", "--or"]) == 2
        assert "--or" in capsys.readouterr().err

    def test_query_dangling_not(self, capsys):
        assert main(["query", "--scale", "0.01",
                     "--visiting", "zone60853", "--not"]) == 2
        assert "--not" in capsys.readouterr().err

    def test_query_missing_jsonl(self, capsys):
        assert main(["query", "--jsonl", "/no/such/file"]) == 1
        assert "error" in capsys.readouterr().err


class TestPipelineCommands:
    def test_pipeline_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["pipeline", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "run" in out
        assert "stages" in out

    def test_pipeline_run_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["pipeline", "run", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--batch-size" in out
        assert "--streaming" in out

    def test_pipeline_stages_lists_catalog(self, capsys):
        assert main(["pipeline", "stages"]) == 0
        out = capsys.readouterr().out
        for name in ("clean", "segment", "trace", "annotate",
                     "store", "prefixspan"):
            assert name in out

    def test_pipeline_run_small(self, capsys):
        assert main(["pipeline", "run", "--scale", "0.01",
                     "--store", "--mine",
                     "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "stored trajectories:" in out

    def test_pipeline_run_streaming_with_jsonl(self, tmp_path,
                                               capsys):
        out_path = str(tmp_path / "trajectories.jsonl")
        assert main(["pipeline", "run", "--scale", "0.01",
                     "--streaming", "--out", out_path]) == 0
        capsys.readouterr()
        from repro.storage import read_trajectories_jsonl
        assert read_trajectories_jsonl(out_path)

    def test_pipeline_run_from_csv(self, tmp_path, capsys):
        csv_path = str(tmp_path / "detections.csv")
        assert main(["generate", "--scale", "0.01",
                     "--out", csv_path]) == 0
        assert main(["pipeline", "run", "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "annotate" in out

    def test_pipeline_run_unknown_stage(self, capsys):
        assert main(["pipeline", "run", "--scale", "0.01",
                     "--stages", "clean,nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err

    def test_pipeline_run_jsonl_stage_needs_out(self, capsys):
        assert main(["pipeline", "run", "--scale", "0.01",
                     "--stages", "clean,segment,trace,annotate,"
                                 "jsonl-sink"]) == 2
        err = capsys.readouterr().err
        assert "--out" in err

    def test_pipeline_run_jsonl_stage_listed_with_out(self, tmp_path,
                                                      capsys):
        # Listing jsonl-sink explicitly plus --out must not attach
        # two sinks writing the same file.
        out_path = str(tmp_path / "t.jsonl")
        assert main(["pipeline", "run", "--scale", "0.01",
                     "--stages", "clean,segment,trace,annotate,"
                                 "jsonl-sink",
                     "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert out.count("jsonl-sink") == 2  # chain line + table row
        from repro.storage import read_trajectories_jsonl
        assert read_trajectories_jsonl(out_path)


class TestSnapshotRestore:
    def test_snapshot_then_restore(self, tmp_path, capsys):
        directory = str(tmp_path / "corpus")
        assert main(["snapshot", "--scale", "0.01",
                     "--out", directory]) == 0
        out = capsys.readouterr().out
        assert "snapshot:" in out and directory in out

        assert main(["restore", directory]) == 0
        out = capsys.readouterr().out
        assert "restored:" in out
        assert "LouvreSpace" in out
        assert "visits" in out

    def test_snapshot_json_round_trip(self, tmp_path, capsys):
        import json as json_module

        directory = str(tmp_path / "corpus")
        assert main(["snapshot", "--scale", "0.01",
                     "--out", directory, "--json"]) == 0
        saved = json_module.loads(capsys.readouterr().out)
        assert saved["trajectories"] > 0

        assert main(["restore", directory, "--json"]) == 0
        restored = json_module.loads(capsys.readouterr().out)
        assert restored["trajectories"] == saved["trajectories"]
        assert restored["space"] == "LouvreSpace"
        assert restored["summary"]["visits"] == saved["trajectories"]

    def test_snapshot_from_jsonl(self, tmp_path, capsys):
        jsonl_path = str(tmp_path / "t.jsonl")
        assert main(["pipeline", "run", "--scale", "0.01",
                     "--streaming", "--out", jsonl_path]) == 0
        capsys.readouterr()
        directory = str(tmp_path / "corpus")
        assert main(["snapshot", "--jsonl", jsonl_path,
                     "--out", directory]) == 0
        capsys.readouterr()
        assert main(["restore", directory]) == 0
        assert "restored:" in capsys.readouterr().out

    def test_restore_missing_dir_fails(self, tmp_path, capsys):
        assert main(["restore", str(tmp_path / "nothing")]) == 1
        assert "error" in capsys.readouterr().err

    def test_restore_corrupt_snapshot_fails(self, tmp_path, capsys):
        import os as os_module

        directory = str(tmp_path / "corpus")
        assert main(["snapshot", "--scale", "0.01",
                     "--out", directory]) == 0
        capsys.readouterr()
        current = open(os_module.path.join(directory,
                                           "CURRENT")).read().strip()
        manifest = os_module.path.join(directory, current,
                                       "MANIFEST.json")
        raw = bytearray(open(manifest, "rb").read())
        raw[len(raw) // 2] ^= 0x01
        open(manifest, "wb").write(bytes(raw))
        assert main(["restore", directory]) == 1
        assert "corrupt" in capsys.readouterr().err

class TestStreamCommands:
    @pytest.fixture()
    def server(self):
        from repro.service.registry import SessionRegistry
        from repro.service.server import ServiceServer

        registry = SessionRegistry()
        server = ServiceServer(registry, port=0)
        server.start()
        try:
            yield server
        finally:
            server.stop()

    def test_stream_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stream", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in ("replay", "status", "close"):
            assert name in out

    def test_replay_status_close_round_trip(self, server, capsys):
        import json as json_module

        base = ["--url", server.url, "--session", "live",
                "--stream", "gates", "--json"]
        assert main(["stream", "replay", "--scale", "0.01",
                     "--chunk", "50", "--no-close"] + base) == 0
        replayed = json_module.loads(capsys.readouterr().out)
        assert replayed["replayed"] == replayed["corpus_events"] > 0
        assert replayed["closed"] is False

        assert main(["stream", "status"] + base) == 0
        status = json_module.loads(capsys.readouterr().out)
        assert status["events_acked"] == replayed["replayed"]

        assert main(["stream", "close"] + base) == 0
        closed = json_module.loads(capsys.readouterr().out)
        assert closed["events_acked"] == replayed["replayed"]
        assert closed["episodes_total"] > 0

    def test_replay_resumes_with_offset(self, server, capsys):
        base = ["--url", server.url, "--session", "live",
                "--stream", "gates", "--json"]
        import json as json_module

        assert main(["stream", "replay", "--scale", "0.01",
                     "--chunk", "40", "--limit", "100"] + base) == 0
        first = json_module.loads(capsys.readouterr().out)
        assert first["replayed"] == 100 and first["closed"] is False

        assert main(["stream", "replay", "--scale", "0.01",
                     "--chunk", "40", "--offset", "100"] + base) == 0
        second = json_module.loads(capsys.readouterr().out)
        assert second["closed"] is True
        assert second["events_acked"] \
            == first["replayed"] + second["replayed"] \
            == second["corpus_events"]

    def test_unknown_stream_status_fails(self, server, capsys):
        assert main(["stream", "status", "--url", server.url,
                     "--session", "nowhere"]) == 1
        assert "unknown_stream" in capsys.readouterr().err

    def test_unreachable_server_fails(self, capsys):
        assert main(["stream", "status",
                     "--url", "http://127.0.0.1:9",
                     "--timeout", "2"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_chunk_rejected(self, capsys):
        assert main(["stream", "replay", "--chunk", "0"]) == 2
        assert "--chunk" in capsys.readouterr().err


class TestCacheDir:
    def test_pipeline_run_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["pipeline", "run", "--scale", "0.01",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        import os as os_module
        assert [name for name in os_module.listdir(cache_dir)
                if name.endswith(".json")]
        # second run replays the persisted prefix
        assert main(["pipeline", "run", "--scale", "0.01",
                     "--cache-dir", cache_dir]) == 0
        assert "annotate" in capsys.readouterr().out
