"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.scale == 1.0
        assert args.out == "detections.csv"


class TestCommands:
    def test_zones(self, capsys):
        assert main(["zones"]) == 0
        out = capsys.readouterr().out
        assert "zone60853" in out
        assert out.count("zone608") >= 52

    def test_generate_and_validate(self, tmp_path, capsys):
        out_path = str(tmp_path / "detections.csv")
        assert main(["generate", "--scale", "0.01",
                     "--out", out_path]) == 0
        generated = capsys.readouterr().out
        assert "wrote" in generated

        assert main(["validate", out_path]) == 0
        validated = capsys.readouterr().out
        assert "0 errors" in validated

    def test_stats_small_scale(self, capsys):
        assert main(["stats", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "statistic" in out

    def test_experiments_small_scale(self, capsys):
        assert main(["experiments", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        for marker in ("T1", "F1", "F6", "S41"):
            assert marker in out
