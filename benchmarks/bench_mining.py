"""Benchmarks of the mining layer and the future-work extensions."""

from repro.core.timeutil import from_date
from repro.louvre.restructure import (
    StitchReport,
    indicative_visits,
    stitch_fragments,
)
from repro.mining.association import mine_rules
from repro.mining.profiling import extract_features, k_medoids, standardize
from repro.mining.similarity import hierarchy_similarity


def test_bench_association_rules(benchmark, louvre_space,
                                 full_corpus_trajectories):
    """Apriori rules over visited-zone transactions (full corpus)."""
    transactions = [set(t.distinct_state_sequence())
                    for t in full_corpus_trajectories]

    rules = benchmark(mine_rules, transactions, 0.02, 0.3, 3)
    assert rules
    for rule in rules:
        assert rule.confidence >= 0.3
        assert not rule.antecedent & rule.consequent


def test_bench_hierarchy_similarity(benchmark, louvre_space,
                                    full_corpus_trajectories):
    """Hierarchy-aware similarity over 200 visit pairs."""
    sequences = [t.distinct_state_sequence()
                 for t in full_corpus_trajectories[:21]]
    hierarchy = louvre_space.zone_hierarchy

    def compare_all():
        total = 0.0
        for i, a in enumerate(sequences):
            for b in sequences[i + 1:]:
                total += hierarchy_similarity(hierarchy, a, b)
        return total

    total = benchmark(compare_all)
    assert total >= 0.0


def test_bench_profiling(benchmark, louvre_space,
                         full_corpus_trajectories):
    """Feature extraction + k-medoids over 300 visits."""
    sample = full_corpus_trajectories[:300]

    def profile():
        features = [extract_features(t, louvre_space.zone_hierarchy)
                    for t in sample]
        vectors = standardize([f.as_vector() for f in features])
        assignment, medoids = k_medoids(vectors, 4, seed=1)
        return assignment

    assignment = benchmark(profile)
    assert len(set(assignment)) == 4


def test_bench_stitch_and_indicative(benchmark, louvre_space,
                                     full_corpus_trajectories):
    """Sparsity repair: stitch 1,000 fragments, derive 5 indicative
    visits."""
    sample = full_corpus_trajectories[:1000]
    nrg = louvre_space.dataset_zone_nrg()
    epoch = from_date("19-01-2017")

    def run():
        report = StitchReport()
        stitched = stitch_fragments(sample, nrg, epoch=epoch,
                                    report=report)
        visits = indicative_visits(stitched, k=5, seed=2)
        return report, visits

    report, visits = benchmark(run)
    assert report.stitched_visits <= len(sample)
    assert len(visits) == 5
    # The headline claim: stitching yields longer visits than the
    # average fragment.
    mean_fragment_len = sum(
        len(t.distinct_state_sequence()) for t in sample) / len(sample)
    assert max(len(v.sequence) for v in visits) > mean_fragment_len
