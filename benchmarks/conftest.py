"""Shared fixtures for the benchmark suite.

Expensive shared structures (the Louvre space model, the full corpus)
are built once per session so each benchmark measures its own work.
"""

from __future__ import annotations

import pytest

from repro.core import TrajectoryBuilder
from repro.louvre.dataset import DatasetParameters, LouvreDatasetGenerator
from repro.louvre.space import LouvreSpace


@pytest.fixture(scope="session")
def louvre_space() -> LouvreSpace:
    """The full Louvre layered indoor graph."""
    return LouvreSpace()


@pytest.fixture(scope="session")
def full_corpus_records(louvre_space):
    """The paper-sized detection record corpus (20,245 records)."""
    generator = LouvreDatasetGenerator(louvre_space, DatasetParameters())
    return generator.detection_records()


@pytest.fixture(scope="session")
def full_corpus_trajectories(louvre_space, full_corpus_records):
    """The corpus built into semantic trajectories."""
    builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
    trajectories, _ = builder.build_all(full_corpus_records)
    return trajectories
