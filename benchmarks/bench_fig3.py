"""Bench F3 — the Figure 3 ground-floor choropleth series.

The paper gives no absolute per-zone counts, only the 11-zone
choropleth; the shape checks assert what the map shows: all eleven
zones received detections and the entrance halls dominate.
"""

from repro.experiments import fig3


def test_bench_fig3(benchmark, louvre_space):
    """Choropleth regeneration over a quarter-scale corpus."""
    result = benchmark(fig3.run, louvre_space, 0.25)
    assert result["ground_floor_zones"] == 11
    series = result["series"]
    assert len(series) == 11
    assert all(item["detections"] > 0 for item in series)
    # Entrance-adjacent zones out-rank the quiet galleries.
    top_zones = {item["zone"] for item in series[:4]}
    assert top_zones & {"zone60866", "zone60867"}
    assert series[0]["detections"] >= series[-1]["detections"]
    # Shares sum to 1.
    assert abs(sum(item["share"] for item in series) - 1.0) < 1e-9
