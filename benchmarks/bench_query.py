"""Bench Q1 — the cost-based planner vs. naive execution.

Runs the PR-2 query stack on the full Louvre corpus (4,819 stored
trajectories): a selective conjunction (rare state ∧ time window),
an OR/NOT expression, the index-only ``count()`` fast path, and —
the headline assertion — a timed comparison showing the planned
execution beating a brute-force scan on selective queries.

Every test here also runs in CI smoke mode
(``pytest benchmarks/bench_query.py --benchmark-disable``), where the
``benchmark`` fixture degrades to a single call; the planner-vs-naive
assertion uses its own best-of-N timing and holds either way.
"""

from __future__ import annotations

import time

import pytest

from repro.storage import Query, TrajectoryStore, expr as E
from repro.storage.planner import plan_expression


@pytest.fixture(scope="module")
def store(full_corpus_trajectories):
    store = TrajectoryStore()
    store.extend(full_corpus_trajectories, rebuild_interval=True)
    return store


@pytest.fixture(scope="module")
def selective_expression(store):
    """Rare state ∧ time window: the planner's showcase shape."""
    cardinalities = store.state_cardinalities()
    rare_state = min(cardinalities, key=cardinalities.get)
    start, end = store.time_span()
    window_end = start + (end - start) * 0.25
    return E.state(rare_state) & E.time_window(start, window_end) \
        & E.goal("visit")


def naive_execute(store, expression):
    """Brute force: scan every trajectory, no indexes, no planner."""
    return [doc_id for doc_id in sorted(store.all_ids())
            if expression.matches(store.get(doc_id))]


def test_bench_planned_selective(benchmark, store,
                                 selective_expression):
    """Planned execution of the selective conjunction."""
    query = Query(store, selective_expression)
    hits = benchmark(lambda: query.execute().to_list())
    assert [h.doc_id for h in hits] \
        == naive_execute(store, selective_expression)


def test_bench_naive_selective(benchmark, store,
                               selective_expression):
    """The same conjunction as a full brute-force scan."""
    hits = benchmark(naive_execute, store, selective_expression)
    assert hits == [h.doc_id for h in
                    Query(store, selective_expression).execute()]


def test_bench_or_not_expression(benchmark, store):
    """Union + difference: (a ∨ b) ∧ ¬c through the planner."""
    expression = ((E.state("zone60853") | E.state("zone60854"))
                  & ~E.state("zone60891"))
    query = Query(store, expression)
    hits = benchmark(lambda: query.execute().to_list())
    assert [h.doc_id for h in hits] == naive_execute(store, expression)


def test_bench_count_fast_path(benchmark, store):
    """Index-only count() vs. materializing execute()."""
    query = Query(store).visiting_state("zone60853")
    count = benchmark(query.count)
    assert count == len(query.execute().to_list())


def test_planner_beats_naive_on_selective_query(
        store, selective_expression):
    """The acceptance assertion: planned ≪ brute force.

    Times both paths best-of-5; the planned run touches only the rare
    state's posting list while the naive run scans 4,819 traces, so
    the margin is large and the assertion is timing-robust.
    """
    query = Query(store, selective_expression)
    expected = naive_execute(store, selective_expression)

    def best_of(fn, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    planned = best_of(lambda: query.execute().to_list())
    naive = best_of(lambda: naive_execute(store,
                                          selective_expression))
    assert [h.doc_id for h in query.execute()] == expected
    assert planned < naive / 2, \
        "planned {:.6f}s not faster than naive {:.6f}s".format(
            planned, naive)


def test_explain_shows_cost_based_choices(store,
                                          selective_expression):
    """The full-corpus plan anchors on the rare state and demotes
    the unselective window/annotation to streamed verification."""
    plan = plan_expression(store, selective_expression)
    text = plan.explain()
    scans = [line for line in text.splitlines()
             if "index-scan" in line]
    assert scans and "state=" in scans[0]  # the rare state anchors
    assert "residual (streamed)" in text
    assert "window=" in text  # demoted, not materialized
    # Two mid-size states intersect normally, smallest first.
    cards = store.state_cardinalities()
    a, b = sorted(cards, key=cards.get)[1:3]
    two = plan_expression(store, E.state(b) & E.state(a))
    assert "intersect (smallest-first)" in two.explain()
    first_scan = [line for line in two.explain().splitlines()
                  if "index-scan" in line][0]
    assert "state='{}'".format(a) in first_scan


def test_serialization_identical_results_full_corpus(store):
    """from_dict(to_dict) returns identical results at full scale."""
    query = (Query(store).visiting_state("zone60853")
             .active_between(*store.time_span())
             .min_entries(2))
    restored = Query.from_dict(store, query.to_dict())
    assert restored.execute().ids() == query.execute().ids()
    assert restored.count() == query.count()
