"""Bench F1 — the Figure 1 two-layer Denon graph."""

from repro.experiments import fig1


def test_bench_fig1(benchmark):
    """Graph construction plus both modelled claims of the figure."""
    result = benchmark(fig1.run)
    # A visitor in hall 5 can only be in 5a, 5b or 5c in layer i.
    assert result["hall5_claim_holds"]
    # Salle des États: exit 4→2 allowed, entry 2→4 prohibited.
    assert result["salle_des_etats_rule_holds"]
    assert result["validation_problems"] == []
    assert result["overall_states_for_hall5"] == [
        {"layer-i+1": "5", "layer-i": "5a"},
        {"layer-i+1": "5", "layer-i": "5b"},
        {"layer-i+1": "5", "layer-i": "5c"},
    ]
