"""Benchmarks for navigation, stop/move segmentation and flow."""

from repro.indoor.navigation import RoutePlanner, plan_hierarchical
from repro.louvre.zones import ZONE_C, ZONE_ENTRANCE
from repro.mining.flow import flow_balances, hourly_occupancy
from repro.mining.stops import StopMoveConfig, segment_stops_moves


def test_bench_zone_routing(benchmark, louvre_space):
    """All-pairs-ish routing load: 100 routes over the zone NRG."""
    planner = RoutePlanner(louvre_space.dataset_zone_nrg())
    nodes = [n for n in louvre_space.dataset_zone_nrg().nodes
             if n != ZONE_C][:10]

    def route_all():
        hops = 0
        for origin in nodes:
            for destination in nodes:
                if origin == destination:
                    continue
                hops += planner.plan(origin, destination).hop_count
        return hops

    hops = benchmark(route_all)
    assert hops > 0
    # Shape check: the entrance→exit route stays short, through the
    # paper's E/P/S/C area.
    route = planner.plan(ZONE_ENTRANCE, ZONE_C)
    assert route.states[0] == ZONE_ENTRANCE
    assert route.states[-1] == ZONE_C
    assert route.hop_count <= 4


def test_bench_hierarchical_routing(benchmark, louvre_space):
    """Corridor-restricted room routing across the Denon +1 circuit."""
    origin = louvre_space.floorplan.rooms_of_zone("zone60868")[0]
    destination = louvre_space.floorplan.rooms_of_zone("zone60854")[-1]

    coarse, fine = benchmark(plan_hierarchical,
                             louvre_space.core_hierarchy, "rooms",
                             origin, destination)
    assert fine.states[0] == origin
    assert fine.states[-1] == destination


def test_bench_stop_move(benchmark, full_corpus_trajectories):
    """Stop/move segmentation over 1,000 visits."""
    sample = full_corpus_trajectories[:1000]
    config = StopMoveConfig(min_stop_seconds=300.0)

    def segment_all():
        stops = 0
        for trajectory in sample:
            segmentation = segment_stops_moves(trajectory, config)
            stops += sum(1 for e in segmentation if e.label == "stop")
        return stops

    stops = benchmark(segment_all)
    assert stops > 0


def test_bench_flow_analytics(benchmark, full_corpus_trajectories):
    """Flow balances + hourly occupancy over the full corpus."""

    def analyse():
        balances = flow_balances(full_corpus_trajectories)
        occupancy = hourly_occupancy(full_corpus_trajectories)
        return balances, occupancy

    balances, occupancy = benchmark(analyse)
    # The pyramid entrance is the corpus' dominant source.
    sources = [b for b in balances if b.imbalance < 0]
    assert sources[0].state == "zone60886"
    assert occupancy
    # Visits start 09:00–17:00, so occupancy concentrates in opening
    # hours.
    total_by_hour = [0.0] * 24
    for series in occupancy.values():
        for hour, value in enumerate(series):
            total_by_hour[hour] += value
    assert sum(total_by_hour[9:20]) > sum(total_by_hour[0:9])
