"""Bench SY1 — synthesis throughput and production-rate replay.

Run as a script (not under pytest-benchmark); for each ``repro.synth``
archetype it measures

* ``venue`` — seeded venue generation + full validation +
  all-rooms route planning (venues/s and the venue size card);
* ``crowd`` — deterministic crowd synthesis throughput (events/s
  streamed in O(agents-per-day) memory, with the sha256 determinism
  digest and the peak day-bucket size);
* ``replay_batch`` / ``replay_stream`` — the
  :class:`~repro.synth.replayer.TrafficReplayer` driving a live
  asyncio front-end on an ephemeral port: locally-segmented episode
  ingest vs raw ``AppendEvents`` streaming, unpaced (the ceiling),
  with delivery verified against the server's health counters.

``--out`` writes the measurements (the committed baseline is
``BENCH_synth.json``); ``--smoke`` shrinks the crowds for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.service.aserver import AsyncServiceServer
from repro.service.client import ServiceClient
from repro.service.registry import SessionRegistry
from repro.synth import (
    ARCHETYPES,
    CrowdSpec,
    CrowdSynthesizer,
    TrafficReplayer,
    VenueSpec,
    generate_venue,
)
from repro.synth.crowd import stream_digest

VENUE_SEED = 7
CROWD_SEED = 42


def bench_venue(archetype: str, repeats: int) -> Dict:
    venue = None
    started = time.perf_counter()
    for index in range(repeats):
        venue = generate_venue(VenueSpec(archetype=archetype,
                                         seed=VENUE_SEED + index))
        problems = venue.validate()
        assert not problems, problems
        venue.plan_all_rooms()
    seconds = time.perf_counter() - started
    summary = venue.summary()
    return {
        "repeats": repeats,
        "seconds": seconds,
        "venues_per_s": repeats / seconds,
        "cells": summary["cells"],
        "floors": summary["floors"],
        "edges": summary["edges"],
    }


def bench_crowd(venue, spec: CrowdSpec) -> Dict:
    crowd = CrowdSynthesizer(venue, spec)
    started = time.perf_counter()
    counted = 0

    def tap(events):
        nonlocal counted
        for record in events:
            counted += 1
            yield record

    digest = stream_digest(tap(crowd.iter_events()))
    seconds = time.perf_counter() - started
    return {
        "agents": spec.agents,
        "events": counted,
        "seconds": seconds,
        "events_per_s": counted / seconds,
        "peak_buffered": crowd.peak_buffered,
        "digest": digest,
    }


def bench_replay(client, venue, spec: CrowdSpec,
                 session_prefix: str) -> Dict[str, Dict]:
    sections: Dict[str, Dict] = {}
    for mode in ("batch", "stream"):
        crowd = CrowdSynthesizer(venue, spec)
        replayer = TrafficReplayer(
            client, "{}-{}".format(session_prefix, mode), venue)
        if mode == "batch":
            report = replayer.replay_batch(crowd.iter_events())
        else:
            report = replayer.replay_stream(crowd.iter_events())
        report.provenance = crowd.provenance()
        replayer.verify_delivery(report)
        payload = report.as_dict()
        assert payload["errors"] == 0, payload
        assert payload["server"]["delivery_ok"], payload
        sections["replay_{}".format(mode)] = {
            key: payload[key]
            for key in ("requests", "ok", "shed", "errors",
                        "events", "episodes", "seconds",
                        "events_per_s", "latency_ms")}
    return sections


def run_benchmarks(smoke: bool = False) -> Dict:
    agents = 200 if smoke else 2000
    venue_repeats = 3 if smoke else 10
    spec = CrowdSpec(agents=agents, seed=CROWD_SEED,
                     agents_per_day=max(100, agents // 4))

    registry = SessionRegistry()
    server = AsyncServiceServer(registry, port=0).start()
    client = ServiceClient(server.url)
    metrics: Dict[str, Dict] = {}
    provenance: Dict[str, Dict] = {}
    try:
        for archetype in sorted(ARCHETYPES):
            venue = generate_venue(VenueSpec(archetype=archetype,
                                             seed=VENUE_SEED))
            section: Dict[str, Dict] = {
                "venue": bench_venue(archetype, venue_repeats),
                "crowd": bench_crowd(venue, spec),
            }
            section.update(bench_replay(client, venue, spec,
                                        archetype))
            metrics[archetype] = section
            provenance[archetype] = CrowdSynthesizer(
                venue, spec).provenance()
    finally:
        client.close()
        server.stop()

    return {
        "bench": "synth",
        "config": {"smoke": smoke, "agents": agents,
                   "venue_seed": VENUE_SEED,
                   "crowd_seed": CROWD_SEED,
                   "archetypes": sorted(ARCHETYPES),
                   "provenance": provenance,
                   "python": sys.version.split()[0]},
        "metrics": metrics,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced crowds for CI")
    parser.add_argument("--out", metavar="PATH",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)

    result = run_benchmarks(smoke=args.smoke)
    if args.out and not args.smoke:
        # Embed a smoke-mode section so CI smoke runs have a
        # same-workload reference.
        result["smoke_metrics"] = run_benchmarks(
            smoke=True)["metrics"]
    print(json.dumps(result, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print("\nwrote {}".format(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
