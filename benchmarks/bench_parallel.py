"""Bench P2 — the parallel executor, the stage cache and the hot-path
optimization sweep, with a persisted baseline.

Run as a script (not under pytest-benchmark): it measures

* the full-corpus build serial vs parallel (4 thread workers) — the
  CPU-bound speedup is hardware-honest (≈1× under a GIL on one core,
  scaling with cores otherwise), so it is *recorded* but not
  regression-checked;
* the same build with a parallel-safe simulated-I/O stage (a
  per-batch latency such as an enrichment lookup or remote write),
  where the thread executor overlaps the waits — ≥2× with 4 workers
  on any hardware;
* a cached rebuild (inter-stage cache warm) vs a cold build;
* ``similarity_matrix`` with the memoized LCA + alphabet-pair table
  vs the seed's per-cell algorithm;
* the ``IntervalIndex`` sorted-once build and the timing-off
  ``_push`` fast path (informational).

``--out`` writes the measurements as ``BENCH_pipeline.json``;
``--check BASELINE`` fails (exit 1) when a machine-portable speedup
regressed more than ``--threshold`` (default 20 %) against the
committed baseline.  ``--smoke`` shrinks the corpus for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

from repro.core import TrajectoryBuilder
from repro.indoor.hierarchy import LayerHierarchy
from repro.louvre.space import LouvreSpace
from repro.mining.similarity import similarity_matrix
from repro.mining.sequences import state_sequences
from repro.pipeline import (
    MapStage,
    Pipeline,
    StageCache,
    StoreSinkStage,
    louvre_source,
)
from repro.storage.intervals import Interval, IntervalIndex

#: Speedups compared by --check: dimensionless and machine-portable
#: (algorithmic or latency-overlap wins, not core-count wins).
CHECKED_SPEEDUPS = ("cached_rebuild", "similarity", "io_overlap")


def _best(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


class SimulatedIoStage(MapStage):
    """A parallel-safe stage paying a fixed per-batch latency.

    Stands in for the I/O-bound stages of a production pipeline
    (enrichment lookups, remote writes); the thread executor overlaps
    these waits across batches even on a single core.
    """

    parallel_safe = True

    def __init__(self, delay: float) -> None:
        super().__init__(lambda item: item, name="simulated-io")
        self.delay = delay

    def process(self, batch):
        time.sleep(self.delay)
        return list(batch)


def _naive_state_similarity(hierarchy: LayerHierarchy, a: str,
                            b: str) -> float:
    """The seed's per-call algorithm: unmemoized ancestor walks."""
    if a == b:
        return 1.0
    chain_a = [a] + hierarchy.ancestors(a)
    chain_b = set([b] + hierarchy.ancestors(b))
    lca = None
    for candidate in chain_a:
        if candidate in chain_b:
            lca = candidate
            break
    if lca is None:
        return 0.0
    level = hierarchy._level  # the seed resolved depths per call
    depth_a = level[hierarchy.graph.layer_of(a)] + 1
    depth_b = level[hierarchy.graph.layer_of(b)] + 1
    depth_lca = level[hierarchy.graph.layer_of(lca)] + 1
    return 2.0 * depth_lca / (depth_a + depth_b)


def _naive_similarity_matrix(hierarchy: LayerHierarchy,
                             sequences: List[List[str]]
                             ) -> List[List[float]]:
    """The seed's O(n²·len²) matrix with per-cell hierarchy walks."""
    size = len(sequences)
    matrix = [[1.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(i + 1, size):
            a, b = sequences[i], sequences[j]
            if not a and not b:
                value = 1.0
            elif not a or not b:
                value = 0.0
            else:
                previous = [float(col) for col in range(len(b) + 1)]
                for row, item_a in enumerate(a, start=1):
                    current = [float(row)] + [0.0] * len(b)
                    for col, item_b in enumerate(b, start=1):
                        cost = 1.0 - _naive_state_similarity(
                            hierarchy, item_a, item_b)
                        current[col] = min(previous[col] + 1.0,
                                           current[col - 1] + 1.0,
                                           previous[col - 1] + cost)
                    previous = current
                value = 1.0 - previous[-1] / max(len(a), len(b))
            matrix[i][j] = value
            matrix[j][i] = value
    return matrix


def run_benchmarks(smoke: bool, workers: int) -> Dict[str, object]:
    scale = 0.25 if smoke else 1.0
    repeats = 3  # best-of-N damps scheduler noise, smoke included
    sim_count = 60 if smoke else 200
    io_batches_delay = 0.004
    interval_count = 5000 if smoke else 20000

    space = LouvreSpace()
    source = louvre_source(space, scale=scale)
    records = list(source)

    def build(pipeline_workers: int, executor: str = "thread",
              timing: bool = True, cache: StageCache = None,
              extra: List[MapStage] = ()) -> Pipeline:
        builder = TrajectoryBuilder(space.dataset_zone_nrg())
        pipeline = Pipeline(
            builder.stages(streaming=True) + list(extra)
            + [StoreSinkStage()],
            batch_size=256, workers=pipeline_workers,
            executor=executor, timing=timing, cache=cache)
        pipeline.run(records, collect=False,
                     fingerprint=source.fingerprint)
        return pipeline

    metrics: Dict[str, float] = {}
    speedups: Dict[str, float] = {}

    # -- CPU-bound build: serial vs parallel (hardware-honest) --------
    metrics["build_serial_s"] = _best(lambda: build(0), repeats)
    metrics["build_parallel_thread_s"] = _best(
        lambda: build(workers), repeats)
    speedups["parallel_cpu"] = (metrics["build_serial_s"]
                                / metrics["build_parallel_thread_s"])

    # -- I/O-bound build: the executor overlaps per-batch latency ----
    metrics["build_io_serial_s"] = _best(
        lambda: build(0, extra=[SimulatedIoStage(io_batches_delay)]),
        repeats)
    metrics["build_io_parallel_s"] = _best(
        lambda: build(workers,
                      extra=[SimulatedIoStage(io_batches_delay)]),
        repeats)
    speedups["io_overlap"] = (metrics["build_io_serial_s"]
                              / metrics["build_io_parallel_s"])

    # -- inter-stage cache: cold build vs warm rebuild ---------------
    cache = StageCache()
    started = time.perf_counter()
    build(0, cache=cache)
    metrics["build_cold_cache_s"] = time.perf_counter() - started
    started = time.perf_counter()
    build(0, cache=cache)
    metrics["build_warm_cache_s"] = time.perf_counter() - started
    assert cache.hits >= 1, "warm rebuild did not hit the cache"
    speedups["cached_rebuild"] = (metrics["build_cold_cache_s"]
                                  / metrics["build_warm_cache_s"])

    # -- similarity_matrix: memoized vs the seed's per-cell walks ----
    store = build(0).stages[-1].store
    sequences = state_sequences(store)[:sim_count]
    hierarchy = space.zone_hierarchy
    metrics["similarity_naive_s"] = _best(
        lambda: _naive_similarity_matrix(hierarchy, sequences),
        repeats)
    metrics["similarity_optimized_s"] = _best(
        lambda: similarity_matrix(hierarchy, sequences), repeats)
    speedups["similarity"] = (metrics["similarity_naive_s"]
                              / metrics["similarity_optimized_s"])
    assert similarity_matrix(hierarchy, sequences) \
        == _naive_similarity_matrix(hierarchy, sequences), \
        "optimized similarity diverged from the reference"

    # -- informational: interval build + timing-off fast path --------
    intervals = [Interval(float(i % 977), float(i % 977 + i % 53 + 1),
                          i) for i in range(interval_count)]
    metrics["interval_index_build_s"] = _best(
        lambda: IntervalIndex(intervals), repeats)

    # _push fast path micro-bench: single-item batches make the
    # per-batch timer calls the dominant engine overhead.
    tiny_items = list(range(2000 if smoke else 20000))

    def micro(timing: bool) -> None:
        Pipeline([MapStage(lambda item: item, name="id-a"),
                  MapStage(lambda item: item, name="id-b")],
                 batch_size=1, timing=timing).run(tiny_items,
                                                  collect=False)

    metrics["push_timing_on_s"] = _best(lambda: micro(True),
                                        max(repeats, 3))
    metrics["push_timing_off_s"] = _best(lambda: micro(False),
                                         max(repeats, 3))
    speedups["push_no_timing"] = (metrics["push_timing_on_s"]
                                  / metrics["push_timing_off_s"])

    import os

    from provenance import louvre_provenance

    return {
        "meta": {
            "smoke": smoke,
            "workers": workers,
            "scale": scale,
            "records": len(records),
            "similarity_sequences": len(sequences),
            "provenance": louvre_provenance(scale),
            "python": sys.version.split()[0],
            "cpus": os.cpu_count(),
        },
        "metrics": {key: round(value, 6)
                    for key, value in metrics.items()},
        "speedups": {key: round(value, 3)
                     for key, value in speedups.items()},
    }


def check_regression(result: Dict[str, object], baseline_path: str,
                     threshold: float) -> List[str]:
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    # Compare like against like: a smoke run checks the baseline's
    # smoke section (ratios shift with workload size).
    if bool(baseline.get("meta", {}).get("smoke")) \
            == bool(result["meta"]["smoke"]):
        reference_speedups = baseline.get("speedups", {})
    else:
        reference_speedups = baseline.get("smoke_speedups", {})
    failures = []
    for key in CHECKED_SPEEDUPS:
        reference = reference_speedups.get(key)
        measured = result["speedups"].get(key)
        if reference is None or measured is None:
            continue
        floor = reference * (1.0 - threshold)
        if measured < floor:
            failures.append(
                "speedup {!r} regressed: measured {:.2f}x < floor "
                "{:.2f}x (baseline {:.2f}x, threshold {:.0%})".format(
                    key, measured, floor, reference, threshold))
    return failures


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced corpus for CI")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", metavar="PATH",
                        help="write the measurements as JSON")
    parser.add_argument("--check", metavar="BASELINE",
                        help="fail on speedup regression vs a "
                             "committed BENCH_pipeline.json")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="allowed relative regression (default "
                             "0.2 = 20%%)")
    args = parser.parse_args(argv)

    result = run_benchmarks(smoke=args.smoke, workers=args.workers)
    if args.out and not args.smoke:
        # Embed a smoke-mode section so CI smoke runs have a
        # same-workload reference to regression-check against.
        smoke_result = run_benchmarks(smoke=True,
                                      workers=args.workers)
        result["smoke_speedups"] = smoke_result["speedups"]
        result["smoke_metrics"] = smoke_result["metrics"]
    print(json.dumps(result, indent=2))

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print("\nwrote {}".format(args.out))

    if args.check:
        failures = check_regression(result, args.check,
                                    args.threshold)
        if failures:
            for failure in failures:
                print("REGRESSION: " + failure, file=sys.stderr)
            return 1
        print("no speedup regression vs {} (checked: {})".format(
            args.check, ", ".join(CHECKED_SPEEDUPS)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
