"""Bench P1 — throughput of every pipeline stage.

Measures the stages of the paper's data pipeline end to end on the
paper-sized corpus: generation → trajectory building → storage
indexing → query → sequential pattern mining, plus the positioning
stack (RSSI → trilateration → EKF) that produced the raw data.

The building and storage benches run on the :mod:`repro.pipeline`
engine — stage-level numbers (e.g. the ~10 % zero-duration cleaning
share of Section 4.1) are read from the engine's metrics instead of
being recomputed ad hoc — and the streaming path's peak memory is
checked against the materialized path.
"""

import random
import tracemalloc

from repro.core import TrajectoryBuilder
from repro.core.annotations import AnnotationKind
from repro.louvre.dataset import DatasetParameters, LouvreDatasetGenerator
from repro.mining.prefixspan import prefixspan
from repro.mining.sequences import state_sequences
from repro.pipeline import (
    Pipeline,
    PrefixSpanStage,
    StateSequenceStage,
    StoreSinkStage,
)
from repro.positioning import (
    BeaconGrid,
    ExtendedKalmanFilter2D,
    RssiModel,
    trilaterate,
)
from repro.spatial.geometry import BBox, Point
from repro.storage import Query, TrajectoryStore


def test_bench_generate_corpus(benchmark, louvre_space):
    """Stage 1: generate the 20,245-record corpus."""
    generator = LouvreDatasetGenerator(louvre_space, DatasetParameters())
    records = benchmark(generator.detection_records)
    assert len(records) == 20245


def test_bench_build_trajectories(benchmark, louvre_space,
                                  full_corpus_records):
    """Stage 2: clean, segment and build 4,945 visits on the engine."""
    builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
    trajectories, report = benchmark(builder.build_all,
                                     full_corpus_records)
    assert report.trajectories == len(trajectories)
    # The ~10 % zero-duration share is reported by the engine's clean
    # stage metrics, not recomputed from the data.
    clean = report.stage_metrics["clean"]
    share = clean.drops["zero_duration"] / clean.items_in
    assert 0.08 <= share <= 0.12
    assert share == report.cleaning.zero_duration_share


def test_bench_store_insert(benchmark, full_corpus_trajectories):
    """Stage 3a: per-insert indexing baseline."""

    def insert_all():
        store = TrajectoryStore()
        for trajectory in full_corpus_trajectories:
            store.insert(trajectory)
        return store

    store = benchmark(insert_all)
    assert len(store) == len(full_corpus_trajectories)


def test_bench_store_extend(benchmark, full_corpus_trajectories):
    """Stage 3b: the bulk extend() fast path (one batch)."""

    def extend_all():
        store = TrajectoryStore()
        store.extend(full_corpus_trajectories)
        return store

    store = benchmark(extend_all)
    assert len(store) == len(full_corpus_trajectories)
    assert store.ids_of_mo(full_corpus_trajectories[0].mo_id)


def test_bench_store_query(benchmark, full_corpus_trajectories):
    """Stage 4: an index-backed spatio-semantic query."""
    store = TrajectoryStore()
    store.extend(full_corpus_trajectories)

    def query():
        # execute() is lazy; materialize so the index work is timed.
        return (Query(store)
                .visiting_state("zone60853")
                .with_annotation(AnnotationKind.GOAL, "visit")
                .min_entries(2)
                .execute().to_list())

    hits = benchmark(query)
    assert hits
    assert all(h.trajectory.trace.visits_state("zone60853")
               for h in hits)


def test_bench_prefixspan(benchmark, full_corpus_trajectories):
    """Stage 5: sequential pattern mining on the full corpus."""
    sequences = state_sequences(full_corpus_trajectories)
    patterns = benchmark(prefixspan, sequences,
                         max(2, len(sequences) // 20), 4)
    assert patterns
    assert patterns[0].support >= patterns[-1].support


def test_bench_pipeline_end_to_end(benchmark, louvre_space,
                                   full_corpus_records):
    """The whole chain as one engine run: build → store → mine."""
    builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())

    def run_pipeline():
        store_sink = StoreSinkStage()
        miner = PrefixSpanStage(min_support=0.05, max_length=4)
        pipeline = Pipeline(
            builder.stages(streaming=True)
            + [store_sink, StateSequenceStage(), miner],
            batch_size=1024)
        pipeline.run(full_corpus_records, collect=False)
        return store_sink.store, miner.patterns

    store, patterns = benchmark(run_pipeline)
    assert len(store) == 4819
    assert patterns


def test_streaming_memory_bounded(louvre_space, full_corpus_records,
                                  tmp_path):
    """Streaming from disk keeps peak memory far below materializing.

    Writes the corpus to CSV, then compares the tracemalloc peak of
    (a) the materialized path — read everything, build everything —
    against (b) the streaming engine over the same file with a small
    batch size and an aggregating sink.
    """
    from repro.pipeline import csv_source
    from repro.storage.csvio import read_detrecords_csv, \
        write_detections_csv

    path = str(tmp_path / "corpus.csv")
    write_detections_csv(full_corpus_records, path)
    builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())

    tracemalloc.start()
    records = read_detrecords_csv(path)
    trajectories, _ = builder.build_all(records)
    sequences = state_sequences(trajectories)
    patterns_materialized = prefixspan(
        sequences, max(2, len(sequences) // 20), 4)
    _, materialized_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del records, trajectories, sequences

    tracemalloc.start()
    miner = PrefixSpanStage(min_support=0.05, max_length=4)
    pipeline = Pipeline(
        builder.stages(streaming=True)
        + [StateSequenceStage(), miner],
        batch_size=256)
    pipeline.run(csv_source(path), collect=False)
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert patterns_materialized
    assert miner.patterns
    assert streaming_peak < 0.5 * materialized_peak, \
        "streaming peak {} not bounded vs materialized {}".format(
            streaming_peak, materialized_peak)


def test_bench_positioning_stack(benchmark):
    """The sensing substrate: 100 scans → fixes → EKF track."""
    grid = BeaconGrid(BBox(0, 0, 100, 50), floor=0, spacing=12.0)
    registry = {b.beacon_id: b for b in grid.beacons}

    def run_track():
        model = RssiModel(rng=random.Random(7))
        ekf = ExtendedKalmanFilter2D(initial_position=Point(5, 25))
        fixes = 0
        for step in range(100):
            truth = Point(5.0 + step * 0.9, 25.0)
            readings = model.scan(grid.beacons, truth, 0, float(step))
            fix = trilaterate(readings, registry, model)
            if fix is None:
                continue
            if step:
                ekf.predict(1.0)
            ekf.update_position(fix.position)
            fixes += 1
        return fixes, ekf.position

    fixes, final = benchmark(run_track)
    assert fixes > 90
    # The EKF track ends near the true final position.
    assert final.distance_to(Point(94.1, 25.0)) < 10.0
