"""Bench P1 — throughput of every pipeline stage.

Measures the stages of the paper's data pipeline end to end on the
paper-sized corpus: generation → trajectory building → storage
indexing → query → sequential pattern mining, plus the positioning
stack (RSSI → trilateration → EKF) that produced the raw data.
"""

import random

from repro.core import TrajectoryBuilder
from repro.core.annotations import AnnotationKind
from repro.louvre.dataset import DatasetParameters, LouvreDatasetGenerator
from repro.mining.prefixspan import prefixspan
from repro.mining.sequences import state_sequences
from repro.positioning import (
    BeaconGrid,
    ExtendedKalmanFilter2D,
    RssiModel,
    trilaterate,
)
from repro.spatial.geometry import BBox, Point
from repro.storage import Query, TrajectoryStore


def test_bench_generate_corpus(benchmark, louvre_space):
    """Stage 1: generate the 20,245-record corpus."""
    generator = LouvreDatasetGenerator(louvre_space, DatasetParameters())
    records = benchmark(generator.detection_records)
    assert len(records) == 20245


def test_bench_build_trajectories(benchmark, louvre_space,
                                  full_corpus_records):
    """Stage 2: clean, segment and build 4,945 visits."""
    builder = TrajectoryBuilder(louvre_space.dataset_zone_nrg())
    trajectories, report = benchmark(builder.build_all,
                                     full_corpus_records)
    assert report.trajectories == len(trajectories)
    assert 0.08 <= report.cleaning.zero_duration_share <= 0.12


def test_bench_store_insert(benchmark, full_corpus_trajectories):
    """Stage 3: index the full corpus into the trajectory store."""

    def insert_all():
        store = TrajectoryStore()
        store.insert_many(full_corpus_trajectories)
        return store

    store = benchmark(insert_all)
    assert len(store) == len(full_corpus_trajectories)


def test_bench_store_query(benchmark, full_corpus_trajectories):
    """Stage 4: an index-backed spatio-semantic query."""
    store = TrajectoryStore()
    store.insert_many(full_corpus_trajectories)

    def query():
        return (Query(store)
                .visiting_state("zone60853")
                .with_annotation(AnnotationKind.GOAL, "visit")
                .min_entries(2)
                .execute())

    hits = benchmark(query)
    assert hits
    assert all(h.trajectory.trace.visits_state("zone60853")
               for h in hits)


def test_bench_prefixspan(benchmark, full_corpus_trajectories):
    """Stage 5: sequential pattern mining on the full corpus."""
    sequences = state_sequences(full_corpus_trajectories)
    patterns = benchmark(prefixspan, sequences,
                         max(2, len(sequences) // 20), 4)
    assert patterns
    assert patterns[0].support >= patterns[-1].support


def test_bench_positioning_stack(benchmark):
    """The sensing substrate: 100 scans → fixes → EKF track."""
    grid = BeaconGrid(BBox(0, 0, 100, 50), floor=0, spacing=12.0)
    registry = {b.beacon_id: b for b in grid.beacons}

    def run_track():
        model = RssiModel(rng=random.Random(7))
        ekf = ExtendedKalmanFilter2D(initial_position=Point(5, 25))
        fixes = 0
        for step in range(100):
            truth = Point(5.0 + step * 0.9, 25.0)
            readings = model.scan(grid.beacons, truth, 0, float(step))
            fix = trilaterate(readings, registry, model)
            if fix is None:
                continue
            if step:
                ekf.predict(1.0)
            ekf.update_position(fix.position)
            fixes += 1
        return fixes, ekf.position

    fixes, final = benchmark(run_track)
    assert fixes > 90
    # The EKF track ends near the true final position.
    assert final.distance_to(Point(94.1, 25.0)) < 10.0
