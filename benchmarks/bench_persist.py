"""Bench P1 — durable storage: snapshot, log, and disk-cache costs.

Run as a script (not under pytest-benchmark); against a built corpus
it measures

* ``snapshot_save`` / ``snapshot_load`` — the on-disk snapshot format
  (``repro.persist.format``) in MB/s over the segment bytes, load
  split into the install-serialized-indexes path and the
  rebuild-indexes path;
* ``wal_append`` — write-ahead-log overhead on the ingest path:
  plain ``TrajectoryStore.extend`` vs the same batches journaled with
  ``fsync`` off and on (per-trajectory microseconds and the overhead
  ratio — the price of durability-as-you-stream);
* ``wal_replay`` — crash-recovery speed (records/s through
  ``replay_into``);
* ``wal_group_commit`` — concurrent durable ingest: 8 appender
  threads sharing write+fsync groups vs the same work serialized one
  fsync per append, plus the achieved coalescing ratio
  (``appends / group_flushes``) and the cost relative to the
  fsync-free log (the acceptance bar: group-committed durable ingest
  within 1.5x of nofsync);
* ``disk_cache`` — cold pipeline build vs a warm rebuild through a
  *fresh* :class:`~repro.persist.DiskStageCache` instance over the
  same directory (the restart scenario the cache exists for).

``--out`` writes the measurements; the committed baseline is
``BENCH_persist.json``.  ``--smoke`` shrinks the corpus for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from typing import Dict, List

from repro.api import Workbench
from repro.louvre.space import LouvreSpace
from repro.persist import DiskStageCache, WriteAheadLog, load_store, save_store
from repro.pipeline.sources import louvre_source
from repro.storage.store import TrajectoryStore


def _timed(callable_):
    started = time.perf_counter()
    result = callable_()
    return time.perf_counter() - started, result


def bench_snapshot(store, base: str, repeats: int) -> Dict[str, Dict]:
    path = os.path.join(base, "snap")
    save_seconds: List[float] = []
    info = None
    for i in range(repeats):
        target = "{}-{}".format(path, i)
        seconds, info = _timed(lambda: save_store(store, target))
        save_seconds.append(seconds)
    mb = info.total_bytes / 1e6
    load_seconds: List[float] = []
    rebuild_seconds: List[float] = []
    for i in range(repeats):
        target = "{}-{}".format(path, i % repeats)
        seconds, _ = _timed(lambda: load_store(target))
        load_seconds.append(seconds)
        seconds, _ = _timed(
            lambda: load_store(target, use_indexes=False))
        rebuild_seconds.append(seconds)
    return {
        "snapshot_save": {
            "segment_mb": mb,
            "seconds": min(save_seconds),
            "mb_per_s": mb / min(save_seconds),
        },
        "snapshot_load": {
            "seconds": min(load_seconds),
            "mb_per_s": mb / min(load_seconds),
            "rebuild_indexes_seconds": min(rebuild_seconds),
            "rebuild_indexes_mb_per_s": mb / min(rebuild_seconds),
        },
    }


def bench_wal(trajectories, base: str,
              batch_size: int) -> Dict[str, Dict]:
    batches = [trajectories[i:i + batch_size]
               for i in range(0, len(trajectories), batch_size)]

    def ingest(wal) -> float:
        store = TrajectoryStore()
        if wal is not None:
            store.attach_wal(wal)
        started = time.perf_counter()
        for batch in batches:
            store.extend(batch)
        return time.perf_counter() - started

    plain = ingest(None)
    buffered_log = WriteAheadLog(os.path.join(base, "nofsync.log"),
                                 fsync=False)
    buffered = ingest(buffered_log)
    buffered_log.close()
    durable_log = WriteAheadLog(os.path.join(base, "fsync.log"),
                                fsync=True)
    durable = ingest(durable_log)
    durable_log.close()

    replay_target = TrajectoryStore()
    replay_log = WriteAheadLog(os.path.join(base, "fsync.log"))
    replay_seconds, last = _timed(
        lambda: replay_log.replay_into(replay_target))
    count = len(trajectories)
    per_us = lambda seconds: seconds / count * 1e6  # noqa: E731
    return {
        "wal_append": {
            "trajectories": count,
            "batch_size": batch_size,
            "plain_us_per_doc": per_us(plain),
            "nofsync_us_per_doc": per_us(buffered),
            "fsync_us_per_doc": per_us(durable),
            "nofsync_overhead_x": buffered / plain,
            "fsync_overhead_x": durable / plain,
        },
        "wal_replay": {
            "records": last,
            "seconds": replay_seconds,
            "docs_per_s": count / replay_seconds,
        },
    }


def bench_group_commit(trajectories, base: str, writers: int = 8,
                       batch_size: int = 16) -> Dict[str, Dict]:
    batches = [trajectories[i:i + batch_size]
               for i in range(0, len(trajectories), batch_size)]

    def concurrent_ingest(path: str, fsync: bool):
        wal = WriteAheadLog(path, fsync=fsync)
        errors: List[BaseException] = []

        def worker(index: int) -> None:
            try:
                for batch in batches[index::writers]:
                    wal.append(batch)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(writers)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        wal.close()
        assert not errors, errors[:1]
        return elapsed, wal

    durable_seconds, durable_wal = concurrent_ingest(
        os.path.join(base, "gc-fsync.log"), fsync=True)
    nofsync_seconds, _ = concurrent_ingest(
        os.path.join(base, "gc-nofsync.log"), fsync=False)

    # The pre-group-commit equivalent: one appender, one fsync each.
    serial_log = WriteAheadLog(os.path.join(base, "gc-serial.log"),
                               fsync=True)
    started = time.perf_counter()
    for batch in batches:
        serial_log.append(batch)
    serial_seconds = time.perf_counter() - started
    serial_log.close()

    count = len(trajectories)
    per_us = lambda seconds: seconds / count * 1e6  # noqa: E731
    return {
        "wal_group_commit": {
            "writers": writers,
            "batch_size": batch_size,
            "appends": durable_wal.appends,
            "group_flushes": durable_wal.group_flushes,
            "coalescing_x": durable_wal.appends
            / max(1, durable_wal.group_flushes),
            "fsync_us_per_doc": per_us(durable_seconds),
            "nofsync_us_per_doc": per_us(nofsync_seconds),
            "serial_fsync_us_per_doc": per_us(serial_seconds),
            "vs_nofsync_x": durable_seconds / nofsync_seconds,
            "vs_serial_fsync_speedup_x": serial_seconds
            / durable_seconds,
        },
    }


def bench_disk_cache(scale: float, base: str) -> Dict[str, Dict]:
    cache_dir = os.path.join(base, "stage-cache")

    def build(cache) -> float:
        workbench = Workbench(space=LouvreSpace())
        started = time.perf_counter()
        workbench.build(louvre_source(workbench.space, scale=scale),
                        cache=cache)
        return time.perf_counter() - started

    cold = build(DiskStageCache(cache_dir))
    warm_cache = DiskStageCache(cache_dir)  # fresh instance: restart
    warm = build(warm_cache)
    assert warm_cache.disk_hits == 1, "expected a disk hit"
    return {
        "disk_cache": {
            "cold_build_seconds": cold,
            "warm_rebuild_seconds": warm,
            "speedup_x": cold / warm,
        },
    }


def run_benchmarks(smoke: bool = False) -> Dict:
    scale = 0.02 if smoke else 0.2
    repeats = 2 if smoke else 3
    workbench = Workbench.louvre(scale=scale)
    trajectories = list(workbench.store)

    base = tempfile.mkdtemp(prefix="bench-persist-")
    try:
        metrics: Dict[str, Dict] = {}
        metrics.update(bench_snapshot(workbench.store, base, repeats))
        metrics.update(bench_wal(trajectories, base, batch_size=64))
        metrics.update(bench_group_commit(trajectories, base))
        metrics.update(bench_disk_cache(scale, base))
    finally:
        shutil.rmtree(base, ignore_errors=True)

    from provenance import louvre_provenance

    return {
        "bench": "persist",
        "config": {"smoke": smoke, "scale": scale,
                   "corpus": len(trajectories),
                   "provenance": louvre_provenance(scale),
                   "python": sys.version.split()[0]},
        "metrics": metrics,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced corpus for CI")
    parser.add_argument("--out", metavar="PATH",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)

    result = run_benchmarks(smoke=args.smoke)
    if args.out and not args.smoke:
        # Embed a smoke-mode section so CI smoke runs have a
        # same-workload reference.
        result["smoke_metrics"] = run_benchmarks(
            smoke=True)["metrics"]
    print(json.dumps(result, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print("\nwrote {}".format(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
