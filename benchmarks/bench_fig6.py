"""Bench F6 — the Figure 6 missing-presence inference."""

from repro.experiments import fig6


def test_bench_fig6(benchmark, louvre_space):
    """Topology-based repair of the E → (gap) → S trajectory."""
    result = benchmark(fig6.run, louvre_space)
    assert result["zone_p_is_inferred"]
    assert result["repaired_states"] == [
        "zone60887", "zone60888", "zone60890"]
    assert result["tuples_inserted"] == 1
    # The inserted tuple matches the paper's worked example.
    assert result["inferred_transition"] == "checkpoint002"
    assert result["inferred_interval"] == ("17:30:21", "17:31:42")
    assert result["inferred_goals"] == [
        "cloakroomPickup", "museumExit", "souvenirBuy"]
    # The chain topology admits a single shortest path: certainty.
    assert result["confidence"] == 1.0
