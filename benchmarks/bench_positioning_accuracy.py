"""Bench P2 — positioning estimator comparison (raw / EKF / PF).

Documents the quality of the DESIGN.md positioning substitution: the
smoothed estimators must beat raw trilateration on the same walk.
"""

from repro.experiments import positioning_accuracy


def test_bench_positioning_accuracy(benchmark):
    result = benchmark(positioning_accuracy.run, 20170119)
    assert result["ekf_beats_raw"]
    assert result["filters_beat_raw_median"]
    raw = result["error_stats"]["raw"]["mean"]
    ekf = result["error_stats"]["ekf"]["mean"]
    pf = result["error_stats"]["pf"]["mean"]
    # The shape the simulation must preserve: filtering helps, and by
    # a sane (not magical) factor.
    assert 0.3 < ekf / raw < 1.0
    assert 0.3 < pf / raw < 1.0
