"""Corpus-generator provenance stamped into BENCH_*.json payloads.

Every committed benchmark baseline records exactly which generator,
seeds and population produced the corpus it measured — so a future
run can tell a perf regression from a workload change.  Two corpus
families exist:

* :func:`louvre_provenance` — the paper-calibrated Louvre corpus
  (``repro.louvre``): generator seed and the scaled visitor counts;
* :func:`synth_provenance` — a ``repro.synth`` venue + crowd: the
  archetype, both seeds and the agent count, as reported by
  :meth:`CrowdSynthesizer.provenance
  <repro.synth.crowd.CrowdSynthesizer.provenance>`.
"""

from __future__ import annotations

from typing import Dict

from repro.louvre import DatasetParameters


def louvre_provenance(scale: float) -> Dict[str, object]:
    """Provenance of the (scaled) synthetic Louvre corpus."""
    parameters = (DatasetParameters() if scale >= 1.0
                  else DatasetParameters().scaled(scale))
    return {
        "generator": "louvre",
        "seed": parameters.seed,
        "scale": scale,
        "agents": parameters.visitors,
        "visits": parameters.total_visits,
    }


def synth_provenance(crowd) -> Dict[str, object]:
    """Provenance of a synthetic venue + crowd corpus."""
    payload = {"generator": "synth"}
    payload.update(crowd.provenance())
    return payload
