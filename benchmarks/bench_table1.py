"""Bench T1 — regenerate Table 1 and its executable verifications."""

from repro.experiments import table1


def test_bench_table1(benchmark):
    """Table 1 regeneration: all four row verifications must pass."""
    result = benchmark(table1.run)
    assert result["all_passed"]
    assert len(result["table_rows"]) == 3
    # The joint-edge column excludes disjoint and meet.
    assert "disjoint" not in result["joint_edge_relations"]
    assert "meet" not in result["joint_edge_relations"]
    assert len(result["joint_edge_relations"]) == 6
