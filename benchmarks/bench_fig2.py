"""Bench F2 — the Figure 2 core layer hierarchy over the full Louvre."""

from repro.experiments import fig2


def test_bench_fig2(benchmark, louvre_space):
    """Hierarchy validation, lifting, and QSR propagation."""
    result = benchmark(fig2.run, louvre_space)
    assert result["has_core_roles"]
    assert result["validation_problems"] == []
    # The paper: hundreds of rooms, several hundred RoIs.
    assert result["layer_sizes"]["rooms"] >= 100
    assert result["layer_sizes"]["rois"] >= 100
    # Mona Lisa lifts through Salle des États to the Denon wing.
    assert result["mona_lisa_wing"] == "wing:denon"
    assert result["mona_lisa_chain"][-1] == "louvre"
    # Parthood propagates upward: RoI inside room coveredBy floor
    # composes to insideOf.
    assert result["roi_floor_relations"] == ["insideOf"]
    assert result["qsr_consistent"]
