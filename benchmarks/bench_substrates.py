"""Micro-benchmarks of the substrate layers.

Not tied to a specific paper artefact; these document the costs of the
primitives everything else is built from (topological relation
computation, QSR propagation, interval-index queries, hierarchy
lifting) and guard against accidental complexity regressions.
"""

import random

from repro.core.inference import lift_trajectory
from repro.spatial.geometry import Polygon
from repro.spatial.qsr import RelationNetwork
from repro.spatial.topology import TopologicalRelation, relate
from repro.storage.intervals import Interval, IntervalIndex


def test_bench_relate(benchmark):
    """Pairwise topological relation over a 30-polygon field."""
    rng = random.Random(3)
    polygons = []
    for _ in range(30):
        x = rng.uniform(0, 100)
        y = rng.uniform(0, 100)
        w = rng.uniform(5, 25)
        h = rng.uniform(5, 25)
        polygons.append(Polygon.rectangle(x, y, x + w, y + h))

    def relate_all():
        counts = {}
        for i, a in enumerate(polygons):
            for b in polygons[i + 1:]:
                relation = relate(a, b)
                counts[relation] = counts.get(relation, 0) + 1
        return counts

    counts = benchmark(relate_all)
    assert sum(counts.values()) == 30 * 29 // 2
    assert TopologicalRelation.DISJOINT in counts


def test_bench_qsr_propagation(benchmark):
    """Path consistency over a 12-node containment chain network."""

    def propagate():
        network = RelationNetwork()
        for i in range(11):
            network.constrain("r{}".format(i), "r{}".format(i + 1),
                              [TopologicalRelation.INSIDE])
        ok = network.propagate()
        return ok, network.definite("r0", "r11")

    ok, definite = benchmark(propagate)
    assert ok
    # Containment is transitive: the chain endpoint relation is known.
    assert definite is TopologicalRelation.INSIDE


def test_bench_interval_index(benchmark):
    """Build + 200 window queries over 20k presence intervals."""
    rng = random.Random(11)
    intervals = []
    for i in range(20000):
        start = rng.uniform(0, 1e6)
        intervals.append(Interval(start, start + rng.uniform(1, 3600), i))

    def build_and_query():
        index = IntervalIndex(intervals)
        hits = 0
        for q in range(200):
            t = q * 5000.0
            hits += len(index.overlapping(t, t + 1800.0))
        return hits

    hits = benchmark(build_and_query)
    assert hits > 0


def test_bench_hierarchy_lifting(benchmark, louvre_space,
                                 full_corpus_trajectories):
    """Lift 500 zone-level trajectories to the floor layer."""
    sample = full_corpus_trajectories[:500]

    def lift_all():
        lifted = 0
        for trajectory in sample:
            lift_trajectory(trajectory, louvre_space.zone_hierarchy,
                            "floors")
            lifted += 1
        return lifted

    lifted = benchmark(lift_all)
    assert lifted == len(sample)
