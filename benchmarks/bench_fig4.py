"""Bench F4 — the Figure 4 full-coverage hypothesis analysis."""

from repro.experiments import fig4


def test_bench_fig4(benchmark, louvre_space):
    """Coverage ratios at the Room and RoI hierarchy steps."""
    result = benchmark(fig4.run, louvre_space)
    # Rooms fully cover floors (the hypothesis holds there)...
    assert result["floors_fully_covered"]
    assert result["floor_coverage"]["min_ratio"] >= 0.999
    # ...but RoIs do not fully cover rooms (the Figure 4 point).
    assert not result["rois_fully_cover_rooms"]
    assert result["roi_coverage"]["max_ratio"] < 0.5
    # The figure's specific rooms in zones 60853/60854 are under-covered.
    assert result["figure_rooms"]
    assert all(r["ratio"] < 0.5 for r in result["figure_rooms"])
