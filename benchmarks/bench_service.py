"""Bench S1 — service-layer request throughput and latency.

Run as a script (not under pytest-benchmark): against one *warm*
session (built once, store indexes hot) it measures

* ``local_call`` — ``RunQuery`` through the in-process
  :class:`~repro.service.executor.LocalBinding` (protocol cost
  without HTTP: dispatch, planning, pagination, typed responses);
* ``http_query`` — the same command over the embedded HTTP server on
  an ephemeral port, sequential requests (per-request latency
  p50/p95 and requests/s, connection setup included as a real client
  pays it);
* ``http_paginate`` — a full stable-cursor walk over the corpus in
  pages of 100 (pages/s);
* ``http_concurrent`` — 4 client threads hammering ``RunQuery``
  against the threaded server (aggregate requests/s).

The serialization denominator: every request plans the query, pages
the lazy result set, and serializes full trajectories to canonical
JSON — so requests/s here is end-to-end service work, not socket
ping-pong.  ``--out`` writes the measurements (the committed baseline
is ``BENCH_service.json``); ``--smoke`` shrinks the corpus and
request counts for CI.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from typing import Dict, List

from repro.service import protocol as P
from repro.service.client import ServiceClient
from repro.service.executor import LocalBinding
from repro.service.registry import SessionRegistry
from repro.service.server import ServiceServer

SESSION = "bench"
QUERY = {"expr": {"op": "annotation", "kind": "goal",
                  "value": "visit"}}


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


def _latency_stats(samples: List[float]) -> Dict[str, float]:
    return {
        "mean_ms": statistics.fmean(samples) * 1000.0,
        "p50_ms": _percentile(samples, 0.50) * 1000.0,
        "p95_ms": _percentile(samples, 0.95) * 1000.0,
        "max_ms": max(samples) * 1000.0,
    }


def run_benchmarks(smoke: bool = False) -> Dict:
    scale = 0.02 if smoke else 0.1
    requests = 50 if smoke else 300
    limit = 20

    registry = SessionRegistry()
    job = registry.build(SESSION, scale=scale, wait=True)
    assert job.state.value == "done", job.error
    corpus_size = len(registry.get(SESSION).workbench.store)

    binding = LocalBinding(registry)
    command = P.RunQuery(session=SESSION, query=QUERY, limit=limit,
                         include_total=False)

    # -- in-process protocol dispatch ----------------------------------
    binding.call(command)  # warm
    local_times: List[float] = []
    for _ in range(requests):
        started = time.perf_counter()
        response = binding.call(command)
        local_times.append(time.perf_counter() - started)
        assert response.hits

    metrics: Dict[str, Dict] = {
        "local_call": dict(_latency_stats(local_times),
                           requests_per_s=requests
                           / sum(local_times)),
    }

    # -- over HTTP ------------------------------------------------------
    server = ServiceServer(registry, port=0).start()
    try:
        client = ServiceClient(server.url)
        client.run_query(SESSION, QUERY, limit=limit)  # warm

        http_times: List[float] = []
        for _ in range(requests):
            started = time.perf_counter()
            page = client.run_query(SESSION, QUERY, limit=limit,
                                    include_total=False)
            http_times.append(time.perf_counter() - started)
            assert page.hits
        metrics["http_query"] = dict(
            _latency_stats(http_times),
            requests_per_s=requests / sum(http_times))

        started = time.perf_counter()
        pages = 0
        hits = 0
        for page in client.iter_pages(SESSION, QUERY, limit=100):
            pages += 1
            hits += len(page.hits)
        paginate_seconds = time.perf_counter() - started
        metrics["http_paginate"] = {
            "pages": pages, "hits": hits,
            "seconds": paginate_seconds,
            "pages_per_s": pages / paginate_seconds,
        }

        workers = 4
        per_worker = max(10, requests // workers)
        errors: List[BaseException] = []

        def hammer() -> None:
            try:
                worker_client = ServiceClient(server.url)
                for _ in range(per_worker):
                    worker_client.run_query(SESSION, QUERY,
                                            limit=limit,
                                            include_total=False)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer)
                   for _ in range(workers)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_seconds = time.perf_counter() - started
        assert not errors, errors[:1]
        metrics["http_concurrent"] = {
            "threads": workers,
            "requests": workers * per_worker,
            "seconds": concurrent_seconds,
            "requests_per_s": workers * per_worker
            / concurrent_seconds,
        }
    finally:
        server.stop()

    return {
        "bench": "service",
        "config": {"smoke": smoke, "scale": scale,
                   "requests": requests, "limit": limit,
                   "corpus": corpus_size,
                   "python": sys.version.split()[0]},
        "metrics": metrics,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced corpus/requests for CI")
    parser.add_argument("--out", metavar="PATH",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)

    result = run_benchmarks(smoke=args.smoke)
    if args.out and not args.smoke:
        # Embed a smoke-mode section so CI smoke runs have a
        # same-workload reference.
        result["smoke_metrics"] = run_benchmarks(
            smoke=True)["metrics"]
    print(json.dumps(result, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print("\nwrote {}".format(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
