"""Bench S1 — service-layer request throughput and latency.

Run as a script (not under pytest-benchmark): against one *warm*
session (built once, store indexes hot) it measures

* ``local_call`` — ``RunQuery`` through the in-process
  :class:`~repro.service.executor.LocalBinding` (protocol cost
  without HTTP: dispatch, planning, pagination, typed responses);
* ``http_query`` — the same command over the embedded HTTP server on
  an ephemeral port, sequential requests (per-request latency
  p50/p95 and requests/s, connection setup included as a real client
  pays it);
* ``http_paginate`` — a full stable-cursor walk over the corpus in
  pages of 100 (pages/s);
* ``http_concurrent`` — 4 client threads hammering ``RunQuery``
  against the threaded server (aggregate requests/s);
* ``openloop`` — the concurrent load benchmark: raw keep-alive
  sockets firing pre-serialized requests at a **target arrival
  rate**, latency measured from each request's *intended* send time
  (no coordinated omission — a slow server inflates the tail instead
  of slowing the load down).  Three server configurations are
  driven: the asyncio front-end with its versioned response cache
  (the deployment default and the headline number), the asyncio
  front-end with the cache off (every request pays plan + execute +
  serialize), and the legacy threaded server.

The serialization denominator: every request plans the query, pages
the lazy result set, and serializes full trajectories to canonical
JSON — so requests/s here is end-to-end service work, not socket
ping-pong.  ``--out`` writes the measurements (the committed baseline
is ``BENCH_service.json``); ``--smoke`` shrinks the corpus and
request counts for CI, and ``--floor N`` exits non-zero when the
open-loop headline throughput lands under N requests/s (the CI
regression gate).
"""

from __future__ import annotations

import argparse
import json
import socket
import statistics
import sys
import threading
import time
from typing import Dict, List

from repro.service import protocol as P
from repro.service.aserver import AsyncServiceServer
from repro.service.client import ServiceClient
from repro.service.executor import LocalBinding
from repro.service.registry import SessionRegistry
from repro.service.server import ServiceServer
from repro.synth.pacing import ArrivalSchedule

SESSION = "bench"
QUERY = {"expr": {"op": "annotation", "kind": "goal",
                  "value": "visit"}}


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


def _latency_stats(samples: List[float]) -> Dict[str, float]:
    return {
        "mean_ms": statistics.fmean(samples) * 1000.0,
        "p50_ms": _percentile(samples, 0.50) * 1000.0,
        "p95_ms": _percentile(samples, 0.95) * 1000.0,
        "max_ms": max(samples) * 1000.0,
    }


def _post_bytes(body: bytes) -> bytes:
    return (b"POST /v1/call HTTP/1.1\r\nHost: bench\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode()
            + b"\r\n\r\n" + body)


def _quickack(sock: socket.socket) -> None:
    # The legacy http.server front-end writes a response as several
    # small segments with Nagle on; without immediate ACKs the bench
    # would measure the kernel's delayed-ACK timer, not the server.
    if hasattr(socket, "TCP_QUICKACK"):  # Linux
        try:
            sock.setsockopt(socket.IPPROTO_TCP,
                            socket.TCP_QUICKACK, 1)
        except OSError:  # pragma: no cover
            pass


def _read_response(sock: socket.socket,
                   buffer: bytes) -> tuple:
    """``(status, leftover)`` of one keep-alive response."""
    while b"\r\n\r\n" not in buffer:
        _quickack(sock)
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed")
        buffer += chunk
    head, _, buffer = buffer.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(buffer) < length:
        _quickack(sock)
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed mid-body")
        buffer += chunk
    return status, buffer[length:]


def open_loop(address, request: bytes, target_rps: float,
              duration: float, connections: int = 4) -> Dict:
    """Drive ``request`` at ``target_rps`` for ``duration`` seconds.

    Each connection owns ``target_rps / connections`` of the arrival
    schedule (an :class:`~repro.synth.pacing.ArrivalSchedule` split);
    a request's latency runs from its *intended* arrival time, so
    queueing delay a saturated server causes is charged to the tail
    instead of silently thinning the load.
    """
    schedules = ArrivalSchedule(target_rps).split(connections)
    count = max(1, int(target_rps / connections * duration))
    latencies: List[float] = []
    statuses: List[int] = []
    errors: List[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(connections + 1)

    def fire(schedule: ArrivalSchedule) -> None:
        sock = socket.create_connection(address, timeout=30)
        sock.settimeout(30)
        local_latencies = []
        local_statuses = []
        try:
            barrier.wait()
            buffer = b""
            for index in range(count):
                intended = schedule.wait(index)
                sock.sendall(request)
                status, buffer = _read_response(sock, buffer)
                local_statuses.append(status)
                local_latencies.append(
                    time.perf_counter() - intended)
        except BaseException as error:
            with lock:
                errors.append(error)
        finally:
            sock.close()
            with lock:
                latencies.extend(local_latencies)
                statuses.extend(local_statuses)

    threads = [threading.Thread(target=fire, args=(schedule,))
               for schedule in schedules]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    ok = sum(1 for status in statuses if status == 200)
    return {
        "target_rps": target_rps,
        "achieved_rps": len(statuses) / elapsed,
        "ok_rps": ok / elapsed,
        "requests": len(statuses),
        "ok": ok,
        "shed_503": sum(1 for status in statuses
                        if status == 503),
        "connections": connections,
        "behind_schedule": sum(schedule.behind
                               for schedule in schedules),
        "seconds": elapsed,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p95_ms": _percentile(latencies, 0.95) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "max_ms": max(latencies) * 1000.0,
    }


def run_open_loop_suite(registry: SessionRegistry, command_bytes:
                        bytes, smoke: bool) -> Dict[str, Dict]:
    """The three server configurations under open-loop load."""
    request = _post_bytes(command_bytes)
    duration = 1.5 if smoke else 4.0
    suite: Dict[str, Dict] = {}

    def drive(server, target) -> Dict:
        with server:
            # warm: build the cache entry / touch every code path
            probe = socket.create_connection(server.address,
                                             timeout=30)
            probe.sendall(request)
            status, _ = _read_response(probe, b"")
            assert status == 200
            probe.close()
            return open_loop(server.address, request, target,
                             duration)

    suite["async_cached"] = drive(
        AsyncServiceServer(registry, port=0),
        2000 if smoke else 8000)
    suite["async_nocache"] = drive(
        AsyncServiceServer(registry, port=0, response_cache=False),
        400 if smoke else 1200)
    suite["threading"] = drive(
        ServiceServer(registry, port=0, response_cache=False),
        400 if smoke else 1200)
    return suite


def run_benchmarks(smoke: bool = False) -> Dict:
    scale = 0.02 if smoke else 0.1
    requests = 50 if smoke else 300
    limit = 20

    registry = SessionRegistry()
    job = registry.build(SESSION, scale=scale, wait=True)
    assert job.state.value == "done", job.error
    corpus_size = len(registry.get(SESSION).workbench.store)

    binding = LocalBinding(registry)
    command = P.RunQuery(session=SESSION, query=QUERY, limit=limit,
                         include_total=False)

    # -- in-process protocol dispatch ----------------------------------
    binding.call(command)  # warm
    local_times: List[float] = []
    for _ in range(requests):
        started = time.perf_counter()
        response = binding.call(command)
        local_times.append(time.perf_counter() - started)
        assert response.hits

    metrics: Dict[str, Dict] = {
        "local_call": dict(_latency_stats(local_times),
                           requests_per_s=requests
                           / sum(local_times)),
    }

    # -- over HTTP ------------------------------------------------------
    server = ServiceServer(registry, port=0).start()
    try:
        client = ServiceClient(server.url)
        client.run_query(SESSION, QUERY, limit=limit)  # warm

        http_times: List[float] = []
        for _ in range(requests):
            started = time.perf_counter()
            page = client.run_query(SESSION, QUERY, limit=limit,
                                    include_total=False)
            http_times.append(time.perf_counter() - started)
            assert page.hits
        metrics["http_query"] = dict(
            _latency_stats(http_times),
            requests_per_s=requests / sum(http_times))

        started = time.perf_counter()
        pages = 0
        hits = 0
        for page in client.iter_pages(SESSION, QUERY, limit=100):
            pages += 1
            hits += len(page.hits)
        paginate_seconds = time.perf_counter() - started
        metrics["http_paginate"] = {
            "pages": pages, "hits": hits,
            "seconds": paginate_seconds,
            "pages_per_s": pages / paginate_seconds,
        }

        workers = 4
        per_worker = max(10, requests // workers)
        errors: List[BaseException] = []

        def hammer() -> None:
            try:
                worker_client = ServiceClient(server.url)
                for _ in range(per_worker):
                    worker_client.run_query(SESSION, QUERY,
                                            limit=limit,
                                            include_total=False)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer)
                   for _ in range(workers)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_seconds = time.perf_counter() - started
        assert not errors, errors[:1]
        metrics["http_concurrent"] = {
            "threads": workers,
            "requests": workers * per_worker,
            "seconds": concurrent_seconds,
            "requests_per_s": workers * per_worker
            / concurrent_seconds,
        }
    finally:
        server.stop()

    # -- open-loop concurrent load -------------------------------------
    metrics["openloop"] = run_open_loop_suite(
        registry, command.to_json(), smoke)

    from provenance import louvre_provenance

    return {
        "bench": "service",
        "config": {"smoke": smoke, "scale": scale,
                   "requests": requests, "limit": limit,
                   "corpus": corpus_size,
                   "provenance": louvre_provenance(scale),
                   "python": sys.version.split()[0]},
        "metrics": metrics,
    }


def _timed(fn, repeats: int) -> List[float]:
    times: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return times


def _shard_metrics(engine, docs: List[Dict], repeats: int) -> Dict:
    """Ingest + read-path measurements against one engine."""
    from repro.service.executor import run_command

    def call(command):
        response = run_command(engine, command)
        assert not isinstance(response, P.ErrorInfo), response
        return response

    started = time.perf_counter()
    call(P.IngestDocuments(session=SESSION, docs=docs))
    ingest_seconds = time.perf_counter() - started

    query = P.RunQuery(session=SESSION, query=QUERY, limit=20,
                       include_total=False)
    call(query)  # warm
    query_times = _timed(lambda: call(query), repeats)

    started = time.perf_counter()
    pages = 0
    cursor = None
    while True:
        page = call(P.RunQuery(session=SESSION, limit=100,
                               cursor=cursor, order_by="duration"))
        pages += 1
        cursor = page.next_cursor
        if cursor is None:
            break
    paginate_seconds = time.perf_counter() - started

    mine_seconds = min(_timed(
        lambda: call(P.MinePatterns(session=SESSION,
                                    min_support=0.05,
                                    max_length=4)), 3))
    similarity_seconds = min(_timed(
        lambda: call(P.Similarity(session=SESSION)), 2))
    return {
        "ingest_s": ingest_seconds,
        "query": dict(_latency_stats(query_times),
                      requests_per_s=repeats / sum(query_times)),
        "paginate": {"pages": pages, "seconds": paginate_seconds,
                     "pages_per_s": pages / paginate_seconds},
        "mine_s": mine_seconds,
        "similarity_s": similarity_seconds,
    }


def run_shard_benchmarks(smoke: bool = False) -> Dict:
    """Bench S2 — scatter-gather overhead and scaling.

    The same corpus is served unsharded (the baseline) and through
    the shard coordinator at N ∈ {1, 2, 4} in-process shards; N=1
    against the baseline isolates pure coordination overhead (cursor
    translation, page merging, the extra protocol hop), N∈{2,4} shows
    how the merged read path and partial-aggregate mining behave as
    the corpus splits.  In-process shards share the GIL, so
    CPU-bound mining does not speed up here — the distribution win
    needs the process backend (``repro serve --shards N
    --shard-backend process``); what this bench guards is the
    coordinator staying *cheap*.
    """
    from repro.shard import ShardCoordinator

    scale = 0.02 if smoke else 0.1
    repeats = 20 if smoke else 100

    registry = SessionRegistry()
    job = registry.build("seed", scale=scale, wait=True)
    assert job.state.value == "done", job.error
    docs = [trajectory.to_dict() for trajectory
            in registry.get("seed").workbench.store]

    # Warm every code path (parse, insert, plan, mine) on a throwaway
    # engine so the first measured section pays no import/JIT-cache
    # cost the later ones skip.
    _shard_metrics(SessionRegistry(), docs[:20], 2)

    metrics: Dict[str, Dict] = {
        "unsharded": _shard_metrics(SessionRegistry(), docs,
                                    repeats)}
    for shard_count in (1, 2, 4):
        metrics["shards_{}".format(shard_count)] = _shard_metrics(
            ShardCoordinator.local(shard_count), docs, repeats)

    baseline = metrics["unsharded"]
    scaling = {}
    for name, section in metrics.items():
        if name == "unsharded":
            continue
        scaling[name] = {
            "ingest_vs_unsharded":
                section["ingest_s"] / baseline["ingest_s"],
            "query_p50_vs_unsharded":
                section["query"]["p50_ms"]
                / baseline["query"]["p50_ms"],
            "mine_vs_unsharded":
                section["mine_s"] / baseline["mine_s"],
        }
    from provenance import louvre_provenance

    return {
        "bench": "shard",
        "config": {"smoke": smoke, "scale": scale,
                   "repeats": repeats, "corpus": len(docs),
                   "shard_counts": [1, 2, 4],
                   "provenance": louvre_provenance(scale),
                   "python": sys.version.split()[0]},
        "metrics": metrics,
        "scaling": scaling,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced corpus/requests for CI")
    parser.add_argument("--out", metavar="PATH",
                        help="write the measurements as JSON")
    parser.add_argument("--shard", action="store_true",
                        help="run the scatter-gather sharding bench "
                             "instead of the service bench")
    parser.add_argument("--floor", type=float, metavar="RPS",
                        help="fail (exit 1) when the open-loop "
                             "async_cached throughput lands below "
                             "this many requests/s")
    args = parser.parse_args(argv)

    if args.shard:
        result = run_shard_benchmarks(smoke=args.smoke)
        print(json.dumps(result, indent=2))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(result, handle, indent=2)
                handle.write("\n")
            print("\nwrote {}".format(args.out))
        return 0

    result = run_benchmarks(smoke=args.smoke)
    if args.out and not args.smoke:
        # Embed a smoke-mode section so CI smoke runs have a
        # same-workload reference.
        result["smoke_metrics"] = run_benchmarks(
            smoke=True)["metrics"]
    print(json.dumps(result, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print("\nwrote {}".format(args.out))
    if args.floor is not None:
        headline = result["metrics"]["openloop"]["async_cached"]
        if headline["ok_rps"] < args.floor:
            print("FAIL: open-loop async_cached {:.0f} ok-req/s "
                  "is below the floor of {:.0f}".format(
                      headline["ok_rps"], args.floor),
                  file=sys.stderr)
            return 1
        print("floor ok: {:.0f} ok-req/s >= {:.0f}".format(
            headline["ok_rps"], args.floor))
    return 0


if __name__ == "__main__":
    sys.exit(main())
