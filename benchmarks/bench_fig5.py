"""Bench F5 — the Figure 5 overlapping episode segmentation."""

from repro.experiments import fig5


def test_bench_fig5(benchmark):
    """Episode detection: both goals found, overlapping in time."""
    result = benchmark(fig5.run)
    assert result["episodes_overlap"]
    # The whole E→P→S→C part carries 'exit museum'...
    assert ["zone60887", "zone60888", "zone60890",
            "zone60891"] in result["exit_episode_states"]
    # ...and its E→P→S subsequence carries 'buy souvenir'.
    assert ["zone60887", "zone60888",
            "zone60890"] in result["buy_episode_states"]
    # While in the shops, both meanings are active simultaneously.
    assert result["labels_at_shop_time"] == ["buy souvenir",
                                             "exit museum"]
    # Forcing exclusivity can only lose tagged time.
    assert result["exclusive_tagged_share"] \
        <= result["overlapping_tagged_share"] + 1e-9
