"""Bench ST1 — live ingestion: segmenter, durable stream, sources.

Run as a script (not under pytest-benchmark); against the Louvre
corpus replayed as an interleaved event-time stream it measures

* ``segmenter`` — the raw :class:`~repro.stream.WatermarkSegmenter`
  (no durability): events/s through ``feed`` + ``advance`` and the
  episodes emitted;
* ``stream_ingest`` — the full durable path (``OpenStream`` →
  chunked ``AppendEvents`` with honest watermarks → ``CloseStream``
  through the command executor, journal fsync off like the other
  benches): sustained events/s, episode throughput, and the
  bounded-memory guard — the tracemalloc peak across the whole
  replay plus the largest open-event buffer the watermark ever left
  behind, both of which must stay O(gap window), not O(corpus);
* ``backpressure`` — ``bounded_iter`` throughput with the ``block``
  policy (items/s through a capacity-64 buffer and how often the
  producer was actually throttled).

``--out`` writes the measurements; the committed baseline is
``BENCH_stream.json``.  ``--smoke`` shrinks the corpus for CI.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
import tracemalloc
from typing import Dict, List

from repro.core.builder import TrajectoryBuilder
from repro.louvre import (
    DatasetParameters,
    LouvreDatasetGenerator,
    LouvreSpace,
)
from repro.service import protocol as P
from repro.service.executor import run_command
from repro.service.registry import SessionRegistry
from repro.stream import WatermarkSegmenter, bounded_iter
from repro.stream.segmenter import event_to_dict
from repro.synth.pacing import ArrivalSchedule

CHUNK = 256


def _corpus(scale: float):
    space = LouvreSpace()
    parameters = (DatasetParameters() if scale >= 1.0
                  else DatasetParameters().scaled(scale))
    records = LouvreDatasetGenerator(
        space, parameters).detection_records()
    records.sort(key=lambda r: (r.t_start, r.t_end, r.mo_id))
    return space, records


def bench_segmenter(space, records) -> Dict[str, Dict]:
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    segmenter = WatermarkSegmenter(builder)
    episodes = 0
    started = time.perf_counter()
    for position in range(0, len(records), CHUNK):
        for record in records[position:position + CHUNK]:
            episodes += len(segmenter.feed(record))
        rest = position + CHUNK
        if rest < len(records):
            episodes += len(segmenter.advance(
                records[rest].t_start))
    episodes += len(segmenter.close())
    seconds = time.perf_counter() - started
    return {
        "segmenter": {
            "events": len(records),
            "episodes": episodes,
            "seconds": seconds,
            "events_per_s": len(records) / seconds,
        },
    }


def bench_stream_ingest(records, base: str,
                        rate: float = None) -> Dict[str, Dict]:
    registry = SessionRegistry(persist_dir=base, fsync=False)
    session, stream = "bench", "replay"
    payloads = [event_to_dict(record) for record in records]
    # --rate is events/s; one schedule slot covers one chunk.
    schedule = ArrivalSchedule(
        None if rate is None else rate / CHUNK)

    tracemalloc.start()
    started = time.perf_counter()
    run_command(registry, P.OpenStream(session=session,
                                       stream=stream))
    episodes = 0
    peak_open = 0
    for index, position in enumerate(
            range(0, len(payloads), CHUNK)):
        schedule.wait(index)
        chunk = payloads[position:position + CHUNK]
        rest = position + CHUNK
        ack = run_command(registry, P.AppendEvents(
            session=session, stream=stream, events=chunk,
            watermark=(records[rest].t_start
                       if rest < len(records) else None)))
        assert not isinstance(ack, P.ErrorInfo), ack
        episodes += ack.episodes_closed
        peak_open = max(peak_open, ack.open_events)
    closed = run_command(registry, P.CloseStream(session=session,
                                                 stream=stream))
    seconds = time.perf_counter() - started
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert closed.events_acked == len(records), closed
    return {
        "stream_ingest": {
            "events": len(records),
            "chunk": CHUNK,
            "target_rate": rate,
            "behind_schedule": schedule.behind,
            "episodes": closed.episodes_total,
            "episodes_in_flight": episodes,
            "seconds": seconds,
            "events_per_s": len(records) / seconds,
            "episodes_per_s": closed.episodes_total / seconds,
            "peak_open_events": peak_open,
            "traced_peak_mb": traced_peak / 1e6,
        },
    }


def bench_backpressure(records) -> Dict[str, Dict]:
    from repro.stream.backpressure import BoundedBuffer

    buffer = BoundedBuffer(capacity=64, policy="block")
    started = time.perf_counter()
    drained = sum(1 for _ in bounded_iter(iter(records),
                                          buffer=buffer))
    seconds = time.perf_counter() - started
    return {
        "backpressure": {
            "items": drained,
            "capacity": buffer.capacity,
            "seconds": seconds,
            "items_per_s": drained / seconds,
            "producer_blocked": buffer.blocked,
        },
    }


def run_benchmarks(smoke: bool = False,
                   rate: float = None) -> Dict:
    from provenance import louvre_provenance

    scale = 0.02 if smoke else 0.2
    space, records = _corpus(scale)

    base = tempfile.mkdtemp(prefix="bench-stream-")
    try:
        metrics: Dict[str, Dict] = {}
        metrics.update(bench_segmenter(space, records))
        metrics.update(bench_stream_ingest(records, base,
                                           rate=rate))
        metrics.update(bench_backpressure(records))
    finally:
        shutil.rmtree(base, ignore_errors=True)

    return {
        "bench": "stream",
        "config": {"smoke": smoke, "scale": scale,
                   "events": len(records), "rate": rate,
                   "provenance": louvre_provenance(scale),
                   "python": sys.version.split()[0]},
        "metrics": metrics,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced corpus for CI")
    parser.add_argument("--rate", type=float, default=None,
                        metavar="EV_PER_S",
                        help="pace stream_ingest at this many "
                             "events/s (open loop; default: as "
                             "fast as acked)")
    parser.add_argument("--out", metavar="PATH",
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)

    result = run_benchmarks(smoke=args.smoke, rate=args.rate)
    if args.out and not args.smoke:
        # Embed a smoke-mode section so CI smoke runs have a
        # same-workload reference.
        result["smoke_metrics"] = run_benchmarks(
            smoke=True)["metrics"]
    print(json.dumps(result, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print("\nwrote {}".format(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
