"""Bench ABL — the three design-decision ablations (DESIGN.md A1–A3)."""

from repro.experiments import ablations


def test_bench_ablation_directed(benchmark, louvre_space):
    """A1 — symmetrising the NRG admits impossible movements."""
    result = benchmark(ablations.ablate_directed, louvre_space)
    # The zone graph has one-way restrictions (Carrousel exit,
    # Salle des États) that the undirected variant destroys.
    assert len(result["one_way_restrictions"]) >= 2
    assert result["wrongly_admitted_count"] \
        == len(result["one_way_restrictions"])
    assert result["undirected_transitions"] \
        > result["directed_transitions"]


def test_bench_ablation_static_hierarchy(benchmark, louvre_space):
    """A2 — ad-hoc subdivision loses most multi-granularity entries."""
    result = benchmark(ablations.ablate_static_hierarchy, louvre_space,
                       0.02)
    # The static hierarchy lifts everything; ad-hoc only the Denon wing.
    assert result["static_entry_loss_share"] == 0.0
    assert result["adhoc_entry_loss_share"] > 0.3
    assert result["adhoc_liftable_trajectories"] \
        <= result["static_liftable_trajectories"]


def test_bench_ablation_exclusive_episodes(benchmark):
    """A3 — exclusivity loses the multi-label semantics of Figure 5."""
    result = benchmark(ablations.ablate_exclusive_episodes)
    assert result["exclusivity_loses_multilabel"]
    assert len(result["overlapping_labels_at_shop"]) == 2
    assert result["exclusive_episodes"] \
        <= result["overlapping_episodes"]
