"""Bench S41 — regenerate the Section 4.1 corpus statistics."""

from repro.experiments import dataset_stats


def test_bench_dataset_stats(benchmark, louvre_space):
    """Full-scale corpus generation; every paper statistic must match."""
    result = benchmark(dataset_stats.run, louvre_space, 1.0)
    assert result["all_match"], result["comparison"]
    measured = result["measured"]
    assert measured["visits"] == 4945
    assert measured["visitors"] == 3228
    assert measured["returning_visitors"] == 1227
    assert measured["repeat_visits"] == 1717
    assert measured["zone_detections"] == 20245
    assert measured["zone_transitions"] == 15300
    assert measured["max_visit_duration_s"] == 27697
    assert measured["max_detection_duration_s"] == 20360
    assert 0.08 <= measured["zero_duration_share"] <= 0.12
    assert measured["dataset_zones"] == 30
