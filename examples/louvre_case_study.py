"""The full Louvre case study (Section 4 of the paper), end to end.

Builds the six-layer Louvre space model, generates a (scaled) synthetic
visit corpus matching the paper's statistics, extracts semantic
trajectories, repairs coverage gaps with topology inference, and mines
multi-granularity patterns.

Run:  python examples/louvre_case_study.py [scale]
      (scale defaults to 0.1; use 1.0 for the full 20,245-record corpus)
"""

import sys

from repro.core import TrajectoryBuilder, infer_missing_presence
from repro.core.annotations import AnnotationKind
from repro.core.inference import InferenceReport
from repro.louvre import (
    DatasetParameters,
    LouvreDatasetGenerator,
    LouvreSpace,
)
from repro.mining import (
    floor_switch_profile,
    prefixspan,
    state_sequences,
)
from repro.mining.sequences import corpus_summary
from repro.storage import Query, TrajectoryStore


def main(scale: float = 0.1) -> None:
    print("=== building the Louvre space model (Figure 2) ===")
    space = LouvreSpace()
    for key, value in space.summary().items():
        print("  {:22s} {}".format(key, value))

    print("\n=== generating the synthetic corpus (Section 4.1) ===")
    parameters = DatasetParameters() if scale >= 1.0 \
        else DatasetParameters().scaled(scale)
    generator = LouvreDatasetGenerator(space, parameters)
    records = generator.detection_records()
    print("  detection records:", len(records))

    print("\n=== extracting semantic trajectories ===")
    builder = TrajectoryBuilder(space.dataset_zone_nrg())
    trajectories, report = builder.build_all(records)
    print("  visits built:", report.trajectories)
    print("  zero-duration detections dropped: {} ({:.1%})".format(
        report.cleaning.dropped_zero_duration,
        report.cleaning.zero_duration_share))
    print("  unobserved transitions flagged:",
          report.unobserved_transitions)
    summary = corpus_summary(trajectories)
    print("  visitors:", int(summary["visitors"]))

    print("\n=== repairing coverage gaps (Figure 6 inference) ===")
    nrg = space.dataset_zone_nrg()
    inference = InferenceReport()
    repaired = [infer_missing_presence(t, nrg, report=inference)
                for t in trajectories]
    print("  gaps examined:", inference.gaps_examined)
    print("  presence tuples inferred:", inference.tuples_inserted)

    print("\n=== storing and querying ===")
    store = TrajectoryStore()
    store.insert_many(repaired)
    mona_lisa_visits = (Query(store)
                        .visiting_state("zone60853")
                        .with_annotation(AnnotationKind.GOAL, "visit")
                        .execute())
    print("  visits reaching the Salle des États zone:",
          len(mona_lisa_visits))

    print("\n=== mining: zone-level sequential patterns ===")
    sequences = state_sequences(repaired)
    patterns = prefixspan(sequences,
                          min_support=max(2, len(sequences) // 20),
                          max_length=3)
    for pattern in patterns[:8]:
        print("  " + pattern.describe())

    print("\n=== mining: floor-switching patterns (Section 5) ===")
    profile = floor_switch_profile(repaired, space.zone_hierarchy,
                                   "floors")
    print("  mean floor switches per visit: {:.2f}".format(
        profile.mean_switches))
    print("  switch histogram:",
          dict(sorted(profile.switch_histogram.items())))
    for sequence, count in profile.top_sequences[:3]:
        print("  frequent floor path ({}x): {}".format(
            count, " → ".join(sequence)))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
