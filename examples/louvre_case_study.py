"""The full Louvre case study (Section 4 of the paper), end to end.

Builds the six-layer Louvre space model, then streams a (scaled)
synthetic visit corpus through one :mod:`repro.pipeline` engine run:
clean → segment → trace → annotate → gap inference → store → mining.
Gap repair (Figure 6) rides along as a *custom* stage registered under
``infer-gaps``, showing how applications extend the stage catalog.

Run:  python examples/louvre_case_study.py [scale]
      (scale defaults to 0.1; use 1.0 for the full 20,245-record corpus)
"""

import sys

from repro.core import TrajectoryBuilder, infer_missing_presence
from repro.core.annotations import AnnotationKind
from repro.core.inference import InferenceReport
from repro.louvre import LouvreSpace
from repro.mining import floor_switch_profile
from repro.pipeline import (
    Pipeline,
    PrefixSpanStage,
    Stage,
    StateSequenceStage,
    StoreSinkStage,
    louvre_source,
    register_stage,
)
from repro.storage import Query


@register_stage("infer-gaps")
class InferenceStage(Stage):
    """Repair coverage gaps via topology inference (Figure 6)."""

    name = "infer-gaps"

    def __init__(self, nrg):
        super().__init__()
        self.nrg = nrg
        self.report = InferenceReport()

    def process(self, batch):
        before = self.report.tuples_inserted
        repaired = [infer_missing_presence(t, self.nrg,
                                           report=self.report)
                    for t in batch]
        self.metrics.count("tuples_inserted",
                           self.report.tuples_inserted - before)
        return repaired


def main(scale: float = 0.1) -> None:
    print("=== building the Louvre space model (Figure 2) ===")
    space = LouvreSpace()
    for key, value in space.summary().items():
        print("  {:22s} {}".format(key, value))

    print("\n=== one engine run: generate -> build -> repair -> "
          "store -> mine ===")
    nrg = space.dataset_zone_nrg()
    builder = TrajectoryBuilder(nrg)
    inference = InferenceStage(nrg)
    store_sink = StoreSinkStage()
    miner = PrefixSpanStage(min_support=0.05, max_length=3)
    pipeline = Pipeline(
        builder.stages()
        + [inference, store_sink, StateSequenceStage(), miner],
        batch_size=512)
    pipeline.run(louvre_source(space, scale=scale), collect=False)
    print(pipeline.metrics.render())

    report = inference.report
    print("\n=== coverage gaps repaired (Figure 6 inference) ===")
    print("  gaps examined:", report.gaps_examined)
    print("  presence tuples inferred:", report.tuples_inserted)

    print("\n=== querying the populated store (planned, lazy) ===")
    store = store_sink.store
    mona_lisa = (Query(store)
                 .visiting_state("zone60853")
                 .with_annotation(AnnotationKind.GOAL, "visit"))
    print("  trajectories stored:", len(store))
    for line in mona_lisa.explain().splitlines():
        print("  | " + line)
    # count() touches only the index candidates the plan proved,
    # never the rest of the corpus (goal:visit is demoted to a
    # streamed check because nearly every visit carries it).
    print("  visits reaching the Salle des États zone:",
          mona_lisa.count())
    longest = mona_lisa.order_by("duration", reverse=True).first()
    if longest is not None:
        print("  longest such visit: {} ({:.1f}h)".format(
            longest.trajectory.mo_id,
            longest.trajectory.duration / 3600))

    print("\n=== mining: zone-level sequential patterns ===")
    for pattern in miner.patterns[:8]:
        print("  " + pattern.describe())

    print("\n=== mining: floor-switching patterns (Section 5) ===")
    repaired = list(store)
    profile = floor_switch_profile(repaired, space.zone_hierarchy,
                                   "floors")
    print("  mean floor switches per visit: {:.2f}".format(
        profile.mean_switches))
    print("  switch histogram:",
          dict(sorted(profile.switch_histogram.items())))
    for sequence, count in profile.top_sequences[:3]:
        print("  frequent floor path ({}x): {}".format(
            count, " → ".join(sequence)))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
